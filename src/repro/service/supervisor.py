"""The supervisor: spawn workers, restart crashes, reclaim leases.

``repro serve`` runs one supervisor over N worker slots.  Each slot
holds a forked worker process running
:func:`repro.service.worker.worker_process_main`; the supervisor's
loop restarts slots whose process died (with exponential backoff),
reclaims expired leases so stalled jobs become visible as pending,
and — in ``--drain`` mode — exits once every job is settled and every
worker has wound down.

Crash-loop detection is per slot and lifetime-based: a worker that
exits cleanly, or lives at least ``healthy_seconds``, resets its
slot's streak; a young unclean death increments it; a streak past
``max_restarts`` raises
:class:`~repro.errors.SupervisorCrashLoopError` — restarting forever
against a poisoned job or broken environment burns the machine
without progress.  The WAL keeps everything already completed, so a
fixed campaign resumes with ``repro serve`` and loses nothing.

SIGTERM drains gracefully: workers get SIGTERM (they finish and
record their current job — see the worker's handler), then the
supervisor waits ``grace_seconds`` before escalating to hard kills.
SIGKILL, of the supervisor or any worker, is the chaos case the WAL
design absorbs: restart the serve and the fold reconstructs the queue,
expired leases are taken over, and the final reports are
byte-identical to an undisturbed run (``tests/test_service.py``).
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import obs
from repro.errors import SupervisorCrashLoopError, VerificationError
from repro.parallel.pool import fork_available
from repro.service import worker as worker_mod
from repro.service.store import JobStore


class CrashLoopDetector:
    """Per-slot streaks of young, unclean worker deaths.

    Pure policy — no clocks, no processes — so the corpus can replay
    it deterministically: feed exit records, get the streak back, and
    the ``max_restarts + 1``-th young crash in a row raises.
    """

    def __init__(
        self, *, max_restarts: int = 5, healthy_seconds: float = 5.0
    ):
        if max_restarts < 0:
            raise VerificationError(
                f"max_restarts must be >= 0, got {max_restarts}"
            )
        self.max_restarts = max_restarts
        self.healthy_seconds = healthy_seconds
        self._streaks: Dict[int, int] = {}

    def record_exit(
        self, slot: int, *, lifetime: float, clean: bool
    ) -> int:
        """Record one worker exit; returns the slot's current streak."""
        if clean or lifetime >= self.healthy_seconds:
            self._streaks[slot] = 0
            return 0
        streak = self._streaks.get(slot, 0) + 1
        self._streaks[slot] = streak
        if streak > self.max_restarts:
            raise SupervisorCrashLoopError(
                f"worker slot {slot} crash-looping: {streak} unclean "
                f"exits in a row, each under {self.healthy_seconds:.1f}s "
                f"(max_restarts={self.max_restarts}); stopping instead "
                "of burning restarts — completed work is in the WAL, "
                "rerun 'repro serve' once the cause is fixed"
            )
        return streak


@dataclass
class _Slot:
    index: int
    process: object = None
    started: float = 0.0
    eligible_at: float = 0.0
    finished: bool = False
    spawned: int = 0


@dataclass
class Supervisor:
    """Run a worker fleet over one job store until stopped or drained."""

    root: str
    workers: int = 1
    lease_seconds: float = worker_mod.DEFAULT_LEASE
    drain: bool = False
    fault_spec: Optional[str] = None
    poll_seconds: float = 0.1
    backoff_seconds: float = 0.2
    max_restarts: int = 5
    healthy_seconds: float = 5.0
    grace_seconds: float = 5.0
    _stop: bool = field(default=False, init=False)

    def run(self) -> dict:
        """Supervise until drained or stopped; returns a summary dict.

        Raises :class:`~repro.errors.SupervisorCrashLoopError` when a
        slot crash-loops (workers are torn down first) and
        :class:`~repro.errors.VerificationError` on platforms without
        the fork start method.
        """
        if not fork_available():
            raise VerificationError(
                "repro serve needs the 'fork' multiprocessing start "
                "method, which this platform does not offer"
            )
        if self.workers < 1:
            raise VerificationError(
                f"worker count must be >= 1, got {self.workers}"
            )
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        store = JobStore(self.root)
        os.makedirs(self.root, exist_ok=True)
        baseline_events = len(store.event_log())
        detector = CrashLoopDetector(
            max_restarts=self.max_restarts,
            healthy_seconds=self.healthy_seconds,
        )
        slots = [_Slot(index=i) for i in range(self.workers)]
        restarted = 0
        reclaimed_total = 0
        self._stop = False
        previous_handler = None
        try:
            previous_handler = signal.signal(
                signal.SIGTERM, self._request_stop
            )
        except (ValueError, OSError):
            previous_handler = None
        try:
            while True:
                if self._stop:
                    break
                reclaimed_total += store.reclaim_expired()
                settled = store.all_settled()
                for slot in slots:
                    restarted += self._tend_slot(
                        ctx, store, slot, detector, settled
                    )
                if (
                    self.drain
                    and store.all_settled()
                    and all(slot.process is None for slot in slots)
                ):
                    break
                time.sleep(self.poll_seconds)
        finally:
            if previous_handler is not None:
                try:
                    signal.signal(signal.SIGTERM, previous_handler)
                except (ValueError, OSError):
                    pass
            self._shutdown(slots)
        return self._summary(
            store, baseline_events, restarted, reclaimed_total
        )

    def _request_stop(self, signum: object, frame: object) -> None:
        self._stop = True

    def _tend_slot(
        self,
        ctx: object,
        store: JobStore,
        slot: _Slot,
        detector: CrashLoopDetector,
        settled: bool,
    ) -> int:
        """Reap/restart one slot; returns 1 when a restart happened."""
        process = slot.process
        if process is not None and not process.is_alive():
            process.join()
            lifetime = time.monotonic() - slot.started
            clean = process.exitcode == 0
            slot.process = None
            if clean and (self.drain or self._stop):
                slot.finished = True
                return 0
            streak = detector.record_exit(
                slot.index, lifetime=lifetime, clean=clean
            )
            if not clean:
                obs.incr("service.workers.restarted")
            # Exponential backoff with a ceiling: a long unclean streak
            # (tolerated by a generous max_restarts) must slow the
            # respawn rate, not push it out to hours.
            delay = (
                min(
                    self.backoff_seconds * (2 ** max(0, streak - 1)),
                    self.backoff_seconds * 32,
                )
                if streak else 0.0
            )
            slot.eligible_at = time.monotonic() + delay
            # fall through: respawn below once eligible
        if (
            slot.process is None
            and not slot.finished
            and not self._stop
            and not (self.drain and settled)
            and time.monotonic() >= slot.eligible_at
        ):
            self._spawn(ctx, slot)
            return 1 if slot.spawned > 1 else 0
        return 0

    def _spawn(self, ctx: object, slot: _Slot) -> None:
        slot.spawned += 1
        process = ctx.Process(
            target=worker_mod.worker_process_main,
            args=(
                self.root,
                os.path.join(self.root, "cache"),
                f"w{slot.index}.{slot.spawned}.{os.getpid()}",
                {
                    "lease_seconds": self.lease_seconds,
                    "drain": self.drain,
                    "poll_seconds": self.poll_seconds,
                    "faults": self.fault_spec or "",
                },
            ),
            daemon=False,
        )
        process.start()
        slot.process = process
        slot.started = time.monotonic()

    def _shutdown(self, slots: List[_Slot]) -> None:
        alive = [
            slot.process for slot in slots
            if slot.process is not None and slot.process.is_alive()
        ]
        for process in alive:
            process.terminate()  # SIGTERM: finish current job, exit
        deadline = time.monotonic() + self.grace_seconds
        for process in alive:
            process.join(max(0.0, deadline - time.monotonic()))
        for process in alive:
            if process.is_alive():
                process.kill()
                process.join()

    def _summary(
        self,
        store: JobStore,
        baseline_events: int,
        restarted: int,
        reclaimed: int,
    ) -> dict:
        """Fold the run's outcome and emit the ``service.*`` counters.

        Worker processes cannot report into this process's metrics
        registry, so the served/cached counts are derived from the WAL
        events this serve appended — the log is the one shared truth.
        """
        events = store.event_log()[baseline_events:]
        done = [event for event in events if event["event"] == "done"]
        cached = sum(1 for event in done if event["cached"])
        failed_events = sum(
            1 for event in events if event["event"] == "fail"
        )
        counts = store.counts()
        obs.incr("service.jobs.completed", len(done))
        obs.incr("service.jobs.failed", failed_events)
        if cached:
            obs.incr("service.cache.hits", cached)
        return {
            "kind": "serve",
            "jobs": counts,
            "completed_this_run": len(done),
            "served_from_cache": cached,
            "executed": len(done) - cached,
            "failures_recorded": failed_events,
            "workers_restarted": restarted,
            "leases_reclaimed": reclaimed,
            "drained": self.drain and not self._stop,
            "stopped": self._stop,
        }
