"""Workers: claim a job under a lease, run it, record the result.

A worker is a loop over the store's claim protocol.  Each claimed job
is first looked up in the result cache — a verified hit completes the
job with zero verification work — and otherwise executed *in-process*
through :func:`repro.cli.main` with stdout captured: the job runs
exactly the code path a direct CLI invocation runs (manifests, guard
modes, pool workers and all), which is what makes served results
byte-comparable to direct runs.

While a job executes, a daemon heartbeat thread extends the lease.
Losing the lease (a takeover after an expiry, or the injected steal
fault) is not an error the worker propagates: it *abandons* the job —
the completed work is discarded unrecorded — because another worker
may already be re-running it, and recording twice could interleave.
Determinism makes abandonment free: the re-run derives the same seeds
and reproduces the identical bytes.

Fault-injection hooks (``--inject-faults``): ``kill`` makes the worker
die (``os._exit``) right after claiming, exercising lease expiry and
supervisor restart; ``steal`` appends a phantom takeover so the lease
is lost mid-run.  Both draw deterministically from the plan seed and
the job's (id, claim-ordinal) identity.
"""

from __future__ import annotations

import contextlib
import io
import os
import threading
import time
from typing import Callable, Dict, Optional, Tuple

from repro.errors import LeaseExpiredError, ServiceError
from repro.service.cache import ResultCache
from repro.service.store import JobStore, JobView

#: Exit status of a worker killed by ``kill`` fault injection.
KILL_EXIT = 77

#: Default lease duration, seconds.
DEFAULT_LEASE = 30.0


def run_job_argv(argv: Tuple[str, ...]) -> Tuple[int, str]:
    """Execute one job spec in-process; ``(exit_status, stdout)``.

    Runs the real CLI entry point with stdout redirected, so the
    captured text is byte-for-byte what a direct invocation prints.
    ``SystemExit`` (argparse rejecting a spec that was valid at submit
    time but not now — e.g. a version skew) becomes its exit code.
    """
    from repro import cli

    buffer = io.StringIO()
    try:
        with contextlib.redirect_stdout(buffer):
            code = cli.main(list(argv))
    except SystemExit as exc:
        code = exc.code if isinstance(exc.code, int) else 2
    return int(code), buffer.getvalue()


class Heartbeat:
    """A daemon thread extending one job's lease until stopped.

    ``lost`` goes true (and beating stops) the moment the store says
    the lease is no longer held; ``error`` captures a store-level
    failure (e.g. corruption) for the main thread to re-raise.
    """

    def __init__(
        self,
        store: JobStore,
        job_id: str,
        worker_id: str,
        lease_seconds: float,
        interval: float,
    ):
        self.store = store
        self.job_id = job_id
        self.worker_id = worker_id
        self.lease_seconds = lease_seconds
        self.interval = interval
        self.lost = False
        self.error: Optional[ServiceError] = None
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def start(self) -> "Heartbeat":
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.store.heartbeat(
                    self.job_id, self.worker_id, self.lease_seconds
                )
            except LeaseExpiredError:
                self.lost = True
                return
            except ServiceError as error:
                self.error = error
                return
            except OSError:
                # Transient filesystem trouble: keep trying; the lease
                # may still outlive the hiccup.
                continue

    def stop(self) -> None:
        self._stop.set()
        self._thread.join()


def worker_loop(
    store: JobStore,
    cache: ResultCache,
    *,
    worker_id: str,
    lease_seconds: float = DEFAULT_LEASE,
    heartbeat_interval: Optional[float] = None,
    drain: bool = False,
    poll_seconds: float = 0.2,
    faults: object = None,
    stop: Optional[Callable[[], bool]] = None,
    run: Callable[[Tuple[str, ...]], Tuple[int, str]] = run_job_argv,
) -> Dict[str, int]:
    """Claim and execute jobs until stopped (or drained).

    With ``drain`` true the loop exits once every job is settled; the
    supervisor's ``--drain`` mode rides on this.  ``stop`` is polled
    between jobs (the SIGTERM flag); a worker never abandons a job it
    is mid-way through just because it was asked to stop — it finishes,
    records, then exits.  Returns a small summary dict.
    """
    interval = (
        heartbeat_interval
        if heartbeat_interval is not None
        else max(0.05, lease_seconds / 3.0)
    )
    summary = {"executed": 0, "cache_hits": 0, "abandoned": 0, "failed": 0}
    parent = os.getppid()
    while True:
        if stop is not None and stop():
            break
        if os.getppid() != parent:
            break  # orphaned: the supervisor died under us
        claimed = store.claim(worker_id, lease_seconds)
        if claimed is None:
            if drain and store.all_settled():
                break
            time.sleep(poll_seconds)
            continue
        if faults is not None and getattr(faults, "kill", 0.0) > 0.0:
            if faults.decide_service(
                "kill", claimed.job_id, claimed.claims
            ):
                os._exit(KILL_EXIT)
        if faults is not None and getattr(faults, "steal", 0.0) > 0.0:
            if faults.decide_service(
                "steal", claimed.job_id, claimed.claims
            ):
                store.steal(claimed.job_id, thief=f"{worker_id}!phantom")
        if _finish_one(
            store, cache, claimed, worker_id, interval, lease_seconds,
            run, summary,
        ):
            continue
    return summary


def _finish_one(
    store: JobStore,
    cache: ResultCache,
    claimed: JobView,
    worker_id: str,
    interval: float,
    lease_seconds: float,
    run: Callable[[Tuple[str, ...]], Tuple[int, str]],
    summary: Dict[str, int],
) -> bool:
    """Serve one claimed job from cache or by running it; always True."""
    hit = cache.get(claimed.scope)
    if hit is not None:
        try:
            store.complete(
                claimed.job_id, worker_id,
                int(hit["exit_status"]), cached=True,
            )
        except LeaseExpiredError:
            summary["abandoned"] += 1
            return True
        summary["cache_hits"] += 1
        return True

    beat = Heartbeat(
        store, claimed.job_id, worker_id, lease_seconds, interval
    ).start()
    failure: Optional[str] = None
    code, stdout = 0, ""
    try:
        try:
            code, stdout = run(claimed.argv)
        except Exception as error:  # the job itself blew up
            failure = f"{type(error).__name__}: {error}"
    finally:
        beat.stop()
    if beat.error is not None:
        raise beat.error
    if beat.lost:
        summary["abandoned"] += 1
        return True
    try:
        if failure is not None:
            store.fail(claimed.job_id, worker_id, failure)
            summary["failed"] += 1
        else:
            cache.put(claimed.scope, {
                "argv": list(claimed.argv),
                "command": claimed.argv[0] if claimed.argv else "",
                "scope": claimed.scope,
                "exit_status": code,
                "stdout": stdout,
            })
            store.complete(claimed.job_id, worker_id, code, cached=False)
            summary["executed"] += 1
    except LeaseExpiredError:
        summary["abandoned"] += 1
    return True


def worker_process_main(
    store_root: str,
    cache_root: str,
    worker_id: str,
    options: Dict[str, object],
) -> None:
    """Entry point for a supervised worker process (fork target).

    Installs a SIGTERM handler that requests a *graceful* stop: the
    current job finishes and is recorded, then the loop exits — the
    supervisor escalates to SIGKILL only past its grace period.
    """
    import signal

    from repro.parallel.faults import FaultPlan

    stop_flag = {"stop": False}

    def _request_stop(signum: object, frame: object) -> None:
        stop_flag["stop"] = True

    try:
        signal.signal(signal.SIGTERM, _request_stop)
    except (ValueError, OSError):
        pass  # non-main thread or exotic platform: run unstoppable

    spec = options.get("faults")
    faults = FaultPlan.parse(str(spec)) if spec else None
    store = JobStore(store_root, faults=faults)
    cache = ResultCache(cache_root, faults=faults)
    worker_loop(
        store,
        cache,
        worker_id=worker_id,
        lease_seconds=float(options.get("lease_seconds", DEFAULT_LEASE)),
        drain=bool(options.get("drain", False)),
        poll_seconds=float(options.get("poll_seconds", 0.2)),
        faults=faults,
        stop=lambda: stop_flag["stop"],
    )
