"""The WAL-style job store: an append-only event log, folded on read.

The store is one JSONL file, ``jobs.jsonl``, holding seven event
kinds::

    submit    {job, argv, scope, seq, max_attempts, at}
    claim     {job, worker, at, lease_until}
    heartbeat {job, worker, at, lease_until}
    done      {job, worker, at, exit_status, cached}
    fail      {job, worker, at, error}
    cancel    {job, at}
    reclaim   {job, at}

Every append goes through :class:`repro.durable_io.DurableAppender` —
one fsynced write of one terminated line — so a ``kill -9`` tears at
most the final line, which the appender seals on reopen and the loader
drops.  Queue state is never stored: :meth:`JobStore.jobs` is a pure
fold over the event sequence, so any process (worker, supervisor, CLI)
reconstructs the identical state from the same log.

**Lock-free claims.**  There is no file lock.  A claimer appends a
claim event, re-reads the log, and re-folds: the fold grants a claim
to the *first* claim event that arrives while the job is pending, or
whose own timestamp shows the previous lease already expired (a
takeover).  POSIX ``O_APPEND`` keeps concurrent appends whole-line
atomic, so racers observe the same order and agree on the winner;
losers simply move on.  The same rule makes expired-lease recovery
automatic — a takeover claim is valid with or without an explicit
supervisor ``reclaim`` event (which exists to make the state visible
in ``repro jobs list`` promptly).

A torn tail is crash damage and tolerated; anything else — an
unreadable file, a record of the wrong shape, an unknown event — is
:class:`~repro.errors.JobStoreCorruptionError`: no crash of a correct
writer produces it, and guessing could hand one job to two workers.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro import durable_io, obs
from repro.errors import (
    JobStoreCorruptionError,
    LeaseExpiredError,
    VerificationError,
)
from repro.service.jobs import JobSpec

#: The WAL file name inside a store root.
STORE_FILE = "jobs.jsonl"

#: Exit status of a worker process killed by torn-WAL fault injection.
TORN_EXIT = 81

_SETTLED = ("completed", "failed", "cancelled")

#: Required fields (and accepted types) per event kind.  ``float``
#: accepts ints too — JSON round-trips whole-number floats as ints.
_EVENT_FIELDS: Dict[str, Dict[str, tuple]] = {
    "submit": {
        "job": (str,), "argv": (list,), "scope": (str,), "seq": (int,),
        "max_attempts": (int,), "at": (int, float),
    },
    "claim": {
        "job": (str,), "worker": (str,), "at": (int, float),
        "lease_until": (int, float),
    },
    "heartbeat": {
        "job": (str,), "worker": (str,), "at": (int, float),
        "lease_until": (int, float),
    },
    "done": {
        "job": (str,), "worker": (str,), "at": (int, float),
        "exit_status": (int,), "cached": (bool,),
    },
    "fail": {
        "job": (str,), "worker": (str,), "at": (int, float),
        "error": (str,),
    },
    "cancel": {"job": (str,), "at": (int, float)},
    "reclaim": {"job": (str,), "at": (int, float)},
}


@dataclass
class JobView:
    """The folded state of one job (a pure function of the log)."""

    job_id: str
    argv: Tuple[str, ...]
    scope: str
    seq: int
    max_attempts: int
    submitted_at: float
    state: str = "pending"  # pending|running|completed|failed|cancelled
    worker: Optional[str] = None
    lease_until: float = 0.0
    claims: int = 0
    failures: int = 0
    exit_status: Optional[int] = None
    cached: bool = False
    error: str = ""
    finished_at: Optional[float] = None

    @property
    def settled(self) -> bool:
        return self.state in _SETTLED

    def to_dict(self) -> dict:
        return {
            "job": self.job_id,
            "argv": list(self.argv),
            "scope": self.scope,
            "seq": self.seq,
            "max_attempts": self.max_attempts,
            "state": self.state,
            "worker": self.worker,
            "lease_until": self.lease_until,
            "claims": self.claims,
            "failures": self.failures,
            "exit_status": self.exit_status,
            "cached": self.cached,
            "error": self.error,
        }


def fold_events(events: List[dict]) -> Dict[str, JobView]:
    """Replay an event sequence into per-job state.

    Events referencing unknown jobs and stale events (a claim on a
    live lease, a done for an already-settled job) are ignored — they
    are what losing a claim race or acting on a stolen lease looks
    like in the log, and the fold's job is to pick the winner the same
    way in every process.
    """
    jobs: Dict[str, JobView] = {}
    for event in events:
        kind = event["event"]
        if kind == "submit":
            if event["job"] in jobs:
                continue
            jobs[event["job"]] = JobView(
                job_id=event["job"],
                argv=tuple(str(part) for part in event["argv"]),
                scope=event["scope"],
                seq=event["seq"],
                max_attempts=event["max_attempts"],
                submitted_at=event["at"],
            )
            continue
        view = jobs.get(event["job"])
        if view is None:
            continue
        if kind == "claim":
            grantable = view.state == "pending" or (
                view.state == "running"
                and event["at"] >= view.lease_until
            )
            if grantable:
                view.state = "running"
                view.worker = event["worker"]
                view.lease_until = event["lease_until"]
                view.claims += 1
        elif kind == "heartbeat":
            if view.state == "running" and view.worker == event["worker"]:
                view.lease_until = max(
                    view.lease_until, event["lease_until"]
                )
        elif kind == "done":
            if view.state not in ("completed", "cancelled"):
                view.state = "completed"
                view.worker = event["worker"]
                view.exit_status = event["exit_status"]
                view.cached = event["cached"]
                view.finished_at = event["at"]
        elif kind == "fail":
            if view.state not in _SETTLED:
                view.failures += 1
                view.error = event["error"]
                view.worker = None
                view.lease_until = 0.0
                if view.failures >= view.max_attempts:
                    view.state = "failed"
                    view.finished_at = event["at"]
                else:
                    view.state = "pending"
        elif kind == "cancel":
            if view.state not in ("completed", "failed"):
                view.state = "cancelled"
                view.finished_at = event["at"]
        elif kind == "reclaim":
            if view.state == "running" and event["at"] >= view.lease_until:
                view.state = "pending"
                view.worker = None
                view.lease_until = 0.0
    return jobs


class JobStore:
    """One process's handle on a shared WAL job store.

    ``clock`` is injectable for deterministic lease tests; ``faults``
    (a :class:`~repro.parallel.faults.FaultPlan`) arms the ``torn``
    WAL-write injection, which writes half a line and kills the
    process — exactly the damage the appender and loader must absorb.
    Thread-safe: a worker's heartbeat thread and its main loop share
    one instance.
    """

    def __init__(
        self,
        root: str,
        *,
        clock: Callable[[], float] = time.time,
        faults: object = None,
    ):
        self.root = str(root)
        self.path = os.path.join(self.root, STORE_FILE)
        self.clock = clock
        self.faults = faults
        self._lock = threading.RLock()
        self._appender: Optional[durable_io.DurableAppender] = None
        self._dropped_seen = 0
        self._torn_counts: Optional[Counter] = None
        self._parse_cache: Optional[tuple] = None

    # -- log access ----------------------------------------------------

    def event_log(self) -> List[dict]:
        """Every validated event, in append order."""
        with self._lock:
            return self._events()

    def _events(self) -> List[dict]:
        # The WAL is append-only, so (size, mtime) is a sound
        # freshness key: an unchanged file never needs re-parsing.
        # Pollers (the supervisor folds the queue dozens of times a
        # second) must not steal the CPU from the verification work
        # they are supervising.
        try:
            stat = os.stat(self.path)
            stamp = (stat.st_size, stat.st_mtime_ns)
        except OSError:
            stamp = None
        if (
            self._parse_cache is not None
            and self._parse_cache[0] == stamp
        ):
            return list(self._parse_cache[1])
        try:
            records, dropped = durable_io.load_jsonl(
                self.path, tolerate="all"
            )
        except OSError as error:
            raise JobStoreCorruptionError(
                f"cannot read job store {self.path}: {error}"
            ) from error
        if dropped > self._dropped_seen:
            obs.incr(
                "service.store.records_dropped",
                dropped - self._dropped_seen,
            )
            self._dropped_seen = dropped
        events = []
        for lineno, record in records:
            events.append(self._validated(record, lineno))
        self._parse_cache = (stamp, events)
        return list(events)

    def _validated(self, record: object, lineno: int) -> dict:
        if not isinstance(record, dict):
            raise JobStoreCorruptionError(
                f"job store {self.path}:{lineno}: record is not an object"
            )
        kind = record.get("event")
        fields = _EVENT_FIELDS.get(kind) if isinstance(kind, str) else None
        if fields is None:
            raise JobStoreCorruptionError(
                f"job store {self.path}:{lineno}: unknown event "
                f"{kind!r}"
            )
        for name, types in fields.items():
            value = record.get(name)
            if not isinstance(value, types) or (
                bool not in types and isinstance(value, bool)
            ):
                raise JobStoreCorruptionError(
                    f"job store {self.path}:{lineno}: event {kind!r} "
                    f"field {name!r} has invalid value {value!r}"
                )
        return record

    def _append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True)
        faults = self.faults
        if faults is not None and getattr(faults, "torn", 0.0) > 0.0:
            key = (record["event"], record.get("job", ""))
            if self._torn_counts is None:
                self._torn_counts = Counter(
                    (event["event"], event.get("job", ""))
                    for event in self._events()
                )
            # Index by *attempts*, not landed events: a torn append
            # never lands, so counting only landed occurrences would
            # hand every respawned worker the same draw — tearing the
            # same write forever.  Each tear leaves one sealed,
            # dropped half-line, so the loader's drop count is the
            # monotonic scar tally that advances the draw (and a
            # resumed run re-reads the same scars, so decisions
            # replay deterministically).
            occurrence = self._torn_counts[key] + self._dropped_seen
            self._torn_counts[key] += 1
            if faults.decide_service(
                "torn", record["event"], record.get("job", ""), occurrence
            ):
                self._torn_write_and_die(line)
        if self._appender is None:
            os.makedirs(self.root, exist_ok=True)
            self._appender = durable_io.DurableAppender(self.path)
        self._appender.append_line(line)

    def _torn_write_and_die(self, line: str) -> None:
        """Injected fault: persist half a record, then die like a crash.

        Uses a raw ``os.open`` append (not the durable appender — the
        whole point is to bypass its whole-line discipline) so the log
        ends in exactly the torn tail a power cut leaves.  A real
        writer opens its appender (sealing any predecessor's torn
        tail) before its own write can be torn in turn, so tears from
        successive crashed workers must land as separate scars — open
        the appender first, or consecutive half-lines would merge
        into one and the scar tally would stop advancing.
        """
        if self._appender is None:
            os.makedirs(self.root, exist_ok=True)
            self._appender = durable_io.DurableAppender(self.path)
        self._appender.open()
        data = (line + "\n").encode("utf-8")
        cut = max(1, len(data) // 2)
        fd = os.open(
            self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o666
        )
        try:
            os.write(fd, data[:cut])
            os.fsync(fd)
        finally:
            os.close(fd)
        os._exit(TORN_EXIT)

    # -- queries -------------------------------------------------------

    def jobs(self) -> Dict[str, JobView]:
        """The folded state of every job, keyed by job id."""
        with self._lock:
            return fold_events(self._events())

    def find(self, job_id: str) -> JobView:
        """The job whose id starts with ``job_id`` (unique prefix)."""
        jobs = self.jobs()
        if job_id in jobs:
            return jobs[job_id]
        matches = [
            view for key, view in sorted(jobs.items())
            if key.startswith(job_id)
        ]
        if not matches:
            raise VerificationError(f"no job matches {job_id!r}")
        if len(matches) > 1:
            ids = ", ".join(view.job_id for view in matches)
            raise VerificationError(
                f"job id {job_id!r} is ambiguous ({ids})"
            )
        return matches[0]

    def all_settled(self) -> bool:
        """True when every submitted job is completed/failed/cancelled."""
        jobs = self.jobs()
        return bool(jobs) and all(view.settled for view in jobs.values())

    def counts(self) -> Dict[str, int]:
        """How many jobs are in each state."""
        counts: Dict[str, int] = {}
        for view in self.jobs().values():
            counts[view.state] = counts.get(view.state, 0) + 1
        return counts

    # -- transitions ---------------------------------------------------

    def submit(
        self, spec: JobSpec, *, max_attempts: int = 3
    ) -> JobView:
        """Append a new job; returns its folded view."""
        if max_attempts < 1:
            raise VerificationError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        with self._lock:
            events = self._events()
            seq = 1 + max(
                (
                    event["seq"]
                    for event in events
                    if event["event"] == "submit"
                ),
                default=0,
            )
            job_id = f"{seq:04d}-{spec.scope[:12]}"
            self._append({
                "event": "submit",
                "job": job_id,
                "argv": list(spec.argv),
                "scope": spec.scope,
                "seq": seq,
                "max_attempts": int(max_attempts),
                "at": float(self.clock()),
            })
            obs.incr("service.jobs.submitted")
            return self.jobs()[job_id]

    def claim(
        self, worker: str, lease_seconds: float
    ) -> Optional[JobView]:
        """Try to claim the oldest claimable job; ``None`` when beaten.

        Claimable: pending, or running with an expired lease (the
        claim event doubles as the takeover).  The claim is confirmed
        by re-folding the log after the append — if a racer's claim
        landed first, this returns ``None`` and the caller just polls
        again.
        """
        with self._lock:
            now = float(self.clock())
            jobs = fold_events(self._events())
            candidates = sorted(
                (
                    view for view in jobs.values()
                    if view.state == "pending"
                    or (
                        view.state == "running"
                        and now >= view.lease_until
                    )
                ),
                key=lambda view: view.seq,
            )
            if not candidates:
                return None
            target = candidates[0]
            self._append({
                "event": "claim",
                "job": target.job_id,
                "worker": worker,
                "at": now,
                "lease_until": now + float(lease_seconds),
            })
            view = self.jobs()[target.job_id]
            if view.state == "running" and view.worker == worker:
                return view
            return None

    def _holding(self, job_id: str, worker: str) -> JobView:
        view = self.jobs().get(job_id)
        if view is None:
            raise JobStoreCorruptionError(
                f"job {job_id} vanished from the store {self.path}"
            )
        if view.state != "running" or view.worker != worker:
            obs.incr("service.leases.expired")
            holder = view.worker if view.state == "running" else None
            raise LeaseExpiredError(
                f"worker {worker!r} no longer holds job {job_id} "
                f"(state={view.state}, holder={holder!r}) — abandoning "
                "its result; the re-run reproduces identical bytes"
            )
        return view

    def heartbeat(
        self, job_id: str, worker: str, lease_seconds: float
    ) -> None:
        """Extend a held lease; raises LeaseExpiredError when lost."""
        with self._lock:
            self._holding(job_id, worker)
            now = float(self.clock())
            self._append({
                "event": "heartbeat",
                "job": job_id,
                "worker": worker,
                "at": now,
                "lease_until": now + float(lease_seconds),
            })

    def complete(
        self, job_id: str, worker: str, exit_status: int, *,
        cached: bool = False,
    ) -> None:
        """Record a result — only if ``worker`` still holds the lease."""
        with self._lock:
            self._holding(job_id, worker)
            self._append({
                "event": "done",
                "job": job_id,
                "worker": worker,
                "at": float(self.clock()),
                "exit_status": int(exit_status),
                "cached": bool(cached),
            })

    def fail(self, job_id: str, worker: str, message: str) -> None:
        """Record an execution failure (consumes one attempt)."""
        with self._lock:
            self._holding(job_id, worker)
            self._append({
                "event": "fail",
                "job": job_id,
                "worker": worker,
                "at": float(self.clock()),
                "error": str(message),
            })

    def cancel(self, job_id: str) -> JobView:
        """Cancel a job that has not already completed or failed."""
        with self._lock:
            view = self.find(job_id)
            if view.state in ("completed", "failed"):
                raise VerificationError(
                    f"job {view.job_id} already {view.state}; nothing "
                    "to cancel"
                )
            self._append({
                "event": "cancel",
                "job": view.job_id,
                "at": float(self.clock()),
            })
            obs.incr("service.jobs.cancelled")
            return self.jobs()[view.job_id]

    def steal(self, job_id: str, thief: str) -> None:
        """Injected fault: a takeover the instant the lease lapses.

        Appends a competing claim timestamped at the current holder's
        ``lease_until`` — the earliest moment a real takeover could
        happen — with a short lease of its own.  The holder's next
        heartbeat or completion then fails exactly as it would against
        a genuine competitor, and the phantom's lease expires quickly
        so the job is re-run.
        """
        with self._lock:
            view = self.jobs().get(job_id)
            if view is None or view.state != "running":
                return
            at = view.lease_until
            self._append({
                "event": "claim",
                "job": job_id,
                "worker": thief,
                "at": at,
                "lease_until": at + 1.0,
            })

    def reclaim_expired(self) -> int:
        """Mark every expired running lease pending; returns the count."""
        with self._lock:
            now = float(self.clock())
            reclaimed = 0
            for view in self.jobs().values():
                if view.state == "running" and now >= view.lease_until:
                    self._append({
                        "event": "reclaim",
                        "job": view.job_id,
                        "at": now,
                    })
                    reclaimed += 1
            if reclaimed:
                obs.incr("service.leases.reclaimed", reclaimed)
            return reclaimed

    def close(self) -> None:
        with self._lock:
            if self._appender is not None:
                self._appender.close()
                self._appender = None

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
