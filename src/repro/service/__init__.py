"""Durable verification job service: queue, workers, result cache.

The paper's quantifier — *for all* Unit-Time adversaries — makes real
assurance a matter of long campaigns: multi-seed sweeps, n=5 exact
reachability, fuzz runs that outlive any single process.  This package
is the substrate that lets such campaigns survive the process dying:

* :mod:`repro.service.jobs` — a job is any ordinary verification CLI
  invocation (``check``/``chain``/``verify``/``expected-time``/
  ``stats``/``sweep``/``corpus run``), validated against the real
  parser and identified by the run-manifest *scope fingerprint* of its
  result-affecting configuration.
* :mod:`repro.service.store` — a WAL-style JSONL event log
  (submit/claim/heartbeat/done/fail/cancel/reclaim) with atomic
  fsynced appends and torn-tail tolerance; the queue state is a pure
  fold over the log, and claims are lock-free: append a claim event,
  re-read, first valid claim wins.
* :mod:`repro.service.cache` — a content-addressed result cache keyed
  by the scope fingerprint, sha256-verified on read (corruption is a
  miss that re-runs, never a crash), so identical work is never redone
  across jobs or restarts.
* :mod:`repro.service.worker` — claims jobs under a heartbeat-extended
  lease, runs them in-process through :func:`repro.cli.main`, and
  abandons (never records) work whose lease it lost.
* :mod:`repro.service.supervisor` — forks and restarts workers with
  exponential backoff, detects crash loops, reclaims expired leases,
  and drains gracefully on SIGTERM.

Because every report is a pure function of its root seed and scope,
any interleaving of crashes, restarts, and retries converges to the
same bytes a single undisturbed run produces — ``tests/test_service.py``
kills the runtime mid-campaign and pins exactly that.

See ``docs/service.md`` for the lifecycle, lease protocol, cache
keying, and failure matrix.
"""

from __future__ import annotations

import os

from repro.service.cache import ResultCache
from repro.service.jobs import ALLOWED_COMMANDS, JobSpec
from repro.service.store import JobStore, JobView
from repro.service.supervisor import CrashLoopDetector, Supervisor
from repro.service.worker import run_job_argv, worker_loop

#: Environment variable overriding the default job-store location.
SERVICE_DIR_ENV = "REPRO_SERVICE_DIR"

#: Default job-store directory, relative to the current directory.
DEFAULT_SERVICE_DIR = os.path.join(".repro", "service")


def resolve_store_dir(flag: object = None) -> str:
    """The job-store directory: flag > $REPRO_SERVICE_DIR > default."""
    if flag:
        return str(flag)
    env = os.environ.get(SERVICE_DIR_ENV)
    if env:
        return env
    return DEFAULT_SERVICE_DIR


def cache_dir(store_root: str) -> str:
    """The result-cache directory inside a job-store root."""
    return os.path.join(str(store_root), "cache")


__all__ = [
    "ALLOWED_COMMANDS",
    "CrashLoopDetector",
    "DEFAULT_SERVICE_DIR",
    "JobSpec",
    "JobStore",
    "JobView",
    "ResultCache",
    "SERVICE_DIR_ENV",
    "Supervisor",
    "cache_dir",
    "resolve_store_dir",
    "run_job_argv",
    "worker_loop",
]
