"""Job specifications: validated CLI invocations with a cache scope.

A job is nothing more exotic than an ordinary ``repro`` command line.
:meth:`JobSpec.parse` validates the argv against the real CLI parser —
a spec that would die with a usage error at run time is rejected at
submit time instead — and computes the job's *scope*: the run-manifest
scope fingerprint (:func:`repro.obs.manifest.scope_fingerprint`) of
the command plus its result-affecting configuration.

The scope is the service's unit of work identity.  Because the CLI
excludes byte-identical-by-construction knobs (``--workers``,
``--engine``, checkpoint/fault/output plumbing) from the fingerprint,
two submissions that differ only in those knobs share a scope — and
therefore share one result-cache entry, which is sound precisely
because the repository's determinism contract guarantees their report
bytes match.
"""

from __future__ import annotations

import contextlib
import io
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import VerificationError

#: Commands a job may run.  Verification workloads only: the service
#: meta-commands (``serve``/``submit``/``jobs``) and the store
#: inspectors (``runs``/``profile``/``trace``) are excluded — a job
#: that submits jobs is a fork bomb, not a campaign.
ALLOWED_COMMANDS = frozenset({
    "check", "chain", "verify", "expected-time", "stats", "sweep",
    "corpus",
})


@dataclass(frozen=True)
class JobSpec:
    """One validated, scope-fingerprinted verification command."""

    argv: Tuple[str, ...]
    command: str
    scope: str

    @classmethod
    def parse(cls, argv: Sequence[str]) -> "JobSpec":
        """Validate ``argv`` and fingerprint its scope.

        Raises :class:`~repro.errors.VerificationError` for an empty
        spec, a command outside :data:`ALLOWED_COMMANDS`, a ``corpus``
        subcommand other than ``run``, or anything the CLI parser
        itself rejects (the parser's own message is preserved).
        """
        from repro import cli
        from repro.obs import manifest as mf

        argv = tuple(str(part) for part in argv)
        if not argv:
            raise VerificationError(
                "empty job spec: give a verification command, e.g. "
                "'check --prop A.14 --samples 200'"
            )
        command = argv[0]
        if command not in ALLOWED_COMMANDS:
            allowed = ", ".join(sorted(ALLOWED_COMMANDS))
            raise VerificationError(
                f"command {command!r} cannot be served as a job "
                f"(allowed: {allowed})"
            )
        captured = io.StringIO()
        try:
            with contextlib.redirect_stderr(captured):
                args = cli.build_parser().parse_args(list(argv))
        except SystemExit:
            detail = captured.getvalue().strip().splitlines()
            raise VerificationError(
                "job spec rejected by the CLI parser"
                + (f": {detail[-1]}" if detail else "")
            ) from None
        if command == "corpus" and getattr(args, "corpus_cmd", "") != "run":
            raise VerificationError(
                "only 'corpus run' can be served as a job ('corpus "
                f"{getattr(args, 'corpus_cmd', '?')}' mutates or lists "
                "the registry locally)"
            )
        scope = mf.scope_fingerprint(command, cli._manifest_config(args))
        return cls(argv=argv, command=command, scope=scope)
