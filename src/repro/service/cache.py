"""Content-addressed result cache keyed by the scope fingerprint.

One completed job leaves one entry, ``<scope>.json``, holding the
job's full observable outcome (argv, exit status, stdout bytes) plus a
SHA-256 digest of the canonical payload JSON.  The scope fingerprint
(:mod:`repro.service.jobs`) already excludes every knob the
determinism contract makes byte-irrelevant, so a hit can be served to
any job of the same scope — different worker count, different engine —
without re-running anything.

Trust model: entries are *verified on read*.  A payload whose digest
does not match (bit rot, a crashed writer beaten by the atomic-rename
discipline, deliberate fault injection) is a **miss**, counted in
``service.cache.corrupt`` and quietly deleted so the re-run's fresh
entry replaces it.  Corruption costs a re-run, never a wrong answer
and never a crash.

Writes go through :func:`repro.durable_io.atomic_write_text` (tmp +
fsync + rename), so a torn cache entry can only be produced by storage
misbehaving after the fact — exactly what the read-time digest check
exists to catch.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Optional

from repro import durable_io, obs


def payload_digest(payload: Dict[str, object]) -> str:
    """SHA-256 over the canonical JSON form of a cache payload."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of sha256-verified, scope-addressed result entries.

    ``faults`` (a :class:`~repro.parallel.faults.FaultPlan`) arms the
    ``cache`` injection: a freshly written entry is immediately
    corrupted on disk, proving the read path degrades to a re-run.
    """

    def __init__(self, root: str, *, faults: object = None):
        self.root = str(root)
        self.faults = faults

    def path_for(self, scope: str) -> str:
        return os.path.join(self.root, f"{scope}.json")

    def get(self, scope: str) -> Optional[Dict[str, object]]:
        """The verified payload for ``scope``, or ``None`` on a miss.

        Counts ``service.cache.hits`` / ``service.cache.misses``;
        undecodable or digest-mismatched entries additionally count
        ``service.cache.corrupt`` and are deleted so the next run's
        fresh write is not fighting a poisoned file.
        """
        path = self.path_for(scope)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except FileNotFoundError:
            obs.incr("service.cache.misses")
            return None
        except OSError:
            obs.incr("service.cache.misses")
            return None
        payload = self._verified(text)
        if payload is None:
            obs.incr("service.cache.corrupt")
            obs.incr("service.cache.misses")
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        obs.incr("service.cache.hits")
        return payload

    @staticmethod
    def _verified(text: str) -> Optional[Dict[str, object]]:
        try:
            record = json.loads(text)
        except ValueError:
            return None
        if not isinstance(record, dict):
            return None
        payload = record.get("payload")
        digest = record.get("sha256")
        if not isinstance(payload, dict) or not isinstance(digest, str):
            return None
        if payload_digest(payload) != digest:
            return None
        return payload

    def put(self, scope: str, payload: Dict[str, object]) -> str:
        """Store ``payload`` atomically; returns the entry path."""
        path = self.path_for(scope)
        digest = payload_digest(payload)
        record = {"sha256": digest, "payload": payload}
        durable_io.atomic_write_text(
            path, json.dumps(record, sort_keys=True) + "\n"
        )
        faults = self.faults
        if faults is not None and getattr(faults, "cache", 0.0) > 0.0:
            if faults.decide_service("cache", scope):
                # Injected fault: mangle the stored digest so the next
                # read sees a verification failure, not valid data.
                durable_io.atomic_write_text(
                    path,
                    json.dumps(
                        {"sha256": "0" * 64, "payload": payload},
                        sort_keys=True,
                    ) + "\n",
                )
        return path
