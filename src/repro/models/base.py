"""The pluggable model protocol: what a case study must provide.

The paper's proof technique — Unit-Time arrow statements, expected-time
composition, MDP lower bounds — is model-agnostic, and so is the whole
verification stack below :mod:`repro.analysis`: engines, guards,
parallel pools, the corpus runner, and the job service all operate on an
automaton, an adversary family, and a handful of predicates.  A
:class:`Model` packages those ingredients declaratively so every
subsystem works on any registered case study; the registry in
:mod:`repro.models.registry` maps ``--model`` names to instances.

Only code under :mod:`repro.models` and :mod:`repro.algorithms` may
import a concrete algorithm package (enforced by ``tools/lint.py``); the
rest of the stack reaches algorithms exclusively through this protocol.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from fractions import Fraction
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Tuple,
)

from repro.adversary.base import Adversary, AdversarySchema
from repro.errors import VerificationError
from repro.proofs.ledger import ProofLedger, StatementId
from repro.proofs.statements import ArrowStatement, StateClass
from repro.statespace.compile import SpaceSpec


def _default_untimed(state: Any) -> Hashable:
    """Every shipped case study strips its clock via ``untimed()``."""
    return state.untimed()


@dataclass(frozen=True)
class ProofChain:
    """A minimal composed-proof handle: a ledger and its final claim.

    The Lehmann-Rabin and election case studies build richer chain
    objects; models whose end-to-end claim is a single hand-derived
    statement (Ben-Or, Herman) wrap it in this one-assumption chain so
    ``repro chain`` can explain every model uniformly.
    """

    ledger: ProofLedger
    final_id: StatementId

    @property
    def final_statement(self) -> ArrowStatement:
        return self.ledger.statement(self.final_id)


@dataclass(frozen=True)
class Model:
    """One registered case study, described declaratively.

    The callables are keyed by the instance size ``n`` so a single
    registry entry covers a whole family of instances.  Prose fields
    (``size_noun``, ``target_label``, ...) parameterize CLI banners —
    the ``lr`` model's values reproduce the historical Lehmann-Rabin
    output byte for byte.
    """

    #: Registry key, e.g. ``"lr"`` — also the span-name prefix
    #: (``lr.setup_build``, ``lr.check_leaf``, ``lr.expected_time``).
    name: str
    #: Human title used in banners, e.g. ``"Lehmann-Rabin"``.
    title: str
    #: One-line description for ``repro models``.
    description: str
    #: What ``n`` counts, as used in banners: ``"ring size"``.
    size_noun: str
    #: Capitalised sweep banner prefix: ``"Ring-size"``.
    sweep_noun: str
    #: The expected-time target, as used in banners: ``"the critical
    #: region"``.
    target_label: str
    #: The adversary schema name claims are proved against.
    schema_name: str
    #: Default instance size and the human-readable legal range.
    n_default: int
    n_range: str
    #: The proposition ``repro check`` verifies when ``--prop`` is
    #: omitted.
    default_prop: str
    #: Instance-size validation; raises VerificationError on a size
    #: outside the model's legal range.
    validate_n: Callable[[int], None]
    #: Build the full experiment setup (automaton, view, adversary
    #: family, schema) for one instance.
    build: Callable[[int], "ExperimentSetup"]
    #: Read a state's clock.
    time_of: Callable[[Any], Fraction]
    #: The checkable leaf statements, keyed by proposition name.
    leaf_statements: Callable[[int], Dict[str, ArrowStatement]]
    #: The composed end-to-end proof.
    proof_chain: Callable[[int], Any]
    #: The claimed expected-time bound to :attr:`target`.
    expected_time_bound: Callable[[int], Fraction]
    #: The statement whose source region seeds the expected-time
    #: measurement (``A.3``'s ``T`` region for Lehmann-Rabin).
    time_source_statement: Callable[[int], ArrowStatement]
    #: The expected-time target predicate (e.g. "in the critical
    #: region", "a leader is elected", "stabilized").
    target: Callable[[Any], bool]
    #: Named pivotal configurations, always included as start states
    #: when they fall in a checked statement's source region.
    canonical_states: Callable[[int], Dict[str, Any]]
    #: Sample states in a region: ``(region, n, count, rng) -> states``.
    sample_states_in: Callable[
        [StateClass, int, int, random.Random], List[Any]
    ]
    #: The compile quotient (states up to the clock).
    space_spec: Callable[[int], SpaceSpec]
    #: The reference start state for MDP value iteration.
    mdp_reference: Callable[[int], Any]
    #: The optional symmetry quotient; ``None`` when the model has no
    #: symmetry reduction.  See docs/models.md for the soundness caveat.
    symmetry_spec: Optional[Callable[[int], SpaceSpec]] = None
    #: Strip a state to its untimed interning/dedup key.
    untimed: Callable[[Any], Hashable] = _default_untimed
    #: Default sweep sizes for ``repro sweep`` when ``--sizes`` is
    #: omitted.
    sweep_sizes: Tuple[int, ...] = (3, 4, 5)


@dataclass(frozen=True)
class ExperimentSetup:
    """Everything needed to run verification experiments on one instance.

    Extracted from the historical ``LRExperimentSetup`` (which is now a
    thin subclass in :mod:`repro.models.lr`): the automaton, the process
    view backing Unit-Time scheduling, the named adversary family, and
    the declared schema.  ``model`` back-references the registry entry
    so the generic analysis layer can reach the model's predicates and
    quotient hooks.
    """

    n: int
    automaton: Any
    view: Any
    adversaries: Tuple[Tuple[str, Adversary], ...]
    #: The schema the family is declared to range over; the guard layer
    #: checks membership and probes execution closure against it.
    schema: Optional[AdversarySchema] = None
    #: The registry entry this setup was built from.
    model: Optional[Model] = field(default=None, repr=False)

    def space_spec(self) -> SpaceSpec:
        """The compile quotient for this instance."""
        return require_model(self).space_spec(self.n)

    def symmetry_spec(self) -> Optional[SpaceSpec]:
        """The symmetry quotient, or ``None`` when unsupported."""
        model = require_model(self)
        if model.symmetry_spec is None:
            return None
        return model.symmetry_spec(self.n)


def require_model(setup: ExperimentSetup) -> Model:
    """The setup's model, or a typed error for hand-rolled setups."""
    if setup.model is None:
        raise VerificationError(
            "experiment setup carries no model; build setups through "
            "repro.models.get_model(name).build(n)"
        )
    return setup.model


def single_statement_chain(
    schema_name: str, statement: ArrowStatement, evidence: str
) -> ProofChain:
    """Wrap one hand-derived statement as a ledger-backed chain."""
    ledger = ProofLedger(schema_name, execution_closed=True)
    final = ledger.assume(statement, evidence=evidence)
    return ProofChain(ledger=ledger, final_id=final)


def sample_states_by_walk(
    automaton: Any,
    region: StateClass,
    count: int,
    rng: random.Random,
    *,
    advance_time: bool = False,
    untimed: Callable[[Any], Hashable] = _default_untimed,
    max_steps: int = 10_000,
) -> List[Any]:
    """Harvest distinct region states from a random walk.

    A generic region sampler for models without a closed-form state
    generator: walk the automaton from a random start, taking uniformly
    random enabled steps and resolving each target distribution with
    ``rng``, and collect distinct (up to ``untimed``) states the region
    contains.  Harvested states are reachable by construction, hence
    consistent with every model invariant.  ``advance_time`` keeps or
    skips pure time-passage self-advances (skipped by default so the
    walk spends its budget on structural progress).
    """
    found: List[Any] = []
    seen: set = set()
    state = rng.choice(automaton.start_states)
    for _ in range(max_steps):
        if len(found) >= count:
            break
        if region.contains(state):
            key = untimed(state)
            if key not in seen:
                seen.add(key)
                found.append(state)
                if len(found) >= count:
                    break
        steps = [
            step
            for step in automaton.transitions(state)
            if advance_time or len(step.target.support) > 1
            or untimed(next(iter(step.target.support))) != untimed(state)
        ]
        if not steps:
            state = rng.choice(automaton.start_states)
            continue
        step = rng.choice(steps)
        state = step.target.sample(rng)
    return found
