"""The Lehmann-Rabin dining-philosophers model (the paper's subject).

Registers the original case study — the automaton of Section 5, the
Unit-Time adversary family, the Section 6.2 proof chain, and the ring
quotients — under the name ``lr``, which is also the ``--model``
default.  Building through the registry is byte-identical to the
historical hard-wired pipeline: span names, banner prose, seed
derivations, and start-state selection are all unchanged.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro import obs
from repro.adversary.unit_time import unit_time_schema
from repro.algorithms import lehmann_rabin as lr
from repro.errors import VerificationError
from repro.models.base import ExperimentSetup, Model
from repro.models.registry import register_model
from repro.statespace.compile import SpaceSpec


class LRExperimentSetup(ExperimentSetup):
    """Everything needed to run Lehmann-Rabin experiments on one ring.

    The historical entry point, kept as a thin subclass of the generic
    :class:`~repro.models.base.ExperimentSetup`; ``build`` remains the
    canonical constructor and existing imports keep working.
    """

    def space_spec(self) -> SpaceSpec:
        """The compile quotient for this ring: intern states up to the
        clock (``LRState.untimed``) and read time advances off
        ``lr_time_of``.  Lehmann-Rabin dynamics are time-invariant, so
        the quotient is exact and keeps the compiled space finite."""
        return SpaceSpec(
            key=lambda state: state.untimed(), time_of=lr.lr_time_of
        )

    def symmetry_spec(self) -> SpaceSpec:
        """The untimed quotient *plus* the ring's dihedral quotient.

        Shrinks the compiled space by a factor approaching ``2n``
        (fitting n=5 inside the default state budget), but is only
        sound for quotient-level analyses and symmetry-invariant
        predicates: the shipped adversary policies break ties by
        process index and are not equivariant, so per-adversary
        sampling must keep :meth:`space_spec`.  See
        ``repro.algorithms.lehmann_rabin.symmetry``."""
        return lr.ring_symmetry_spec()

    @classmethod
    def build(
        cls,
        n: int,
        max_rounds: Optional[int] = None,
        random_seeds: Sequence[int] = (1, 2, 3),
    ) -> "LRExperimentSetup":
        """Construct the automaton, view, and adversary family for ``n``."""
        with obs.span("lr.setup_build", n=n):
            view = lr.LRProcessView(n)
            return cls(
                n=n,
                automaton=lr.lehmann_rabin_automaton(n),
                view=view,
                adversaries=tuple(
                    lr.lr_adversary_family(
                        view, max_rounds=max_rounds, random_seeds=random_seeds
                    )
                ),
                schema=unit_time_schema(view),
                model=LR_MODEL,
            )


def _validate_n(n: int) -> None:
    if n < 2:
        raise VerificationError(
            f"the Lehmann-Rabin ring needs at least two processes, got {n}"
        )


def lr_exact_commands():
    """The Lehmann-Rabin-specific exact CLI subcommands (lazy import).

    ``prove``/``exact``/``appendix``/``exhaustive`` are about the
    paper's Section 6.2 derivation specifically and have no generic
    model counterpart; :mod:`repro.cli` reaches their implementations
    through this accessor so it never imports the algorithm package
    directly (the lint rule that keeps the rest of the stack
    model-agnostic).
    """
    from repro.algorithms.lehmann_rabin import commands

    return commands


LR_MODEL = register_model(
    Model(
        name="lr",
        title="Lehmann-Rabin",
        description=(
            "Lehmann-Rabin randomized dining philosophers "
            "(the paper's Section 5 case study)"
        ),
        size_noun="ring size",
        sweep_noun="Ring-size",
        target_label="the critical region",
        schema_name=lr.SCHEMA_NAME,
        n_default=3,
        n_range="n >= 2 (n <= 4 compiles within the default state budget)",
        default_prop="composed",
        validate_n=_validate_n,
        build=LRExperimentSetup.build,
        time_of=lr.lr_time_of,
        leaf_statements=lambda n: lr.leaf_statements(),
        proof_chain=lambda n: lr.lehmann_rabin_proof(),
        expected_time_bound=lambda n: lr.expected_time_bound(),
        time_source_statement=lambda n: lr.leaf_statements()["A.3"],
        target=lr.in_critical,
        canonical_states=lr.canonical_states,
        sample_states_in=lr.sample_states_in,
        space_spec=lambda n: SpaceSpec(
            key=lambda state: state.untimed(), time_of=lr.lr_time_of
        ),
        mdp_reference=lambda n: lr.canonical_states(n)["one_trying"],
        symmetry_spec=lambda n: lr.ring_symmetry_spec(),
        sweep_sizes=(3, 4, 5),
    )
)
