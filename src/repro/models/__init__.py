"""The pluggable model front-end: registry of verifiable case studies.

Importing this package registers every shipped model — ``lr`` (the
paper's Lehmann-Rabin ring, and the ``--model`` default), ``benor``,
``election``, and ``herman`` — and exposes the registry API the CLI,
corpus runner, fuzzer, and job service resolve ``--model`` names
through.  The protocol a model implements lives in
:mod:`repro.models.base`; registration is one
:func:`~repro.models.registry.register_model` call with a declarative
:class:`~repro.models.base.Model` record (docs/models.md walks through
adding a new one).
"""

from repro.models.base import (
    ExperimentSetup,
    Model,
    ProofChain,
    require_model,
    sample_states_by_walk,
    single_statement_chain,
)
from repro.models.registry import (
    get_model,
    model_names,
    register_model,
    registered_models,
)

# Importing a model module registers it; `lr` first so it is the
# default and leads every listing.
from repro.models.lr import LR_MODEL, LRExperimentSetup
from repro.models.benor import BENOR_MODEL
from repro.models.election import ELECTION_MODEL
from repro.models.herman import HERMAN_MODEL

__all__ = [
    "BENOR_MODEL",
    "ELECTION_MODEL",
    "ExperimentSetup",
    "HERMAN_MODEL",
    "LRExperimentSetup",
    "LR_MODEL",
    "Model",
    "ProofChain",
    "get_model",
    "model_names",
    "register_model",
    "registered_models",
    "require_model",
    "sample_states_by_walk",
    "single_statement_chain",
]
