"""The declarative model registry behind ``--model``.

Case studies register themselves at import time (the package
``__init__`` imports every shipped model module); the CLI, the corpus
runner, the fuzzer, and the job service resolve names through
:func:`get_model` and surface the typed :class:`UnknownModelError` on a
miss so an unregistered name maps to the usage exit status, exactly
like an unknown proposition.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import UnknownModelError, VerificationError
from repro.models.base import Model

_REGISTRY: Dict[str, Model] = {}


def register_model(model: Model) -> Model:
    """Add ``model`` to the registry; names are unique and stable."""
    existing = _REGISTRY.get(model.name)
    if existing is not None and existing is not model:
        raise VerificationError(
            f"model name {model.name!r} is already registered"
        )
    _REGISTRY[model.name] = model
    return model


def get_model(name: str) -> Model:
    """Resolve a ``--model`` name, raising :class:`UnknownModelError`."""
    model = _REGISTRY.get(name)
    if model is None:
        raise UnknownModelError(name, tuple(_REGISTRY))
    return model


def model_names() -> Tuple[str, ...]:
    """Registered names in registration order (``lr`` ships first)."""
    return tuple(_REGISTRY)


def registered_models() -> Tuple[Model, ...]:
    """Registered models in registration order."""
    return tuple(_REGISTRY.values())
