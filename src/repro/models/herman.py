"""Herman's self-stabilizing token ring as a registered model.

The new case study shipped with the pluggable front-end: an odd ring of
bit-holding processes, a fair coin by default (the biased variants are
one ``bias`` argument away), the ``Top -> Reduced`` collapse statement,
and the dihedral compile quotient.  See
:mod:`repro.algorithms.herman.claims` for the derivation and the
``n > 3`` caveat.
"""

from __future__ import annotations

import random
from typing import List

from repro import obs
from repro.adversary.unit_time import (
    FifoRoundPolicy,
    ReversedRoundPolicy,
    RotatingRoundPolicy,
    RoundBasedAdversary,
    unit_time_schema,
)
from repro.algorithms import herman
from repro.errors import VerificationError
from repro.models.base import (
    ExperimentSetup,
    Model,
    sample_states_by_walk,
    single_statement_chain,
)
from repro.models.registry import register_model
from repro.proofs.statements import StateClass
from repro.statespace.compile import SpaceSpec


def _validate_n(n: int) -> None:
    if n < 3 or n % 2 == 0:
        raise VerificationError(
            f"Herman's ring needs an odd number of processes >= 3, got {n}"
        )


def _build(n: int) -> ExperimentSetup:
    """Automaton, view, and round-based adversary family for ``n``."""
    _validate_n(n)
    with obs.span("herman.setup_build", n=n):
        view = herman.HermanProcessView(n)
        adversaries = tuple(
            (name, RoundBasedAdversary(view, policy))
            for name, policy in (
                ("fifo", FifoRoundPolicy()),
                ("reversed", ReversedRoundPolicy()),
                ("rotating", RotatingRoundPolicy()),
            )
        )
        return ExperimentSetup(
            n=n,
            automaton=herman.herman_automaton(n),
            view=view,
            adversaries=adversaries,
            schema=unit_time_schema(view),
            model=HERMAN_MODEL,
        )


def _canonical_states(n: int) -> dict:
    """The pivotal configurations: both all-token starts, one legal."""
    single = (0,) * (n - 1) + (1,)
    return {
        "all_ones": herman.herman_initial_state(n, 1),
        "all_zeros": herman.herman_initial_state(n, 0),
        "single_token": herman.herman_fresh_state(single),
    }


def _sample_states_in(
    region: StateClass, n: int, count: int, rng: random.Random
) -> List[herman.HermanState]:
    """Region sampler: fresh coin fills first, then a reachability walk.

    The ``Top`` source region contains exactly the two fresh all-equal
    configurations, so coin-filled fresh states cover it outright; any
    other region (``Reduced``, ``Stable``) is harvested from a random
    walk, whose states are reachable hence invariant-consistent.
    """
    found = []
    for _ in range(count):
        state = herman.herman_initial_state(n, rng.randint(0, 1))
        if region.contains(state):
            found.append(state)
    if found:
        return found
    return sample_states_by_walk(
        herman.herman_automaton(n), region, count, rng
    )


HERMAN_MODEL = register_model(
    Model(
        name="herman",
        title="Herman self-stabilization",
        description=(
            "Herman's probabilistic self-stabilizing token ring "
            "(odd ring, coin-flipping token holders)"
        ),
        size_noun="ring size",
        sweep_noun="Ring-size",
        target_label="the reduced-token region",
        schema_name=herman.HERMAN_SCHEMA,
        n_default=3,
        n_range="odd n >= 3 (n <= 5 compiles within the default budget)",
        default_prop="H.1",
        validate_n=_validate_n,
        build=_build,
        time_of=herman.herman_time_of,
        leaf_statements=lambda n: {
            "H.1": herman.herman_progress_statement(n)
        },
        proof_chain=lambda n: single_statement_chain(
            herman.HERMAN_SCHEMA,
            herman.herman_progress_statement(n),
            evidence=(
                "one synchronous round from the all-tokens region "
                "commits n independent coin flips; the pattern survives "
                "only when all n agree (probability p^n + (1-p)^n)"
            ),
        ),
        expected_time_bound=lambda n: herman.herman_expected_time_bound(n),
        time_source_statement=lambda n: herman.herman_progress_statement(n),
        target=herman.in_reduced,
        canonical_states=_canonical_states,
        sample_states_in=_sample_states_in,
        space_spec=lambda n: SpaceSpec(
            key=lambda state: state.untimed(),
            time_of=herman.herman_time_of,
        ),
        mdp_reference=lambda n: herman.herman_initial_state(n),
        symmetry_spec=lambda n: herman.ring_symmetry_spec(),
        sweep_sizes=(3, 5),
    )
)
