"""The coin-flipping leader election as a registered model.

Section 7's method-generality case study: candidates repeatedly flip
synchronized coin rounds, losers withdraw, and the level statements
``D_k --3-->_{1/2} D_{k-1} | L`` compose into an end-to-end election
bound (:mod:`repro.algorithms.election.proof`).  Mid-race start states
for the inner level statements are harvested from reachability walks,
so every sampled configuration is consistent by construction.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro import obs
from repro.adversary.unit_time import (
    FifoRoundPolicy,
    ReversedRoundPolicy,
    RotatingRoundPolicy,
    RoundBasedAdversary,
    unit_time_schema,
)
from repro.algorithms import election
from repro.errors import VerificationError
from repro.models.base import ExperimentSetup, Model, sample_states_by_walk
from repro.models.registry import register_model
from repro.proofs.statements import ArrowStatement, StateClass
from repro.statespace.compile import SpaceSpec


def _validate_n(n: int) -> None:
    if n < 2:
        raise VerificationError(
            f"an election needs at least two candidates, got {n}"
        )


def _build(n: int) -> ExperimentSetup:
    """Automaton, view, and round-based adversary family for ``n``."""
    _validate_n(n)
    with obs.span("election.setup_build", n=n):
        view = election.ElectionProcessView(n)
        adversaries = tuple(
            (name, RoundBasedAdversary(view, policy))
            for name, policy in (
                ("fifo", FifoRoundPolicy()),
                ("reversed", ReversedRoundPolicy()),
                ("rotating", RotatingRoundPolicy()),
            )
        )
        return ExperimentSetup(
            n=n,
            automaton=election.election_automaton(n),
            view=view,
            adversaries=adversaries,
            schema=unit_time_schema(view),
            model=ELECTION_MODEL,
        )


def _leaf_statements(n: int) -> Dict[str, ArrowStatement]:
    """``E.k`` is the level-``k`` statement; ``E.1`` the base case."""
    _validate_n(n)
    leaves: Dict[str, ArrowStatement] = {}
    for k in range(n, 1, -1):
        leaves[f"E.{k}"] = election.level_statement(k)
    leaves["E.1"] = election.base_statement()
    return leaves


def _sample_states_in(
    region: StateClass, n: int, count: int, rng: random.Random
) -> List[election.ElectionState]:
    """Harvest region states from a reachability walk.

    Mid-race configurations (the ``D_k`` sources for ``k < n``) have
    nontrivial invariants — withdrawn candidates, barrier phases — so
    rather than a closed-form generator the sampler walks the automaton
    and keeps distinct region members it encounters.
    """
    return sample_states_by_walk(
        election.election_automaton(n), region, count, rng
    )


def _canonical_states(n: int) -> dict:
    """The all-active start: the worst (slowest) configuration."""
    return {"initial": election.election_initial_state(n)}


ELECTION_MODEL = register_model(
    Model(
        name="election",
        title="leader election",
        description=(
            "coin-flipping leader election among n candidates "
            "(Section 7 method generality)"
        ),
        size_noun="candidate count",
        sweep_noun="Candidate-count",
        target_label="a declared leader",
        schema_name=election.ELECTION_SCHEMA,
        n_default=4,
        n_range="n >= 2",
        default_prop="composed",
        validate_n=_validate_n,
        build=_build,
        time_of=election.election_time_of,
        leaf_statements=_leaf_statements,
        proof_chain=lambda n: election.election_proof(n),
        expected_time_bound=lambda n: (
            election.election_expected_time_bound(n)
        ),
        time_source_statement=lambda n: election.level_statement(n),
        target=election.leader_elected,
        canonical_states=_canonical_states,
        sample_states_in=_sample_states_in,
        space_spec=lambda n: SpaceSpec(
            key=lambda state: state.untimed(),
            time_of=election.election_time_of,
        ),
        mdp_reference=lambda n: election.election_initial_state(n),
        symmetry_spec=None,
        sweep_sizes=(3, 4, 5),
    )
)
