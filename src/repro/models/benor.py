"""Ben-Or randomized consensus as a registered model.

The method-generality case study for asynchronous consensus with crash
faults: the registered instance runs on the adversarially hardest
split-input vector (alternating 0/1) with the default crash tolerance
``f = (n-1)//2``, checks the hand-derived progress statement of
:mod:`repro.algorithms.benor.claims`, and measures expected decision
time from the protocol start.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro import obs
from repro.adversary.unit_time import (
    FifoRoundPolicy,
    ReversedRoundPolicy,
    RotatingRoundPolicy,
    RoundBasedAdversary,
    unit_time_schema,
)
from repro.algorithms import benor
from repro.errors import VerificationError
from repro.models.base import (
    ExperimentSetup,
    Model,
    single_statement_chain,
)
from repro.models.registry import register_model
from repro.proofs.statements import StateClass
from repro.statespace.compile import SpaceSpec


def _validate_n(n: int) -> None:
    if n < 2:
        raise VerificationError(
            f"Ben-Or consensus needs at least two processes, got {n}"
        )


def _split_inputs(n: int) -> Tuple[int, ...]:
    """The alternating input vector: maximal initial disagreement."""
    return tuple(i % 2 for i in range(n))


def _build(n: int) -> ExperimentSetup:
    """Automaton, view, and round-based adversary family for ``n``."""
    _validate_n(n)
    with obs.span("benor.setup_build", n=n):
        view = benor.BenOrProcessView(n)
        adversaries = tuple(
            (name, RoundBasedAdversary(view, policy))
            for name, policy in (
                ("fifo", FifoRoundPolicy()),
                ("reversed", ReversedRoundPolicy()),
                ("rotating", RotatingRoundPolicy()),
            )
        )
        return ExperimentSetup(
            n=n,
            automaton=benor.benor_automaton(_split_inputs(n)),
            view=view,
            adversaries=adversaries,
            schema=unit_time_schema(view),
            model=BENOR_MODEL,
        )


def _canonical_states(n: int) -> dict:
    """Protocol starts for the pivotal input vectors."""
    return {
        "split_inputs": benor.benor_initial_state(_split_inputs(n)),
        "all_zero": benor.benor_initial_state((0,) * n),
        "all_one": benor.benor_initial_state((1,) * n),
    }


def _sample_states_in(
    region: StateClass, n: int, count: int, rng: random.Random
) -> List[benor.BenOrState]:
    """Region sampler: protocol starts over random input vectors.

    The only source region of the shipped claims is ``Init`` (the
    protocol has not begun), whose members are exactly the per-input
    start states; sampling a random input vector per attempt covers it.
    """
    found = []
    for _ in range(count):
        inputs = tuple(rng.randint(0, 1) for _ in range(n))
        state = benor.benor_initial_state(inputs)
        if region.contains(state):
            found.append(state)
    return found


BENOR_MODEL = register_model(
    Model(
        name="benor",
        title="Ben-Or consensus",
        description=(
            "Ben-Or randomized binary consensus with crash faults "
            "(f = (n-1)//2, split inputs)"
        ),
        size_noun="system size",
        sweep_noun="System-size",
        target_label="a first decision",
        schema_name=benor.BENOR_SCHEMA,
        n_default=3,
        n_range="n >= 2 (state space grows quickly; n <= 4 recommended)",
        default_prop="B.1",
        validate_n=_validate_n,
        build=_build,
        time_of=benor.benor_time_of,
        leaf_statements=lambda n: {
            "B.1": benor.benor_progress_statement(n)
        },
        proof_chain=lambda n: single_statement_chain(
            benor.BENOR_SCHEMA,
            benor.benor_progress_statement(n),
            evidence=(
                "two Unit-Time rounds (4 units each, plus 2 of "
                "crash-induced stutter); with probability >= 2^-n all "
                "estimates agree after one adversarial round and a "
                "unanimous round decides deterministically"
            ),
        ),
        expected_time_bound=lambda n: benor.benor_expected_time_bound(n),
        time_source_statement=lambda n: benor.benor_progress_statement(n),
        target=benor.some_decided,
        canonical_states=_canonical_states,
        sample_states_in=_sample_states_in,
        space_spec=lambda n: SpaceSpec(
            key=lambda state: state.untimed(),
            time_of=benor.benor_time_of,
        ),
        mdp_reference=lambda n: benor.benor_initial_state(_split_inputs(n)),
        symmetry_spec=None,
        sweep_sizes=(2, 3),
    )
)
