"""Parameter sweeps: ring size, adversary class, and horizon ablations.

These produce the rows for the scaling and adversary-power benchmarks
(experiments E11 in DESIGN.md).  The paper proves constant bounds that
are independent of the ring size ``n``; the sweeps check that measured
worst-case probabilities and times indeed do not degrade with ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.algorithms import lehmann_rabin as lr
from repro.contracts import GuardConfig
from repro.parallel.pool import RunPolicy
from repro.analysis.montecarlo import (
    LRExperimentSetup,
    check_lr_statement,
    measure_lr_expected_time,
)


@dataclass(frozen=True)
class ScalingRow:
    """One row of the ring-size sweep."""

    n: int
    min_success_estimate: float
    claimed: float
    mean_time_to_c: float
    max_time_to_c: float


def ring_size_sweep(
    sizes: Sequence[int] = (3, 4, 5),
    seed: int = 0,
    samples_per_pair: int = 60,
    time_samples: int = 60,
    workers: int = 1,
    policy: Optional[RunPolicy] = None,
    guards: Optional[GuardConfig] = None,
    engine: str = "tree",
    state_budget: Optional[int] = None,
) -> List[ScalingRow]:
    """The composed statement and time-to-C across ring sizes.

    The paper's bounds are independent of ``n``; each row's
    ``min_success_estimate`` should stay at or above ``claimed`` (1/8)
    and the measured expected times should stay below 63.
    """
    chain = lr.lehmann_rabin_proof()
    final = chain.final_statement
    rows: List[ScalingRow] = []
    for n in sizes:
        setup = LRExperimentSetup.build(n)
        report = check_lr_statement(
            final,
            setup,
            seed=seed,
            samples_per_pair=samples_per_pair,
            random_starts=4,
            workers=workers,
            policy=policy,
            guards=guards,
            engine=engine,
            state_budget=state_budget,
        )
        times = measure_lr_expected_time(
            setup, seed=seed, samples=time_samples, workers=workers,
            policy=policy, guards=guards, engine=engine,
            state_budget=state_budget,
        )
        means = [r.mean for r in times.values() if r.times]
        maxima = [float(r.maximum) for r in times.values() if r.times]
        rows.append(
            ScalingRow(
                n=n,
                min_success_estimate=report.min_estimate,
                claimed=float(final.probability),
                mean_time_to_c=max(means),
                max_time_to_c=max(maxima),
            )
        )
    return rows


@dataclass(frozen=True)
class AdversaryPowerRow:
    """One row of the adversary-class comparison."""

    adversary: str
    success_estimate: float
    mean_time_to_c: float
    unreached: int


def adversary_power_comparison(
    n: int = 3,
    seed: int = 0,
    samples_per_pair: int = 100,
    time_samples: int = 100,
    workers: int = 1,
    policy: Optional[RunPolicy] = None,
    guards: Optional[GuardConfig] = None,
    engine: str = "tree",
    state_budget: Optional[int] = None,
) -> List[AdversaryPowerRow]:
    """Per-adversary success probability and time statistics.

    Ablation E11: how much do richer adversaries (history-dependent,
    obstructionist) hurt compared to oblivious orders?  The paper's
    bound must survive all of them.
    """
    chain = lr.lehmann_rabin_proof()
    final = chain.final_statement
    setup = LRExperimentSetup.build(n)
    report = check_lr_statement(
        final, setup, seed=seed, samples_per_pair=samples_per_pair,
        random_starts=4, workers=workers, policy=policy, guards=guards,
        engine=engine, state_budget=state_budget,
    )
    per_adversary: Dict[str, List[float]] = {}
    for check in report.checks:
        per_adversary.setdefault(check.adversary_name, []).append(
            check.estimate
        )
    times = measure_lr_expected_time(
        setup, seed=seed, samples=time_samples, workers=workers,
        policy=policy, guards=guards, engine=engine,
        state_budget=state_budget,
    )
    rows: List[AdversaryPowerRow] = []
    for name, estimates in sorted(per_adversary.items()):
        time_report = times[name]
        rows.append(
            AdversaryPowerRow(
                adversary=name,
                success_estimate=min(estimates),
                mean_time_to_c=(
                    time_report.mean if time_report.times else float("nan")
                ),
                unreached=time_report.unreached,
            )
        )
    return rows


@dataclass(frozen=True)
class HorizonRow:
    """One row of the deadline ablation for the composed statement."""

    time_bound: int
    min_success_estimate: float


def horizon_sweep(
    bounds: Sequence[int] = (5, 8, 11, 13, 20),
    n: int = 3,
    seed: int = 0,
    samples_per_pair: int = 80,
    workers: int = 1,
    policy: Optional[RunPolicy] = None,
    guards: Optional[GuardConfig] = None,
    engine: str = "tree",
    state_budget: Optional[int] = None,
) -> List[HorizonRow]:
    """Success probability of ``T --t--> C`` as the deadline ``t`` varies.

    Shows where the paper's (loose) constant 13 sits on the measured
    curve: success probability should be monotone in ``t`` and already
    exceed 1/8 well before 13.
    """
    from repro.proofs.statements import ArrowStatement

    setup = LRExperimentSetup.build(n)
    rows: List[HorizonRow] = []
    for bound in bounds:
        statement = ArrowStatement(
            lr.T_CLASS, lr.C_CLASS, bound, 0, lr.SCHEMA_NAME
        )
        report = check_lr_statement(
            statement, setup, seed=seed, samples_per_pair=samples_per_pair,
            random_starts=4, workers=workers, policy=policy, guards=guards,
            engine=engine, state_budget=state_budget,
        )
        rows.append(
            HorizonRow(time_bound=bound, min_success_estimate=report.min_estimate)
        )
    return rows
