"""Parameter sweeps: instance size, adversary class, and horizon ablations.

These produce the rows for the scaling and adversary-power benchmarks
(experiments E11 in DESIGN.md).  The paper proves constant bounds that
are independent of the ring size ``n``; the sweeps check that measured
worst-case probabilities and times indeed do not degrade with ``n``.

Every sweep takes a :class:`~repro.models.base.Model` (default: the
``lr`` registry entry) and reads the composed statement, the adversary
family, and the expected-time target through the model protocol, so
``repro sweep --model herman`` reuses the identical machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.contracts import GuardConfig
from repro.models.base import Model
from repro.models.registry import get_model
from repro.parallel.pool import RunPolicy
from repro.analysis.montecarlo import (
    check_statement,
    measure_expected_time,
)


def _resolve_model(model: Optional[Model]) -> Model:
    return model if model is not None else get_model("lr")


@dataclass(frozen=True)
class ScalingRow:
    """One row of the instance-size sweep."""

    n: int
    min_success_estimate: float
    claimed: float
    mean_time_to_c: float
    max_time_to_c: float


def ring_size_sweep(
    sizes: Sequence[int] = (3, 4, 5),
    seed: int = 0,
    samples_per_pair: int = 60,
    time_samples: int = 60,
    workers: int = 1,
    policy: Optional[RunPolicy] = None,
    guards: Optional[GuardConfig] = None,
    engine: str = "tree",
    state_budget: Optional[int] = None,
    model: Optional[Model] = None,
) -> List[ScalingRow]:
    """The composed statement and time-to-target across instance sizes.

    The paper's bounds are independent of ``n``; each row's
    ``min_success_estimate`` should stay at or above ``claimed`` (1/8
    for Lehmann-Rabin) and the measured expected times should stay
    below the model's claimed bound (63 for Lehmann-Rabin).
    """
    resolved = _resolve_model(model)
    rows: List[ScalingRow] = []
    for n in sizes:
        final = resolved.proof_chain(n).final_statement
        setup = resolved.build(n)
        report = check_statement(
            final,
            setup,
            seed=seed,
            samples_per_pair=samples_per_pair,
            random_starts=4,
            workers=workers,
            policy=policy,
            guards=guards,
            engine=engine,
            state_budget=state_budget,
        )
        times = measure_expected_time(
            setup, seed=seed, samples=time_samples, workers=workers,
            policy=policy, guards=guards, engine=engine,
            state_budget=state_budget,
        )
        means = [r.mean for r in times.values() if r.times]
        maxima = [float(r.maximum) for r in times.values() if r.times]
        rows.append(
            ScalingRow(
                n=n,
                min_success_estimate=report.min_estimate,
                claimed=float(final.probability),
                mean_time_to_c=max(means),
                max_time_to_c=max(maxima),
            )
        )
    return rows


@dataclass(frozen=True)
class AdversaryPowerRow:
    """One row of the adversary-class comparison."""

    adversary: str
    success_estimate: float
    mean_time_to_c: float
    unreached: int


def adversary_power_comparison(
    n: int = 3,
    seed: int = 0,
    samples_per_pair: int = 100,
    time_samples: int = 100,
    workers: int = 1,
    policy: Optional[RunPolicy] = None,
    guards: Optional[GuardConfig] = None,
    engine: str = "tree",
    state_budget: Optional[int] = None,
    model: Optional[Model] = None,
) -> List[AdversaryPowerRow]:
    """Per-adversary success probability and time statistics.

    Ablation E11: how much do richer adversaries (history-dependent,
    obstructionist) hurt compared to oblivious orders?  The paper's
    bound must survive all of them.
    """
    resolved = _resolve_model(model)
    final = resolved.proof_chain(n).final_statement
    setup = resolved.build(n)
    report = check_statement(
        final, setup, seed=seed, samples_per_pair=samples_per_pair,
        random_starts=4, workers=workers, policy=policy, guards=guards,
        engine=engine, state_budget=state_budget,
    )
    per_adversary: Dict[str, List[float]] = {}
    for check in report.checks:
        per_adversary.setdefault(check.adversary_name, []).append(
            check.estimate
        )
    times = measure_expected_time(
        setup, seed=seed, samples=time_samples, workers=workers,
        policy=policy, guards=guards, engine=engine,
        state_budget=state_budget,
    )
    rows: List[AdversaryPowerRow] = []
    for name, estimates in sorted(per_adversary.items()):
        time_report = times[name]
        rows.append(
            AdversaryPowerRow(
                adversary=name,
                success_estimate=min(estimates),
                mean_time_to_c=(
                    time_report.mean if time_report.times else float("nan")
                ),
                unreached=time_report.unreached,
            )
        )
    return rows


@dataclass(frozen=True)
class HorizonRow:
    """One row of the deadline ablation for the composed statement."""

    time_bound: int
    min_success_estimate: float


def horizon_sweep(
    bounds: Sequence[int] = (5, 8, 11, 13, 20),
    n: int = 3,
    seed: int = 0,
    samples_per_pair: int = 80,
    workers: int = 1,
    policy: Optional[RunPolicy] = None,
    guards: Optional[GuardConfig] = None,
    engine: str = "tree",
    state_budget: Optional[int] = None,
    model: Optional[Model] = None,
) -> List[HorizonRow]:
    """Success probability of the composed arrow as the deadline varies.

    Shows where the paper's (loose) constant sits on the measured
    curve: success probability should be monotone in ``t`` and, for
    Lehmann-Rabin, already exceed 1/8 well before 13.
    """
    from repro.proofs.statements import ArrowStatement

    resolved = _resolve_model(model)
    final = resolved.proof_chain(n).final_statement
    setup = resolved.build(n)
    rows: List[HorizonRow] = []
    for bound in bounds:
        statement = ArrowStatement(
            final.source, final.target, bound, 0, resolved.schema_name
        )
        report = check_statement(
            statement, setup, seed=seed, samples_per_pair=samples_per_pair,
            random_starts=4, workers=workers, policy=policy, guards=guards,
            engine=engine, state_budget=state_budget,
        )
        rows.append(
            HorizonRow(time_bound=bound, min_success_estimate=report.min_estimate)
        )
    return rows
