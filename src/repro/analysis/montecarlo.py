"""High-level Monte-Carlo experiment runner for arrow statements.

Wraps :mod:`repro.proofs.verifier` with the Lehmann-Rabin specifics:
building the automaton and adversary family for a ring size, sampling
region start states, and aggregating per-claim results into the rows
the benchmarks print.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.adversary.base import Adversary, AdversarySchema
from repro.adversary.unit_time import unit_time_schema
from repro.algorithms import lehmann_rabin as lr
from repro.automaton.automaton import ProbabilisticAutomaton
from repro.contracts import GuardConfig
from repro.errors import VerificationError
from repro.parallel.pool import RunPolicy
from repro.parallel.seeds import derive_rng, derive_seed
from repro.proofs.statements import ArrowStatement
from repro.proofs.verifier import (
    ArrowCheckReport,
    TimeToTargetReport,
    check_arrow_by_sampling,
    measure_time_to_target,
)
from repro.statespace.compile import SpaceSpec


@dataclass(frozen=True)
class LRExperimentSetup:
    """Everything needed to run Lehmann-Rabin experiments on one ring."""

    n: int
    automaton: ProbabilisticAutomaton[lr.LRState]
    view: lr.LRProcessView
    adversaries: Tuple[Tuple[str, Adversary[lr.LRState]], ...]
    #: The schema the family is declared to range over; the guard layer
    #: checks membership and probes execution closure against it.
    schema: Optional[AdversarySchema] = None

    def space_spec(self) -> SpaceSpec:
        """The compile quotient for this ring: intern states up to the
        clock (``LRState.untimed``) and read time advances off
        ``lr_time_of``.  Lehmann-Rabin dynamics are time-invariant, so
        the quotient is exact and keeps the compiled space finite."""
        return SpaceSpec(
            key=lambda state: state.untimed(), time_of=lr.lr_time_of
        )

    def symmetry_spec(self) -> SpaceSpec:
        """The untimed quotient *plus* the ring's dihedral quotient.

        Shrinks the compiled space by a factor approaching ``2n``
        (fitting n=5 inside the default state budget), but is only
        sound for quotient-level analyses and symmetry-invariant
        predicates: the shipped adversary policies break ties by
        process index and are not equivariant, so per-adversary
        sampling must keep :meth:`space_spec`.  See
        ``repro.algorithms.lehmann_rabin.symmetry``."""
        return lr.ring_symmetry_spec()

    @classmethod
    def build(
        cls,
        n: int,
        max_rounds: Optional[int] = None,
        random_seeds: Sequence[int] = (1, 2, 3),
    ) -> "LRExperimentSetup":
        """Construct the automaton, view, and adversary family for ``n``."""
        with obs.span("lr.setup_build", n=n):
            view = lr.LRProcessView(n)
            return cls(
                n=n,
                automaton=lr.lehmann_rabin_automaton(n),
                view=view,
                adversaries=tuple(
                    lr.lr_adversary_family(
                        view, max_rounds=max_rounds, random_seeds=random_seeds
                    )
                ),
                schema=unit_time_schema(view),
            )


def start_states_for(
    statement: ArrowStatement,
    setup: LRExperimentSetup,
    rng: random.Random,
    random_count: int = 6,
) -> List[lr.LRState]:
    """Start states in the statement's source region: canonical + random.

    Canonical states that happen to fall in the source region are always
    included so the paper's pivotal configurations are covered; random
    invariant-consistent states fill out the quantifier.
    """
    states = [
        state
        for state in lr.canonical_states(setup.n).values()
        if statement.source.contains(state)
    ]
    seen = {state.untimed() for state in states}
    if random_count > 0:
        for state in lr.sample_states_in(
            statement.source, setup.n, random_count, rng
        ):
            if state.untimed() not in seen:
                seen.add(state.untimed())
                states.append(state)
    if not states:
        raise VerificationError(
            f"no start states found in {statement.source.name!r}"
        )
    return states


def check_lr_statement(
    statement: ArrowStatement,
    setup: LRExperimentSetup,
    seed: int = 0,
    samples_per_pair: int = 120,
    random_starts: int = 6,
    max_steps: int = 400,
    *,
    workers: int = 1,
    early_stop: bool = False,
    policy: Optional[RunPolicy] = None,
    guards: Optional[GuardConfig] = None,
    engine: str = "tree",
    state_budget: Optional[int] = None,
) -> ArrowCheckReport:
    """Monte-Carlo check of one arrow statement on a Lehmann-Rabin ring.

    Start-state selection and pair sampling draw from *independent*
    child seeds of ``seed``: changing ``random_starts`` only adds or
    removes start states, it never perturbs the sample streams of the
    pairs both configurations share — so configs are comparable and
    the sequential and parallel backends agree.

    ``policy`` (timeouts, retries, checkpoint/resume, fault injection)
    hardens the run without changing the report — see
    ``docs/robustness.md``.  ``guards`` selects the contract-check mode
    (``docs/contracts.md``); the setup's declared schema backs the
    membership and execution-closure checks.  ``engine`` selects the
    evaluation strategy and ``state_budget`` the compile cap
    (``docs/statespace.md``); reports are byte-identical across engines.
    """
    starts_rng = derive_rng(seed, "starts")
    starts = start_states_for(statement, setup, starts_rng, random_starts)
    return check_arrow_by_sampling(
        setup.automaton,
        statement,
        list(setup.adversaries),
        starts,
        lr.lr_time_of,
        samples_per_pair=samples_per_pair,
        max_steps=max_steps,
        seed=derive_seed(seed, "pairs"),
        workers=workers,
        early_stop=early_stop,
        policy=policy,
        schema=setup.schema,
        guards=guards,
        engine=engine,
        space_spec=setup.space_spec(),
        state_budget=state_budget,
    )


def check_all_leaves(
    setup: LRExperimentSetup,
    seed: int = 0,
    samples_per_pair: int = 120,
    *,
    workers: int = 1,
    early_stop: bool = False,
    policy: Optional[RunPolicy] = None,
    guards: Optional[GuardConfig] = None,
    engine: str = "tree",
    state_budget: Optional[int] = None,
) -> Dict[str, ArrowCheckReport]:
    """Check every Section 6.2 leaf statement; keyed by proposition name."""
    reports: Dict[str, ArrowCheckReport] = {}
    for name, statement in lr.leaf_statements().items():
        with obs.span("lr.check_leaf", proposition=name):
            reports[name] = check_lr_statement(
                statement, setup, seed=seed,
                samples_per_pair=samples_per_pair, workers=workers,
                early_stop=early_stop, policy=policy, guards=guards,
                engine=engine, state_budget=state_budget,
            )
    return reports


def measure_lr_expected_time(
    setup: LRExperimentSetup,
    seed: int = 0,
    samples: int = 150,
    max_steps: int = 30_000,
    *,
    workers: int = 1,
    policy: Optional[RunPolicy] = None,
    guards: Optional[GuardConfig] = None,
    engine: str = "tree",
    state_budget: Optional[int] = None,
) -> Dict[str, TimeToTargetReport]:
    """Measure time-to-critical from ``T`` states under every adversary.

    The paper's bound: expected time at most 63 for every Unit-Time
    adversary.  Reports per-adversary sample means and maxima.  As in
    :func:`check_lr_statement`, start selection and each adversary's
    time sampling use independent child seeds of ``seed``.
    """
    starts_rng = derive_rng(seed, "starts")
    final = lr.leaf_statements()["A.3"]  # source class T
    starts = start_states_for(final, setup, starts_rng, random_count=6)
    reports: Dict[str, TimeToTargetReport] = {}
    with obs.span("lr.expected_time", n=setup.n, samples=samples):
        for name, adversary in setup.adversaries:
            reports[name] = measure_time_to_target(
                setup.automaton,
                name,
                adversary,
                starts,
                lr.in_critical,
                lr.lr_time_of,
                samples=samples,
                max_steps=max_steps,
                seed=derive_seed(seed, "time", name),
                workers=workers,
                policy=policy,
                schema=setup.schema,
                guards=guards,
                engine=engine,
                space_spec=setup.space_spec(),
                state_budget=state_budget,
            )
    return reports
