"""High-level Monte-Carlo experiment runner for arrow statements.

Wraps :mod:`repro.proofs.verifier` with the model-level specifics:
building the automaton and adversary family for an instance size,
sampling region start states, and aggregating per-claim results into
the rows the benchmarks print.  All model knowledge flows through the
:class:`~repro.models.base.Model` protocol — the historical
Lehmann-Rabin entry points (``LRExperimentSetup``,
``check_lr_statement``, ...) are thin aliases over the generic
functions with the ``lr`` model's hooks, and their behaviour (spans,
seed derivations, start-state selection) is byte-identical to the
hard-wired originals.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro import obs
from repro.contracts import GuardConfig
from repro.errors import VerificationError
from repro.models.base import ExperimentSetup, require_model
from repro.models.lr import LRExperimentSetup
from repro.parallel.pool import RunPolicy
from repro.parallel.seeds import derive_rng, derive_seed
from repro.proofs.statements import ArrowStatement
from repro.proofs.verifier import (
    ArrowCheckReport,
    TimeToTargetReport,
    check_arrow_by_sampling,
    measure_time_to_target,
)

__all__ = [
    "LRExperimentSetup",
    "check_all_leaves",
    "check_lr_statement",
    "check_statement",
    "measure_expected_time",
    "measure_lr_expected_time",
    "start_states_for",
]


def start_states_for(
    statement: ArrowStatement,
    setup: ExperimentSetup,
    rng: random.Random,
    random_count: int = 6,
) -> List:
    """Start states in the statement's source region: canonical + random.

    Canonical states that happen to fall in the source region are always
    included so the model's pivotal configurations are covered; random
    invariant-consistent states fill out the quantifier.
    """
    model = require_model(setup)
    states = [
        state
        for state in model.canonical_states(setup.n).values()
        if statement.source.contains(state)
    ]
    seen = {model.untimed(state) for state in states}
    if random_count > 0:
        for state in model.sample_states_in(
            statement.source, setup.n, random_count, rng
        ):
            if model.untimed(state) not in seen:
                seen.add(model.untimed(state))
                states.append(state)
    if not states:
        raise VerificationError(
            f"no start states found in {statement.source.name!r}"
        )
    return states


def check_statement(
    statement: ArrowStatement,
    setup: ExperimentSetup,
    seed: int = 0,
    samples_per_pair: int = 120,
    random_starts: int = 6,
    max_steps: int = 400,
    *,
    workers: int = 1,
    early_stop: bool = False,
    policy: Optional[RunPolicy] = None,
    guards: Optional[GuardConfig] = None,
    engine: str = "tree",
    state_budget: Optional[int] = None,
) -> ArrowCheckReport:
    """Monte-Carlo check of one arrow statement on a model instance.

    Start-state selection and pair sampling draw from *independent*
    child seeds of ``seed``: changing ``random_starts`` only adds or
    removes start states, it never perturbs the sample streams of the
    pairs both configurations share — so configs are comparable and
    the sequential and parallel backends agree.

    ``policy`` (timeouts, retries, checkpoint/resume, fault injection)
    hardens the run without changing the report — see
    ``docs/robustness.md``.  ``guards`` selects the contract-check mode
    (``docs/contracts.md``); the setup's declared schema backs the
    membership and execution-closure checks.  ``engine`` selects the
    evaluation strategy and ``state_budget`` the compile cap
    (``docs/statespace.md``); reports are byte-identical across engines.
    """
    model = require_model(setup)
    starts_rng = derive_rng(seed, "starts")
    starts = start_states_for(statement, setup, starts_rng, random_starts)
    return check_arrow_by_sampling(
        setup.automaton,
        statement,
        list(setup.adversaries),
        starts,
        model.time_of,
        samples_per_pair=samples_per_pair,
        max_steps=max_steps,
        seed=derive_seed(seed, "pairs"),
        workers=workers,
        early_stop=early_stop,
        policy=policy,
        schema=setup.schema,
        guards=guards,
        engine=engine,
        space_spec=setup.space_spec(),
        state_budget=state_budget,
    )


def check_all_leaves(
    setup: ExperimentSetup,
    seed: int = 0,
    samples_per_pair: int = 120,
    *,
    workers: int = 1,
    early_stop: bool = False,
    policy: Optional[RunPolicy] = None,
    guards: Optional[GuardConfig] = None,
    engine: str = "tree",
    state_budget: Optional[int] = None,
) -> Dict[str, ArrowCheckReport]:
    """Check every leaf statement of the model; keyed by proposition."""
    model = require_model(setup)
    reports: Dict[str, ArrowCheckReport] = {}
    for name, statement in model.leaf_statements(setup.n).items():
        with obs.span(f"{model.name}.check_leaf", proposition=name):
            reports[name] = check_statement(
                statement, setup, seed=seed,
                samples_per_pair=samples_per_pair, workers=workers,
                early_stop=early_stop, policy=policy, guards=guards,
                engine=engine, state_budget=state_budget,
            )
    return reports


def measure_expected_time(
    setup: ExperimentSetup,
    seed: int = 0,
    samples: int = 150,
    max_steps: int = 30_000,
    *,
    workers: int = 1,
    policy: Optional[RunPolicy] = None,
    guards: Optional[GuardConfig] = None,
    engine: str = "tree",
    state_budget: Optional[int] = None,
) -> Dict[str, TimeToTargetReport]:
    """Measure time-to-target from source states under every adversary.

    The model's claimed bound (``Model.expected_time_bound``) must
    dominate every Unit-Time adversary's mean; for Lehmann-Rabin that
    is the paper's 63 to the critical region from ``T`` states.
    Reports per-adversary sample means and maxima.  As in
    :func:`check_statement`, start selection and each adversary's time
    sampling use independent child seeds of ``seed``.
    """
    model = require_model(setup)
    starts_rng = derive_rng(seed, "starts")
    final = model.time_source_statement(setup.n)
    starts = start_states_for(final, setup, starts_rng, random_count=6)
    reports: Dict[str, TimeToTargetReport] = {}
    with obs.span(
        f"{model.name}.expected_time", n=setup.n, samples=samples
    ):
        for name, adversary in setup.adversaries:
            reports[name] = measure_time_to_target(
                setup.automaton,
                name,
                adversary,
                starts,
                model.target,
                model.time_of,
                samples=samples,
                max_steps=max_steps,
                seed=derive_seed(seed, "time", name),
                workers=workers,
                policy=policy,
                schema=setup.schema,
                guards=guards,
                engine=engine,
                space_spec=setup.space_spec(),
                state_budget=state_budget,
            )
    return reports


#: Historical Lehmann-Rabin names, kept as exact aliases: with a setup
#: built by ``LRExperimentSetup.build`` these run the same code path,
#: spans, and seed derivations as before the model front-end existed.
check_lr_statement = check_statement
measure_lr_expected_time = measure_expected_time
