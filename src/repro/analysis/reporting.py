"""Plain-text table rendering for experiment reports.

The paper reports its results as proved inequalities; the benchmarks
regenerate them as tables of measured worst-case probabilities and
times.  This module renders those tables without third-party
dependencies so benchmark output is readable in any terminal or log.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render rows as a fixed-width text table with a header rule."""
    rendered_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    parts = [line(list(headers)), line(["-" * w for w in widths])]
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def format_fraction(value, digits: int = 4) -> str:
    """Render an exact fraction with its float approximation."""
    return f"{value} (~{float(value):.{digits}f})"


def banner(title: str) -> str:
    """A section banner for experiment logs."""
    rule = "=" * max(len(title), 8)
    return f"{rule}\n{title}\n{rule}"


def arrow_report_row(name: str, report) -> tuple:
    """A table row for an :class:`~repro.proofs.verifier.ArrowCheckReport`.

    Consumes the report's stable ``to_dict()`` form, so this stays in
    sync with what trace sinks serialize.
    """
    data = report.to_dict()
    if data["min_estimate"] is None:
        estimate = "n/a"
    else:
        estimate = f"{data['min_estimate']:.3f}"
    if data["refuted"]:
        verdict = "REFUTED"
    elif data.get("quarantined"):
        verdict = "QUARANTINED"
    else:
        verdict = "ok"
    return (name, data["statement"], estimate, verdict)


def time_report_row(name: str, report) -> tuple:
    """A table row for a :class:`~repro.proofs.verifier.TimeToTargetReport`.

    The verdict column is left to the caller (the acceptable mean
    depends on the claimed bound); this renders the measured columns.
    """
    data = report.to_dict()
    mean = f"{data['mean']:.2f}" if data["mean"] is not None else "n/a"
    maximum = f"{data['max']:g}" if data["max"] is not None else "n/a"
    return (name, mean, maximum, data["unreached"])
