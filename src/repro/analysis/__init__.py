"""Experiment harness: Monte-Carlo runners, sweeps, and reporting."""

from repro.analysis.experiments import (
    AdversaryPowerRow,
    HorizonRow,
    ScalingRow,
    adversary_power_comparison,
    horizon_sweep,
    ring_size_sweep,
)
from repro.analysis.montecarlo import (
    LRExperimentSetup,
    check_all_leaves,
    check_lr_statement,
    check_statement,
    measure_expected_time,
    measure_lr_expected_time,
    start_states_for,
)
from repro.analysis.reporting import banner, format_fraction, format_table

# The Lehmann-Rabin phase decomposition moved to
# repro.algorithms.lehmann_rabin.phases with the model front-end split:
# it is algorithm-specific analysis, not generic machinery.

__all__ = [
    "AdversaryPowerRow",
    "HorizonRow",
    "LRExperimentSetup",
    "ScalingRow",
    "adversary_power_comparison",
    "banner",
    "check_all_leaves",
    "check_lr_statement",
    "check_statement",
    "format_fraction",
    "format_table",
    "horizon_sweep",
    "measure_expected_time",
    "measure_lr_expected_time",
    "ring_size_sweep",
    "start_states_for",
]
