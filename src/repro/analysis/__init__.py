"""Experiment harness: Monte-Carlo runners, sweeps, and reporting."""

from repro.analysis.experiments import (
    AdversaryPowerRow,
    HorizonRow,
    ScalingRow,
    adversary_power_comparison,
    horizon_sweep,
    ring_size_sweep,
)
from repro.analysis.phases import (
    FAIL_FOURTH,
    FAIL_THIRD,
    SUCCESS,
    PhaseOutcome,
    PhaseStatistics,
    classify_attempt,
    sample_phase_statistics,
)
from repro.analysis.montecarlo import (
    LRExperimentSetup,
    check_all_leaves,
    check_lr_statement,
    measure_lr_expected_time,
    start_states_for,
)
from repro.analysis.reporting import banner, format_fraction, format_table

__all__ = [
    "AdversaryPowerRow",
    "FAIL_FOURTH",
    "FAIL_THIRD",
    "HorizonRow",
    "LRExperimentSetup",
    "PhaseOutcome",
    "PhaseStatistics",
    "SUCCESS",
    "ScalingRow",
    "classify_attempt",
    "sample_phase_statistics",
    "adversary_power_comparison",
    "banner",
    "check_all_leaves",
    "check_lr_statement",
    "format_fraction",
    "format_table",
    "horizon_sweep",
    "measure_lr_expected_time",
    "ring_size_sweep",
    "start_states_for",
]
