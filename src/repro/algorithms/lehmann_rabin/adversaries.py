"""Hostile Unit-Time adversaries for the Lehmann-Rabin ring.

The arrow statements quantify over every Unit-Time adversary with full
knowledge of the past; these policies approximate the worst case from
several directions:

* the generic order policies (FIFO/reversed/rotating) from
  :mod:`repro.adversary.unit_time`;
* :class:`ObstructionistPolicy` — a hand-crafted heuristic that plays
  the classic spoiling strategy: let a neighbour steal the second
  resource a committed process is about to check, and hurry processes
  into failed checks;
* derandomised pseudo-random policies
  (:class:`~repro.adversary.search.HashedRandomRoundPolicy`) to sweep
  the order space broadly.

Since all coin outcomes are recorded in the state (the ``u_i``
variables), state-dependent policies already have the "complete
knowledge of the past" the paper grants the adversary.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, Tuple

from repro.adversary.base import Adversary
from repro.adversary.search import HashedRandomRoundPolicy
from repro.adversary.unit_time import (
    ADVANCE_TIME,
    FifoRoundPolicy,
    MarkovRoundPolicy,
    Move,
    ProcessView,
    ReversedRoundPolicy,
    RotatingRoundPolicy,
    RoundBasedAdversary,
    RoundPolicy,
    steps_of_process,
)
from repro.algorithms.lehmann_rabin.automaton import LRProcessView
from repro.algorithms.lehmann_rabin.state import FREE, LRState, PC
from repro.automaton.automaton import ProbabilisticAutomaton
from repro.errors import AdversaryError


class ObstructionistPolicy(MarkovRoundPolicy[LRState]):
    """A heuristic spoiler for the Lehmann-Rabin ring.

    Scheduling priorities within a round (lower score goes first):

    0. A waiting process whose wanted resource is free *and* is the
       second resource of some committed neighbour — stealing it forces
       the neighbour's check to fail.
    1. A process at ``S`` whose second resource is currently taken —
       firing the check now wastes it.
    2. Neutral moves (flips, drops, exits, ...).
    3. A process at ``S`` whose second resource is free — delayed to the
       end of the round in the hope that a steal materialises first.

    This is exactly the dependence-inducing behaviour Example 4.1 warns
    about: the adversary reads coin outcomes (the ``u_i`` in the state)
    and reorders steps to hurt the algorithm.
    """

    def _score(self, state: LRState, i: int) -> int:
        local = state.process(i)
        if local.pc is PC.S:
            second = state.resource_index(i, local.u.opp)
            return 1 if state.resource(second) else 3
        if local.pc is PC.W:
            wanted = state.resource_index(i, local.u)
            if state.resource(wanted) == FREE and self._is_contested(
                state, wanted, exclude=i
            ):
                return 0
        return 2

    @staticmethod
    def _is_contested(state: LRState, resource: int, exclude: int) -> bool:
        """Is ``resource`` the second resource of some committed process?"""
        n = state.n
        for j in (resource, (resource + 1) % n):
            if j == exclude:
                continue
            local = state.process(j)
            if local.pc in (PC.W, PC.S):
                second = state.resource_index(j, local.u.opp)
                if second == resource:
                    return True
        return False

    def markov_move(
        self,
        automaton: ProbabilisticAutomaton[LRState],
        state: LRState,
        pending: Tuple[Hashable, ...],
        view: ProcessView[LRState],
        rounds: int,
    ) -> Move:
        if not pending:
            return ADVANCE_TIME
        process = min(pending, key=lambda i: (self._score(state, i), i))
        steps = steps_of_process(automaton, state, view, process)
        if not steps:
            raise AdversaryError(
                f"process {process!r} is pending but has no enabled steps"
            )
        return steps[0]

    def __repr__(self) -> str:
        return "ObstructionistPolicy()"


class SlowStarterPolicy(MarkovRoundPolicy[LRState]):
    """Delays one distinguished process to the end of every round.

    Starving a single process as long as Unit-Time permits probes the
    statements' uniformity over processes.
    """

    def __init__(self, victim: int):
        self._victim = victim

    def markov_move(
        self,
        automaton: ProbabilisticAutomaton[LRState],
        state: LRState,
        pending: Tuple[Hashable, ...],
        view: ProcessView[LRState],
        rounds: int,
    ) -> Move:
        if not pending:
            return ADVANCE_TIME
        others = [p for p in pending if p != self._victim]
        process = others[0] if others else pending[0]
        steps = steps_of_process(automaton, state, view, process)
        if not steps:
            raise AdversaryError(
                f"process {process!r} is pending but has no enabled steps"
            )
        return steps[0]

    def __repr__(self) -> str:
        return f"SlowStarterPolicy(victim={self._victim})"


def lr_progress_potential(state: LRState) -> float:
    """A progress potential for the Lehmann-Rabin ring.

    Rewards states the algorithm wants: critical/pre-critical processes
    dominate, then committed processes whose second resource is free
    (one step from ``P``), then good processes, then committed ones.
    The greedy minimiser
    (:class:`~repro.adversary.greedy.GreedyMinimizerPolicy`) therefore
    delays promising checks and manufactures contention — a sharper
    version of the hand-written obstructionist heuristic.
    """
    from repro.algorithms.lehmann_rabin.regions import good_processes

    score = 0.0
    for i in range(state.n):
        local = state.process(i)
        if local.pc is PC.C:
            score += 100.0
        elif local.pc is PC.P:
            score += 50.0
        elif local.pc is PC.S:
            second = state.resource_index(i, local.u.opp)
            score += 8.0 if state.resource(second) == FREE else 2.0
        elif local.pc is PC.W:
            score += 1.0
    score += 3.0 * len(good_processes(state))
    return score


def lr_adversary_family(
    view: LRProcessView,
    max_rounds: Optional[int] = None,
    random_seeds: Sequence[int] = (1, 2, 3, 4, 5),
) -> List[Tuple[str, Adversary[LRState]]]:
    """The named family of Unit-Time adversaries used by the experiments.

    All members are round-based (hence genuinely in Unit-Time); the
    family mixes structured orders, the obstructionist heuristic, a
    starver per position 0, and derandomised random orders.
    """
    def round_based(policy: RoundPolicy[LRState]) -> RoundBasedAdversary:
        return RoundBasedAdversary(view, policy, max_rounds=max_rounds)

    from repro.adversary.greedy import GreedyMinimizerPolicy

    family: List[Tuple[str, Adversary[LRState]]] = [
        ("fifo", round_based(FifoRoundPolicy())),
        ("reversed", round_based(ReversedRoundPolicy())),
        ("rotating", round_based(RotatingRoundPolicy())),
        ("obstructionist", round_based(ObstructionistPolicy())),
        ("slow-starter-0", round_based(SlowStarterPolicy(0))),
        ("greedy-min", round_based(GreedyMinimizerPolicy(lr_progress_potential))),
    ]
    for seed in random_seeds:
        family.append(
            (f"hashed-{seed}", round_based(HashedRandomRoundPolicy(seed)))
        )
    return family
