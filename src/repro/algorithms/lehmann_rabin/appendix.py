"""The appendix lemmas (A.2, A.4–A.10, A.12, A.13) as executable claims.

The paper's detailed proof is a case analysis of conditional claims of
the form

    from any state satisfying H, if ``first(flip_j, side)`` (for one or
    two specific coins), then within time t a conclusion state is
    reached,

plus two probabilistic lemmas (A.12/A.13: probability at least 1/2).
This module encodes every one of them as data
(:class:`ConditionalLemma` / :class:`ProbabilisticLemma`) and checks
them *exactly*: hypothesis states are enumerated exhaustively from the
Lemma 6.1-consistent combinations of the constrained local states, and
the counterexample probability is maximised over every strategy of the
round-synchronous Unit-Time subclass
(:func:`repro.mdp.conditional.max_counterexample_probability_rounds`).
A lemma passes when that maximum is zero (conditional lemmas) or when
the exact minimum success probability meets the bound (probabilistic
lemmas).

One transcription note: the symmetric clause of Lemma A.8 reads
``X_i in {E_R, R, F, D}`` in the paper; by the symmetry with the first
clause (whose ``D`` is annotated ``D->``, the side pointing *away* from
the shared resource) the intended set is ``{E_R, R, F, D<-}``, and that
is what we encode — with ``D->`` the claim is false (the adversary
fires ``i+1``'s doomed check first and nobody reaches ``P`` within
time 1), which our checker confirms.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from repro.algorithms.lehmann_rabin.automaton import (
    FLIP,
    LRProcessView,
    lehmann_rabin_automaton,
)
from repro.algorithms.lehmann_rabin.regions import (
    in_flip_ready,
    in_good,
    in_pre_critical,
)
from repro.algorithms.lehmann_rabin.state import (
    LRState,
    PC,
    ProcessState,
    SHARP_PCS,
    Side,
    consistent_resources,
    make_state,
)
from repro.automaton.signature import Action
from repro.errors import VerificationError
from repro.mdp.bounded import min_reach_probability_rounds
from repro.mdp.conditional import max_counterexample_probability_rounds

#: Every local state (pc, u) a process can occupy.
ALL_LOCALS: Tuple[ProcessState, ...] = tuple(
    ProcessState(pc, side) for pc in PC for side in Side
)


def locals_of(*pcs: PC) -> Tuple[ProcessState, ...]:
    """All local states whose counter is among ``pcs`` (both sides)."""
    return tuple(
        local for local in ALL_LOCALS if local.pc in pcs
    )


def pointing(pc: PC, side: Side) -> Tuple[ProcessState, ...]:
    """The single local state ``pc`` with the given side."""
    return (ProcessState(pc, side),)


#: ``{E_R, R, T}`` — the paper's "idle or trying" neighbour set.
ER_R_T = locals_of(PC.ER, PC.R, PC.F, PC.W, PC.S, PC.D, PC.P)
#: ``{E_R, R, F}``.
ER_R_F = locals_of(PC.ER, PC.R, PC.F)


def states_matching(
    n: int, constraints: Mapping[int, Sequence[ProcessState]]
) -> List[LRState]:
    """Every Lemma 6.1-consistent state meeting per-process constraints.

    Unconstrained processes range over all 20 local states, so the
    result covers the lemma's hypothesis exhaustively for ring size
    ``n``.  Keep ``n`` small (3 or 4): the product grows as 20^free.
    """
    menus = [
        tuple(constraints.get(i, ALL_LOCALS)) for i in range(n)
    ]
    states = []
    for combo in itertools.product(*menus):
        if consistent_resources(combo) is None:
            continue
        states.append(make_state(list(combo)))
    if not states:
        raise VerificationError("no consistent state satisfies the hypothesis")
    return states


@dataclass(frozen=True)
class ConditionalLemma:
    """A ``first(...) ⟹ reach-within-t`` claim over hypothesis states."""

    name: str
    description: str
    hypothesis_states: Tuple[LRState, ...]
    watched: Dict[Action, Callable[[LRState], bool]]
    time_bound: int
    conclusion: Callable[[LRState], bool]


@dataclass(frozen=True)
class ProbabilisticLemma:
    """A ``reach-within-t with probability >= p`` claim."""

    name: str
    description: str
    hypothesis_states: Tuple[LRState, ...]
    time_bound: int
    probability: Fraction
    conclusion: Callable[[LRState], bool]


def _flip_lands(i: int, side: Side) -> Callable[[LRState], bool]:
    """The first-occurrence constraint: ``flip_i`` yields ``side``."""

    def landed(state: LRState) -> bool:
        return state.process(i) == ProcessState(PC.W, side)

    return landed


def _any_in_p(*indices: int) -> Callable[[LRState], bool]:
    """Conclusion: one of the given processes is pre-critical."""

    def conclusion(state: LRState) -> bool:
        return any(state.process(i).pc is PC.P for i in indices)

    return conclusion


def lemma_a2(n: int, i: int = 0) -> ConditionalLemma:
    """A.2: a process in its exit region reaches ``R`` within time 3."""
    states = states_matching(n, {i: locals_of(PC.EF, PC.ES, PC.ER)})

    def conclusion(state: LRState, index: int = i) -> bool:
        return state.process(index).pc is PC.R

    return ConditionalLemma(
        name="A.2",
        description="an exiting process relinquishes and reaches R within 3",
        hypothesis_states=tuple(states),
        watched={},
        time_bound=3,
        conclusion=conclusion,
    )


def _a4_conclusion(n: int, i: int) -> Callable[[LRState], bool]:
    def conclusion(state: LRState) -> bool:
        return (
            state.process(i - 1).pc is PC.P
            or state.process(i).pc is PC.S
        )

    return conclusion


def lemma_a4(n: int, case: int, i: int = 1) -> ConditionalLemma:
    """A.4 items 1-4: neighbour sets {ER,R,F} / {D} / {S} / {W}.

    ``X_{i-1}`` in the case's set, ``X_i = W<-``, conditioned on
    ``first(flip_{i-1}, left)``; within time ``case`` either ``X_{i-1}``
    reaches ``P`` or ``X_i`` reaches ``S``.
    """
    neighbour_sets = {
        1: ER_R_F,
        2: locals_of(PC.D),
        3: locals_of(PC.S),
        4: locals_of(PC.W),
    }
    if case not in neighbour_sets:
        raise VerificationError(f"A.4 has items 1-4, not {case}")
    states = states_matching(
        n,
        {
            (i - 1) % n: neighbour_sets[case],
            i: pointing(PC.W, Side.LEFT),
        },
    )
    return ConditionalLemma(
        name=f"A.4.{case}",
        description=(
            "left-waiting process obtains its first resource, or the "
            "left neighbour enters P"
        ),
        hypothesis_states=tuple(states),
        watched={(FLIP, (i - 1) % n): _flip_lands((i - 1) % n, Side.LEFT)},
        time_bound=case,
        conclusion=_a4_conclusion(n, i),
    )


def lemma_a5(n: int, i: int = 1) -> ConditionalLemma:
    """A.5: the union of A.4's cases, with the uniform time bound 4."""
    states = states_matching(
        n, {(i - 1) % n: ER_R_T, i: pointing(PC.W, Side.LEFT)}
    )
    return ConditionalLemma(
        name="A.5",
        description="A.4 with X_{i-1} anywhere in {E_R, R, T}",
        hypothesis_states=tuple(states),
        watched={(FLIP, (i - 1) % n): _flip_lands((i - 1) % n, Side.LEFT)},
        time_bound=4,
        conclusion=_a4_conclusion(n, i),
    )


def lemma_a7(n: int, variant: str = "left", i: int = 0) -> ConditionalLemma:
    """A.7: two committed processes contesting one resource; no coins.

    ``X_i = S<-`` with ``X_{i+1}`` in {W->, S->} (variant "left"), or
    ``X_i`` in {W<-, S<-} with ``X_{i+1} = S->`` (variant "right"); one
    of the two enters ``P`` within time 1.
    """
    j = (i + 1) % n
    if variant == "left":
        constraints = {
            i: pointing(PC.S, Side.LEFT),
            j: pointing(PC.W, Side.RIGHT) + pointing(PC.S, Side.RIGHT),
        }
    elif variant == "right":
        constraints = {
            i: pointing(PC.W, Side.LEFT) + pointing(PC.S, Side.LEFT),
            j: pointing(PC.S, Side.RIGHT),
        }
    else:
        raise VerificationError(f"unknown A.7 variant {variant!r}")
    return ConditionalLemma(
        name=f"A.7 ({variant})",
        description="whoever tests the shared free resource first enters P",
        hypothesis_states=tuple(states_matching(n, constraints)),
        watched={},
        time_bound=1,
        conclusion=_any_in_p(i, j),
    )


def lemma_a8(n: int, variant: str = "left", i: int = 0) -> ConditionalLemma:
    """A.8: a committed process vs an uncommitted neighbour with a coin.

    Variant "left": ``X_i = S<-``, ``X_{i+1}`` in {E_R, R, F, D->},
    conditioned on ``first(flip_{i+1}, right)``.  Variant "right" is the
    mirror image (with the D annotated ``D<-``; see the module note on
    the paper's typo).
    """
    j = (i + 1) % n
    if variant == "left":
        constraints = {
            i: pointing(PC.S, Side.LEFT),
            j: ER_R_F + pointing(PC.D, Side.RIGHT),
        }
        watched = {(FLIP, j): _flip_lands(j, Side.RIGHT)}
    elif variant == "right":
        constraints = {
            i: ER_R_F + pointing(PC.D, Side.LEFT),
            j: pointing(PC.S, Side.RIGHT),
        }
        watched = {(FLIP, i): _flip_lands(i, Side.LEFT)}
    else:
        raise VerificationError(f"unknown A.8 variant {variant!r}")
    return ConditionalLemma(
        name=f"A.8 ({variant})",
        description=(
            "the committed process tests the shared resource within 1; "
            "the neighbour's constrained coin keeps it clear"
        ),
        hypothesis_states=tuple(states_matching(n, constraints)),
        watched=watched,
        time_bound=1,
        conclusion=_any_in_p(i, j),
    )


def lemma_a9(n: int, i: int = 1) -> ConditionalLemma:
    """A.9: the three-process configuration around a left-waiting process.

    ``X_{i-1}`` in {E_R,R,T}, ``X_i = W<-``, ``X_{i+1}`` in
    {E_R,R,F,W->,D->}; conditioned on ``first(flip_{i-1}, left)`` and
    ``first(flip_{i+1}, right)``, one of the three enters ``P`` within
    time 5.
    """
    h, j = (i - 1) % n, (i + 1) % n
    constraints = {
        h: ER_R_T,
        i: pointing(PC.W, Side.LEFT),
        j: ER_R_F
        + pointing(PC.W, Side.RIGHT)
        + pointing(PC.D, Side.RIGHT),
    }
    return ConditionalLemma(
        name="A.9",
        description="the paper's central three-process progress argument",
        hypothesis_states=tuple(states_matching(n, constraints)),
        watched={
            (FLIP, h): _flip_lands(h, Side.LEFT),
            (FLIP, j): _flip_lands(j, Side.RIGHT),
        },
        time_bound=5,
        conclusion=_any_in_p(h, i, j),
    )


def lemma_a10(n: int, i: int = 0) -> ConditionalLemma:
    """A.10: the mirror image of A.9."""
    j, k = (i + 1) % n, (i + 2) % n
    constraints = {
        i: ER_R_F
        + pointing(PC.W, Side.LEFT)
        + pointing(PC.D, Side.LEFT),
        j: pointing(PC.W, Side.RIGHT),
        k: ER_R_T,
    }
    return ConditionalLemma(
        name="A.10",
        description="the symmetric case of A.9",
        hypothesis_states=tuple(states_matching(n, constraints)),
        watched={
            (FLIP, i): _flip_lands(i, Side.LEFT),
            (FLIP, k): _flip_lands(k, Side.RIGHT),
        },
        time_bound=5,
        conclusion=_any_in_p(i, j, k),
    )


def _goal_g_or_p(state: LRState) -> bool:
    return in_good(state) or in_pre_critical(state)


def lemma_a12(n: int) -> ProbabilisticLemma:
    """A.12: a flip-ready process with a non-surrounding neighbourhood.

    States of ``F`` containing a process ``i`` with ``X_i = F`` and
    ``(X_{i-1}, X_{i+1}) != (#->, #<-)``: with probability at least 1/2
    a state of ``G ∪ P`` is reached within time 1.
    """

    def hypothesis(state: LRState) -> bool:
        if not in_flip_ready(state):
            return False
        for i in range(state.n):
            if state.process(i).pc is not PC.F:
                continue
            left, right = state.process(i - 1), state.process(i + 1)
            surrounded = (
                left.pc in SHARP_PCS and left.u is Side.RIGHT
                and right.pc in SHARP_PCS and right.u is Side.LEFT
            )
            if not surrounded:
                return True
        return False

    states = [
        state
        for state in states_matching(n, {})
        if hypothesis(state)
    ]
    return ProbabilisticLemma(
        name="A.12",
        description="an unsurrounded flipper creates a good process",
        hypothesis_states=tuple(states),
        time_bound=1,
        probability=Fraction(1, 2),
        conclusion=_goal_g_or_p,
    )


def lemma_a13(n: int) -> ProbabilisticLemma:
    """A.13: every flip-ready process surrounded by opposing arrows.

    States of ``F`` where some ``X_i = F`` has
    ``(X_{i-1}, X_{i+1}) = (#->, #<-)``: with probability at least 1/2
    a state of ``G ∪ P`` is reached within time 2.
    """

    def hypothesis(state: LRState) -> bool:
        if not in_flip_ready(state):
            return False
        for i in range(state.n):
            if state.process(i).pc is not PC.F:
                continue
            left, right = state.process(i - 1), state.process(i + 1)
            if (
                left.pc in SHARP_PCS and left.u is Side.RIGHT
                and right.pc in SHARP_PCS and right.u is Side.LEFT
            ):
                return True
        return False

    states = [
        state
        for state in states_matching(n, {})
        if hypothesis(state)
    ]
    return ProbabilisticLemma(
        name="A.13",
        description="a surrounded flipper: the wrap-around case analysis",
        hypothesis_states=tuple(states),
        time_bound=2,
        probability=Fraction(1, 2),
        conclusion=_goal_g_or_p,
    )


def conditional_lemmas(n: int) -> List[ConditionalLemma]:
    """Every conditional appendix lemma, instantiated for ring size ``n``."""
    return [
        lemma_a2(n),
        lemma_a4(n, 1),
        lemma_a4(n, 2),
        lemma_a4(n, 3),
        lemma_a4(n, 4),
        lemma_a5(n),
        lemma_a7(n, "left"),
        lemma_a7(n, "right"),
        lemma_a8(n, "left"),
        lemma_a8(n, "right"),
        lemma_a9(n),
        lemma_a10(n),
    ]


def probabilistic_lemmas(n: int) -> List[ProbabilisticLemma]:
    """The two probabilistic appendix lemmas for ring size ``n``."""
    return [lemma_a12(n), lemma_a13(n)]


@dataclass(frozen=True)
class LemmaCheckResult:
    """Outcome of exactly checking one lemma over all hypothesis states."""

    name: str
    states_checked: int
    worst_value: Fraction
    holds: bool
    witness: object = None


def check_conditional_lemma(
    lemma: ConditionalLemma,
    n: int,
    max_states: int = 10_000,
) -> LemmaCheckResult:
    """Exact check: max counterexample probability must be zero.

    Maximised over every round-synchronous Unit-Time strategy and every
    hypothesis state.
    """
    automaton = lehmann_rabin_automaton(n)
    view = LRProcessView(n)
    worst = Fraction(0)
    witness = None
    states = lemma.hypothesis_states[:max_states]
    for state in states:
        value = max_counterexample_probability_rounds(
            automaton,
            view,
            lemma.watched,
            lemma.conclusion,
            state,
            lemma.time_bound,
            strip_time=lambda s: s.untimed(),
        )
        if value > worst:
            worst = value
            witness = state
    return LemmaCheckResult(
        name=lemma.name,
        states_checked=len(states),
        worst_value=worst,
        holds=(worst == 0),
        witness=witness,
    )


def check_probabilistic_lemma(
    lemma: ProbabilisticLemma,
    n: int,
    max_states: int = 10_000,
) -> LemmaCheckResult:
    """Exact check: min success probability must meet the lemma's bound."""
    automaton = lehmann_rabin_automaton(n)
    view = LRProcessView(n)
    worst = Fraction(1)
    witness = None
    states = lemma.hypothesis_states[:max_states]
    for state in states:
        value = min_reach_probability_rounds(
            automaton,
            view,
            lemma.conclusion,
            state,
            lemma.time_bound,
            strip_time=lambda s: s.untimed(),
        )
        if value < worst:
            worst = value
            witness = state
    return LemmaCheckResult(
        name=lemma.name,
        states_checked=len(states),
        worst_value=worst,
        holds=(worst >= lemma.probability),
        witness=witness,
    )
