"""The Section 6.2 proof, reconstructed mechanically.

Five leaf statements (proved by hand in the paper's appendix, verified
empirically by this library's benchmarks) are combined with
Proposition 3.2 and Theorem 3.4 into ``T --13-->_{1/8} C``, and the
retry recursion of Section 6.2 yields the expected-time bound of 63.

This module also provides generators of invariant-consistent start
states inside each region, which the verification experiments sample
from (the paper's statements quantify over all reachable states of a
region; Lemma 6.1 characterises the reachable combinations of local
states, so sampling its solutions covers the quantifier fairly).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence

from repro.algorithms.lehmann_rabin.regions import (
    C_CLASS,
    F_CLASS,
    G_CLASS,
    P_CLASS,
    RT_CLASS,
    T_CLASS,
)
from repro.algorithms.lehmann_rabin.state import (
    LRState,
    PC,
    ProcessState,
    Side,
    consistent_resources,
    make_state,
)
from repro.errors import VerificationError
from repro.proofs.expected_time import (
    RetryBranch,
    RetryRecursion,
    expected_time_upper_bound,
)
from repro.proofs.ledger import ProofLedger, StatementId
from repro.proofs.statements import ArrowStatement, StateClass

#: The adversary schema the whole proof quantifies over.
SCHEMA_NAME = "Unit-Time"


@dataclass(frozen=True)
class LRProofChain:
    """The reconstructed proof: ledger, leaf ids, and the final result."""

    ledger: ProofLedger
    leaf_ids: Dict[str, StatementId]
    final_id: StatementId

    @property
    def final_statement(self) -> ArrowStatement:
        """``T --13-->_{1/8} C``."""
        return self.ledger.statement(self.final_id)

    def leaf_statements(self) -> Dict[str, ArrowStatement]:
        """The five appendix propositions as arrow statements."""
        return {
            name: self.ledger.statement(statement_id)
            for name, statement_id in self.leaf_ids.items()
        }


def leaf_statements() -> Dict[str, ArrowStatement]:
    """The five phase statements of Section 6.2, as stated in the paper."""
    return {
        "A.3": ArrowStatement(T_CLASS, RT_CLASS | C_CLASS, 2, 1, SCHEMA_NAME),
        "A.15": ArrowStatement(
            RT_CLASS, F_CLASS | G_CLASS | P_CLASS, 3, 1, SCHEMA_NAME
        ),
        "A.14": ArrowStatement(
            F_CLASS, G_CLASS | P_CLASS, 2, Fraction(1, 2), SCHEMA_NAME
        ),
        "A.11": ArrowStatement(G_CLASS, P_CLASS, 5, Fraction(1, 4), SCHEMA_NAME),
        "A.1": ArrowStatement(P_CLASS, C_CLASS, 1, 1, SCHEMA_NAME),
    }


def lehmann_rabin_proof() -> LRProofChain:
    """Re-derive ``T --13-->_{1/8} C`` exactly as Section 6.2 does.

    The chain::

        T  --2-->_1    RT | C                    (Prop A.3)
        RT --3-->_1    F | G | P                 (Prop A.15)
        F  --2-->_1/2  G | P                     (Prop A.14)
        G  --5-->_1/4  P                         (Prop A.11)
        P  --1-->_1    C                         (Prop A.1)

    with Proposition 3.2 lifting the third and fourth statements to the
    needed unions, and Theorem 3.4 composing everything (Unit-Time is
    execution closed).
    """
    ledger = ProofLedger(SCHEMA_NAME, execution_closed=True)
    leaves = leaf_statements()
    ids = {
        name: ledger.assume(statement, evidence=f"Proposition {name}")
        for name, statement in leaves.items()
    }

    # F | G | P  --2-->_1/2  G | P   (Prop 3.2 with U'' = G | P)
    lifted_f = ledger.union(ids["A.14"], G_CLASS | P_CLASS)
    # G | P  --5-->_1/4  P           (Prop 3.2 with U'' = P)
    lifted_g = ledger.union(ids["A.11"], P_CLASS)
    # RT --11-->_1/8 C               (Thm 3.4, three compositions)
    rt_to_c = ledger.chain([ids["A.15"], lifted_f, lifted_g, ids["A.1"]])
    # RT | C --11-->_1/8 C           (Prop 3.2 with U'' = C; C ∪ C = C)
    lifted_rt = ledger.union(rt_to_c, C_CLASS)
    # T --13-->_1/8 C                (Thm 3.4 with Prop A.3)
    final = ledger.compose(ids["A.3"], lifted_rt)

    chain = LRProofChain(ledger=ledger, leaf_ids=ids, final_id=final)
    expected = ArrowStatement(
        T_CLASS, C_CLASS, 13, Fraction(1, 8), SCHEMA_NAME
    )
    if chain.final_statement != expected:
        raise VerificationError(
            f"derivation produced {chain.final_statement!r}, "
            f"expected {expected!r}"
        )
    return chain


def section_6_2_recursion() -> RetryRecursion:
    """The paper's retry recursion from ``RT``.

    ``V = 1/8 * 10 + 1/2 * (5 + V1) + 3/8 * (10 + V2)``:

    * success (reaching ``P`` within the window) with probability at
      least 1/8, after at most time 10;
    * failure at the third arrow (``F --2--> G|P`` misses) with
      probability at most 1/2, after time 5;
    * failure at the fourth arrow (``G --5--> P`` misses) with the
      remaining probability 3/8, after time 10.

    Solves to ``E[V] = 60``.
    """
    return RetryRecursion(
        [
            RetryBranch.of(Fraction(1, 8), 10, retries=False),
            RetryBranch.of(Fraction(1, 2), 5, retries=True),
            RetryBranch.of(Fraction(3, 8), 10, retries=True),
        ]
    )


def expected_time_bound() -> Fraction:
    """The paper's constant expected-time bound from ``T``: 63.

    2 (``T`` to ``RT``, Prop A.3) + 60 (the recursion, ``RT`` to ``P``)
    + 1 (``P`` to ``C``, Prop A.1).
    """
    return expected_time_upper_bound(2, section_6_2_recursion(), 1)


# ----------------------------------------------------------------------
# Start-state generators for the experiments
# ----------------------------------------------------------------------

#: Local states a process may occupy in an ``RT`` state.
_RT_PCS = (PC.R, PC.ER, PC.F, PC.W, PC.S, PC.D, PC.P)
#: All local program counters.
_ALL_PCS = tuple(PC)


def random_consistent_state(
    n: int,
    rng: random.Random,
    pcs: Sequence[PC] = _ALL_PCS,
    time: Fraction = Fraction(0),
) -> Optional[LRState]:
    """One random invariant-consistent state, or ``None`` on a clash.

    Draws each process's program counter and side uniformly from the
    menu and derives the resources; returns ``None`` when the drawn
    local states are unreachable (two adjacent holders).
    """
    locals_ = [
        ProcessState(rng.choice(pcs), rng.choice((Side.LEFT, Side.RIGHT)))
        for _ in range(n)
    ]
    if consistent_resources(locals_) is None:
        return None
    return make_state(locals_, time)


def sample_states_in(
    region: StateClass,
    n: int,
    count: int,
    rng: random.Random,
    pcs: Sequence[PC] = _ALL_PCS,
    max_attempts: int = 100_000,
) -> List[LRState]:
    """``count`` distinct invariant-consistent states inside ``region``.

    Rejection sampling over random consistent states; raises
    :class:`VerificationError` when the region appears too sparse for
    the attempt budget (a symptom of an inconsistent region/menu pair).
    """
    found: List[LRState] = []
    seen = set()
    for _ in range(max_attempts):
        if len(found) >= count:
            break
        state = random_consistent_state(n, rng, pcs)
        if state is None or not region.contains(state):
            continue
        key = state.untimed()
        if key in seen:
            continue
        seen.add(key)
        found.append(state)
    if len(found) < count:
        raise VerificationError(
            f"only found {len(found)}/{count} states in {region.name!r} "
            f"after {max_attempts} attempts"
        )
    return found


def canonical_states(n: int) -> Dict[str, LRState]:
    """Hand-picked representative states for each region.

    These are the configurations the paper's case analysis revolves
    around; experiments use them alongside random samples.
    """
    all_flip = make_state([ProcessState(PC.F, Side.LEFT)] * n)
    one_trying = make_state(
        [ProcessState(PC.F, Side.LEFT)]
        + [ProcessState(PC.R, Side.LEFT)] * (n - 1)
    )
    # A good process: 0 committed left, its left neighbour (n-1)
    # harmless (R), so 0's second resource (on the left) is clear.
    good_pair = make_state(
        [ProcessState(PC.W, Side.LEFT)]
        + [ProcessState(PC.W, Side.RIGHT)]
        + [ProcessState(PC.R, Side.LEFT)] * (n - 2)
    )
    # Everyone waiting, alternating sides where possible: heavy
    # contention, in RT.
    contended = make_state(
        [
            ProcessState(PC.W, Side.LEFT if i % 2 == 0 else Side.RIGHT)
            for i in range(n)
        ]
    )
    # A process about to enter: pre-critical.
    pre_critical = make_state(
        [ProcessState(PC.P, Side.LEFT)]
        + [ProcessState(PC.R, Side.LEFT)] * (n - 1)
    )
    # Trying but not reduced: a neighbour still holds both resources in
    # its exit region.
    with_exiter = make_state(
        [ProcessState(PC.F, Side.LEFT)]
        + [ProcessState(PC.EF, Side.LEFT)]
        + [ProcessState(PC.R, Side.LEFT)] * (n - 2)
    )
    return {
        "all_flip": all_flip,
        "one_trying": one_trying,
        "good_pair": good_pair,
        "contended": contended,
        "pre_critical": pre_critical,
        "with_exiter": with_exiter,
    }
