"""The Lehmann-Rabin-specific exact CLI subcommands.

``prove``, ``exact``, ``appendix``, and ``exhaustive`` are inherently
about the paper's Section 6.2 derivation and its regions — they have no
generic model counterpart, so their implementations live with the
algorithm and the CLI reaches them through the ``lr`` model front-end
(:func:`repro.models.lr.lr_exact_commands`).  The generic sampling
subcommands (``check``/``verify``/...) stay in :mod:`repro.cli` and
dispatch through the model registry instead.

Each function takes the parsed CLI namespace and returns a process
exit code, exactly as the historical ``repro.cli._cmd_*`` bodies did.
"""

from __future__ import annotations

import argparse


def cmd_prove(args: argparse.Namespace) -> int:
    from repro.algorithms import lehmann_rabin as lr
    from repro.analysis.reporting import banner

    chain = lr.lehmann_rabin_proof()
    print(banner("Section 6.2: the composed time bound"))
    print(chain.ledger.explain(chain.final_id))
    print(f"\nexpected-time recursion E[V] = "
          f"{lr.section_6_2_recursion().solve()}")
    print(f"overall expected-time bound   = {lr.expected_time_bound()}")
    return 0


def cmd_exact(args: argparse.Namespace) -> int:
    from fractions import Fraction

    from repro.algorithms import lehmann_rabin as lr
    from repro.analysis.reporting import banner, format_table
    from repro.mdp.bounded import min_reach_probability_rounds
    from repro.parallel.seeds import rng_from_seed

    def strip(state):
        return state.untimed()

    automaton = lr.lehmann_rabin_automaton(args.n)
    view = lr.LRProcessView(args.n)
    rng = rng_from_seed(args.seed)
    cases = [
        ("A.1", lr.P_CLASS, lr.in_critical, 1, Fraction(1)),
        (
            "A.3", lr.T_CLASS,
            lambda s: lr.in_reduced_trying(s) or lr.in_critical(s),
            2, Fraction(1),
        ),
        (
            "A.15", lr.RT_CLASS,
            lambda s: lr.in_flip_ready(s) or lr.in_good(s)
            or lr.in_pre_critical(s),
            3, Fraction(1),
        ),
        (
            "A.14", lr.F_CLASS,
            lambda s: lr.in_good(s) or lr.in_pre_critical(s),
            2, Fraction(1, 2),
        ),
        ("A.11", lr.G_CLASS, lr.in_pre_critical, 5, Fraction(1, 4)),
    ]
    print(banner(f"Exact round-synchronous minima, ring size {args.n}"))
    rows = []
    failures = 0
    for name, region, target, rounds, bound in cases:
        starts = lr.sample_states_in(region, args.n, args.states, rng)
        worst = min(
            min_reach_probability_rounds(
                automaton, view, target, start, rounds, strip
            )
            for start in starts
        )
        holds = worst >= bound
        failures += not holds
        rows.append((name, rounds, str(bound), str(worst),
                     "ok" if holds else "FAILS"))
    print(format_table(
        ("proposition", "rounds", "paper bound", "exact worst min",
         "verdict"),
        rows,
    ))
    return 1 if failures else 0


def cmd_appendix(args: argparse.Namespace) -> int:
    from repro.algorithms.lehmann_rabin import appendix as ap
    from repro.analysis.reporting import banner, format_table

    print(banner(f"Appendix lemmas, exactly, ring size {args.n}"))
    rows = []
    failures = 0
    for lemma in ap.conditional_lemmas(args.n):
        result = ap.check_conditional_lemma(lemma, args.n)
        failures += not result.holds
        rows.append(
            (
                result.name,
                result.states_checked,
                f"t={lemma.time_bound}",
                str(result.worst_value),
                "ok" if result.holds else "FAILS",
            )
        )
    for lemma in ap.probabilistic_lemmas(args.n):
        result = ap.check_probabilistic_lemma(lemma, args.n)
        failures += not result.holds
        rows.append(
            (
                result.name,
                result.states_checked,
                f"t={lemma.time_bound}, p>={lemma.probability}",
                str(result.worst_value),
                "ok" if result.holds else "FAILS",
            )
        )
    print(format_table(
        ("lemma", "states", "claim", "exact worst value", "verdict"), rows
    ))
    return 1 if failures else 0


def cmd_exhaustive(args: argparse.Namespace) -> int:
    from repro.algorithms.lehmann_rabin.exhaustive import (
        LEAF_SPECS,
        exhaustive_composed_check,
        exhaustive_leaf_check,
    )
    from repro.analysis.reporting import banner, format_table

    print(banner("Exhaustive verification over entire regions (n = 3)"))
    rows = []
    failures = 0
    for name in sorted(LEAF_SPECS):
        result = exhaustive_leaf_check(name, 3)
        failures += not result.holds
        rows.append(
            (
                result.name,
                result.region,
                result.states_checked,
                str(result.bound),
                str(result.exact_minimum),
                "ok" if result.holds else "FAILS",
            )
        )
    if args.composed:
        result = exhaustive_composed_check(3, rounds=13)
        failures += not result.holds
        rows.append(
            (
                "composed",
                result.region,
                result.states_checked,
                str(result.bound),
                str(result.exact_minimum),
                "ok" if result.holds else "FAILS",
            )
        )
    print(format_table(
        ("proposition", "region", "states", "paper bound",
         "exhaustive min", "verdict"),
        rows,
    ))
    return 1 if failures else 0
