"""The Section 6.2 region inclusions, registered and spot-checked.

Lives with the algorithm (not in :mod:`repro.proofs`) because the
inclusions are facts about the Lehmann-Rabin regions; the generic
:class:`~repro.proofs.inclusion.InclusionRegistry` machinery they feed
stays model-agnostic.
"""

from __future__ import annotations

from typing import Iterable

from repro.algorithms.lehmann_rabin.regions import (
    F_CLASS,
    G_CLASS,
    P_CLASS,
    RT_CLASS,
    T_CLASS,
)
from repro.proofs.inclusion import InclusionRegistry


def lehmann_rabin_inclusions(samples: Iterable = ()) -> InclusionRegistry:
    """The inclusions among the Section 6.2 regions, registered.

    ``G ⊆ RT``, ``F ⊆ RT``, ``RT ⊆ T``, and ``P ⊆ T`` all follow
    directly from the definitions; supplying sample states (e.g. random
    consistent states) spot-checks them.
    """
    samples = list(samples)
    registry = InclusionRegistry()
    registry.declare(
        G_CLASS, RT_CLASS, "G is defined as a subset of RT (Section 6.2)",
        samples,
    )
    registry.declare(
        F_CLASS, RT_CLASS, "F is defined as a subset of RT (Section 6.2)",
        samples,
    )
    registry.declare(
        RT_CLASS, T_CLASS, "RT is defined as a subset of T (Section 6.2)",
        samples,
    )
    registry.declare(
        P_CLASS, T_CLASS,
        "a pre-critical process is in its trying region (Section 6.1)",
        samples,
    )
    return registry
