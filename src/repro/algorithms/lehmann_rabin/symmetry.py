"""The ring's symmetries as compile-time quotients.

The Lehmann-Rabin automaton is invariant under the full dihedral group
of the ring:

* **rotation** — relabelling process ``i`` to ``i - k`` and resource
  ``Res_i`` to ``Res_{i-k}`` (the same offset, so each process keeps
  its left/right resources) maps transitions to transitions with
  identical probabilities and time advances;
* **reflection** — mirroring the ring while swapping every ``u_i``
  (a mirrored process's left is the original's right); the protocol
  itself is left/right symmetric — ``flip`` draws a side uniformly and
  every other rule is phrased in terms of ``u_i`` and ``opp`` — so the
  mirror is an automorphism too (the cross-quotient suite re-verifies
  this bisimulation property on every run).

Every region predicate of Section 6.2 (``in_trying``, ``in_critical``,
...) is an exists/forall over processes and is therefore constant on
symmetry orbits.

This module packages the symmetries as :class:`SpaceSpec` quotients for
the compile-once state-space core: states are canonicalised to the
lexicographically least group image before interning.  The rotation
quotient shrinks the reachable space by a factor approaching ``n``; the
full ring (dihedral) quotient approaches ``2n`` — enough to fit the
n=5 ring (233,980 rotation classes, 116,990 dihedral classes) inside
the default 200,000-state budget, making ``exact_reach`` and MDP value
iteration feasible there.

Soundness caveat (documented in ``docs/statespace.md``): the quotient
is exact for the *automaton* and for symmetry-invariant predicates, but
a concrete adversary is only preserved when its policy is equivariant.
The shipped policies (fifo, obstructionist, ...) break ties by process
index and are not; per-adversary *sampling* therefore keeps the exact
untimed quotient of ``LRExperimentSetup.space_spec`` while these specs
serve quotient-level analyses — reachable-space measurement, region
flags, and feasibility studies where the policy acting on canonical
representatives is itself the object of study.
"""

from __future__ import annotations

from typing import Tuple

from repro.algorithms.lehmann_rabin.automaton import lr_time_of
from repro.algorithms.lehmann_rabin.state import LRState
from repro.statespace.compile import SpaceSpec


def _ring_word(state: LRState) -> Tuple[Tuple[str, str, bool], ...]:
    """The ring as a comparable word, one letter per index.

    Letter ``j`` packs ``(pc_j, u_j, Res_j)``; rotating the state by
    ``k`` rotates the word by ``k``, so the least rotation of the word
    identifies the least rotation of the state.  The word determines
    ``(processes, resources)`` outright, hence equal least words mean
    equal canonical states — the canonical map is well defined on
    orbits regardless of which ``k`` attained the minimum.
    """
    return tuple(
        (p.pc.value, p.u.value, r)
        for p, r in zip(state.processes, state.resources)
    )


def _least_rotation(word) -> Tuple[int, Tuple]:
    """``(k, word rotated by k)`` minimising the rotated word."""
    n = len(word)
    doubled = word + word
    best_k = 0
    best = word
    for k in range(1, n):
        candidate = doubled[k : k + n]
        if candidate < best:
            best = candidate
            best_k = k
    return best_k, best


def canonical_rotation(state: LRState) -> LRState:
    """The lexicographically least rotation of ``state`` (clock kept)."""
    k, _ = _least_rotation(_ring_word(state))
    return state.rotated(k)


def rotation_orbit(state: LRState) -> Tuple[LRState, ...]:
    """Every rotation of ``state`` (duplicates for symmetric states)."""
    return tuple(state.rotated(k) for k in range(state.n))


def canonical_symmetry(state: LRState) -> LRState:
    """The least dihedral image of ``state``: rotations and mirrors."""
    k, best = _least_rotation(_ring_word(state))
    mirrored = state.reflected()
    mk, mbest = _least_rotation(_ring_word(mirrored))
    if mbest < best:
        return mirrored.rotated(mk)
    return state.rotated(k)


def symmetry_orbit(state: LRState) -> Tuple[LRState, ...]:
    """All ``2n`` dihedral images of ``state`` (duplicates possible)."""
    mirrored = state.reflected()
    return tuple(state.rotated(k) for k in range(state.n)) + tuple(
        mirrored.rotated(k) for k in range(state.n)
    )


def rotation_space_spec() -> SpaceSpec:
    """The untimed quotient composed with the rotation quotient.

    For quotient-level analyses only — see the module docstring for
    the adversary-equivariance caveat.
    """
    return SpaceSpec(
        key=lambda state: state.untimed(),
        time_of=lr_time_of,
        canonical=canonical_rotation,
        orbit=rotation_orbit,
    )


def ring_symmetry_spec() -> SpaceSpec:
    """The untimed quotient composed with the full dihedral quotient.

    The strongest shipped quotient: ~``2n``-fold reduction, fitting the
    n=5 ring inside the default state budget.  Same caveat as
    :func:`rotation_space_spec`.
    """
    return SpaceSpec(
        key=lambda state: state.untimed(),
        time_of=lr_time_of,
        canonical=canonical_symmetry,
        orbit=symmetry_orbit,
    )
