"""States of the Lehmann-Rabin automaton (Section 6.1).

A state of ``M`` is a tuple ``(X_1,...,X_n, Res_1,...,Res_n, t)``: the
local state ``X_i = (pc_i, u_i)`` of each process, the value of each
shared resource, and the current time.  Program counters follow the
paper's suggestive naming:

====== ======= ============ ===========================================
Number ``pc``  Action       Informal meaning
====== ======= ============ ===========================================
0      ``R``   ``try_i``    Remainder region
1      ``F``   ``flip_i``   Ready to flip
2      ``W``   ``wait_i``   Waiting for first resource
3      ``S``   ``second_i`` Checking for second resource
4      ``D``   ``drop_i``   Dropping first resource
5      ``P``   ``crit_i``   Pre-critical region
6      ``C``   ``exit_i``   Critical region
7      ``EF``  ``dropf_i``  Exit: drop first resource
8      ``ES``  ``drops_i``  Exit: drop second resource
9      ``ER``  ``rem_i``    Exit: move to remainder region
====== ======= ============ ===========================================

Ring geometry: process ``i + 1`` is to the right of process ``i`` and
resource ``Res_i`` lies between processes ``i`` and ``i + 1`` (indices
modulo ``n``, zero-based here).  Hence process ``i``'s *right* resource
is ``Res_i`` and its *left* resource is ``Res_{i-1}``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from typing import FrozenSet, Optional, Sequence, Tuple

from repro.errors import AutomatonError


class Side(enum.Enum):
    """The value of the local variable ``u_i``: left or right."""

    LEFT = "left"
    RIGHT = "right"

    @property
    def opp(self) -> "Side":
        """The paper's ``opp`` operator: the other side."""
        return Side.RIGHT if self is Side.LEFT else Side.LEFT

    def __repr__(self) -> str:
        return self.value


class PC(enum.Enum):
    """Program counters of Figure 1, in the paper's letter notation."""

    R = "R"    # remainder region
    F = "F"    # ready to flip
    W = "W"    # waiting for first resource
    S = "S"    # checking for second resource
    D = "D"    # dropping first resource
    P = "P"    # pre-critical region
    C = "C"    # critical region
    EF = "EF"  # exit: drop first resource
    ES = "ES"  # exit: drop second resource
    ER = "ER"  # exit: move to remainder region

    def __repr__(self) -> str:
        return self.value


#: Program counters forming the trying region ``T`` (Section 6.1:
#: ``X_i = T`` stands for ``X_i in {F, W, S, D, P}``).
TRYING_PCS: FrozenSet[PC] = frozenset({PC.F, PC.W, PC.S, PC.D, PC.P})

#: Program counters forming the exit region ``E``.
EXIT_PCS: FrozenSet[PC] = frozenset({PC.EF, PC.ES, PC.ER})

#: The ``#`` symbol of Section 6.1: any of ``W``, ``S``, ``D``.
SHARP_PCS: FrozenSet[PC] = frozenset({PC.W, PC.S, PC.D})

#: Program counters at which the side ``u_i`` influences behaviour.
SIDED_PCS: FrozenSet[PC] = frozenset({PC.W, PC.S, PC.D, PC.ES})


@dataclass(frozen=True)
class ProcessState:
    """The pair ``X_i = (pc_i, u_i)``."""

    pc: PC
    u: Side

    def with_pc(self, pc: PC) -> "ProcessState":
        """Copy with a new program counter."""
        return ProcessState(pc, self.u)

    def with_u(self, u: Side) -> "ProcessState":
        """Copy with a new side variable."""
        return ProcessState(self.pc, u)

    def points(self, side: Side) -> bool:
        """True when the side variable matters and equals ``side``.

        The paper's arrow notation ``W_<-`` is ``points(LEFT)`` with
        ``pc == W``; at sideless counters (``F``, ``R``, ...) this is
        False for both sides.
        """
        return self.pc in SIDED_PCS and self.u is side

    def __repr__(self) -> str:
        if self.pc in SIDED_PCS:
            arrow = "<-" if self.u is Side.LEFT else "->"
            return f"{self.pc.value}{arrow}"
        return self.pc.value


#: Resource values: the paper's ``free``/``taken`` as a bool (taken=True).
FREE = False
TAKEN = True


@dataclass(frozen=True)
class LRState:
    """A global state ``(X_1,...,X_n, Res_1,...,Res_n, t)``."""

    processes: Tuple[ProcessState, ...]
    resources: Tuple[bool, ...]
    time: Fraction

    def __post_init__(self) -> None:
        if len(self.processes) != len(self.resources):
            raise AutomatonError(
                f"{len(self.processes)} processes but "
                f"{len(self.resources)} resources; the ring needs one "
                "resource per process"
            )
        if len(self.processes) < 2:
            raise AutomatonError("the ring needs at least two processes")

    def __hash__(self) -> int:
        # States are hashed constantly (transition memos, visited sets,
        # guard checks); the dataclass-generated hash rebuilds the field
        # tuple every call, so cache it on first use.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.processes, self.resources, self.time))
            object.__setattr__(self, "_hash", cached)
        return cached

    @property
    def n(self) -> int:
        """The number of processes (and resources) in the ring."""
        return len(self.processes)

    # ------------------------------------------------------------------
    # Ring geometry
    # ------------------------------------------------------------------

    def process(self, i: int) -> ProcessState:
        """``X_i`` (index modulo ``n``)."""
        return self.processes[i % self.n]

    def resource(self, j: int) -> bool:
        """``Res_j`` (index modulo ``n``); True means taken."""
        return self.resources[j % self.n]

    def resource_index(self, i: int, side: Side) -> int:
        """The index of ``Res_(i, side)``: process ``i``'s resource on ``side``.

        Right resource of process ``i`` is ``Res_i``; left is
        ``Res_{i-1}``.
        """
        if side is Side.RIGHT:
            return i % self.n
        return (i - 1) % self.n

    # ------------------------------------------------------------------
    # Functional updates
    # ------------------------------------------------------------------

    def with_process(self, i: int, process_state: ProcessState) -> "LRState":
        """Copy with ``X_i`` replaced."""
        i %= self.n
        processes = (
            self.processes[:i] + (process_state,) + self.processes[i + 1 :]
        )
        return LRState(processes, self.resources, self.time)

    def with_resource(self, j: int, taken: bool) -> "LRState":
        """Copy with ``Res_j`` replaced."""
        j %= self.n
        resources = self.resources[:j] + (taken,) + self.resources[j + 1 :]
        return LRState(self.processes, resources, self.time)

    def with_time(self, time: Fraction) -> "LRState":
        """Copy with the clock replaced."""
        return LRState(self.processes, self.resources, time)

    def advanced(self, amount: Fraction) -> "LRState":
        """Copy with the clock advanced by ``amount``."""
        return self.with_time(self.time + amount)

    def untimed(self) -> Tuple[Tuple[ProcessState, ...], Tuple[bool, ...]]:
        """The state without its clock (memoisation key for dynamics)."""
        return (self.processes, self.resources)

    def rotated(self, k: int) -> "LRState":
        """The state with every ring index shifted down by ``k``.

        New process ``j`` is old process ``j + k`` (mod ``n``), and the
        resources rotate by the *same* offset, preserving the geometry:
        the new process ``j``'s right resource ``Res_j`` is the old
        ``Res_{j+k}`` — the old process ``j + k``'s right resource.
        The clock is untouched, so rotation commutes with ``untimed``
        and with every time-invariant quotient.
        """
        k %= self.n
        if k == 0:
            return self
        processes = self.processes[k:] + self.processes[:k]
        resources = self.resources[k:] + self.resources[:k]
        return LRState(processes, resources, self.time)

    def reflected(self) -> "LRState":
        """The mirror image of the ring, with every side variable flipped.

        New process ``j`` is old process ``n - 1 - j`` with ``u``
        swapped (a mirrored process's left is the original's right), and
        new ``Res_j`` is old ``Res_{n-2-j}``: the resource between old
        processes ``n-1-j`` and ``n-j`` is the one between new processes
        ``j`` and ``j-1`` — i.e. the new process ``j``'s *left*
        resource, matching the side swap.  Together with :meth:`rotated`
        this generates the full dihedral symmetry group of the ring.
        """
        n = self.n
        processes = tuple(
            ProcessState(self.processes[n - 1 - j].pc, self.processes[n - 1 - j].u.opp)
            for j in range(n)
        )
        resources = tuple(self.resources[(n - 2 - j) % n] for j in range(n))
        return LRState(processes, resources, self.time)

    def __repr__(self) -> str:
        procs = " ".join(repr(p) for p in self.processes)
        res = "".join("T" if r else "." for r in self.resources)
        return f"LRState[{procs} | Res={res} | t={self.time}]"


def initial_state(n: int, sides: Optional[Sequence[Side]] = None) -> LRState:
    """The start state: all processes in ``R``, all resources free, time 0.

    The paper leaves each ``u_i`` arbitrary initially; callers may fix
    them via ``sides`` (default: all LEFT).
    """
    if sides is None:
        sides = [Side.LEFT] * n
    if len(sides) != n:
        raise AutomatonError(f"expected {n} sides, got {len(sides)}")
    return LRState(
        processes=tuple(ProcessState(PC.R, side) for side in sides),
        resources=tuple([FREE] * n),
        time=Fraction(0),
    )


def holds_right(process_state: ProcessState) -> bool:
    """Does a process in this local state hold its *right* resource?

    Lemma 6.1's first clause: ``Res_i`` is taken on account of process
    ``i`` iff ``X_i in {S->, D->, P, C, EF, ES->}``.
    """
    pc, u = process_state.pc, process_state.u
    if pc in (PC.P, PC.C, PC.EF):
        return True
    if pc in (PC.S, PC.D, PC.ES):
        return u is Side.RIGHT
    return False


def holds_left(process_state: ProcessState) -> bool:
    """Does a process in this local state hold its *left* resource?

    Lemma 6.1's second disjunct: ``Res_{i-1}`` is taken on account of
    process ``i`` iff ``X_i in {S<-, D<-, P, C, EF, ES<-}``.
    """
    pc, u = process_state.pc, process_state.u
    if pc in (PC.P, PC.C, PC.EF):
        return True
    if pc in (PC.S, PC.D, PC.ES):
        return u is Side.LEFT
    return False


def consistent_resources(
    processes: Sequence[ProcessState],
) -> Optional[Tuple[bool, ...]]:
    """Derive resource values from local states, if consistent.

    Returns the unique resource assignment making Lemma 6.1 hold, or
    ``None`` when two adjacent processes both claim the same resource
    (such a combination of local states is unreachable).  Used to build
    arbitrary invariant-respecting start states for experiments.
    """
    n = len(processes)
    resources = []
    for i in range(n):
        right_holder = holds_right(processes[i])
        left_holder = holds_left(processes[(i + 1) % n])
        if right_holder and left_holder:
            return None
        resources.append(TAKEN if (right_holder or left_holder) else FREE)
    return tuple(resources)


def make_state(
    local_states: Sequence[ProcessState], time: Fraction = Fraction(0)
) -> LRState:
    """Build a global state from local states, deriving the resources.

    Raises :class:`AutomatonError` when the local states are
    inconsistent (two adjacent holders of one resource) — by Lemma 6.1
    no such state is reachable, so refusing it keeps experiments honest.
    """
    resources = consistent_resources(local_states)
    if resources is None:
        raise AutomatonError(
            "inconsistent local states: two adjacent processes hold the "
            "same resource (unreachable by Lemma 6.1)"
        )
    return LRState(tuple(local_states), resources, time)
