"""The state sets of the proof (Section 6.2) and Lemma 6.1.

All predicates operate on :class:`~repro.algorithms.lehmann_rabin.state.LRState`
values of any ring size, so the same :class:`~repro.proofs.statements.StateClass`
objects serve every experiment.

Definitions, verbatim from the paper:

* ``T``  — some process is in its trying region
  (``X_i in {F, W, S, D, P}``).
* ``C``  — some process is in its critical region.
* ``RT`` — a state of ``T`` where every process is in
  ``{ER, R} ∪ T``: nobody is critical or holds resources while exiting.
* ``F``  — a state of ``RT`` where some process is ready to flip.
* ``P``  — some process is in its pre-critical region.
* ``G``  — a state of ``RT`` containing a *good* process: a committed
  process (``W`` or ``S``) whose second resource is not potentially
  controlled by its neighbour on that side.
"""

from __future__ import annotations

from typing import List

from repro.algorithms.lehmann_rabin.state import (
    LRState,
    PC,
    ProcessState,
    SHARP_PCS,
    Side,
    TRYING_PCS,
    holds_left,
    holds_right,
)
from repro.proofs.statements import StateClass


def in_trying(state: LRState) -> bool:
    """``T``: some process has a trying-region program counter."""
    return any(p.pc in TRYING_PCS for p in state.processes)


def in_critical(state: LRState) -> bool:
    """``C``: some process is in its critical region."""
    return any(p.pc is PC.C for p in state.processes)


def in_reduced_trying(state: LRState) -> bool:
    """``RT``: trying, and every process is in ``{ER, R} ∪ T``.

    Excludes states where any process is critical or still holds
    resources inside its exit region (``EF``/``ES``).
    """
    if not in_trying(state):
        return False
    allowed = TRYING_PCS | {PC.ER, PC.R}
    return all(p.pc in allowed for p in state.processes)


def in_flip_ready(state: LRState) -> bool:
    """``F``: a state of ``RT`` where some process is at ``F``."""
    return in_reduced_trying(state) and any(
        p.pc is PC.F for p in state.processes
    )


def in_pre_critical(state: LRState) -> bool:
    """``P``: some process is in its pre-critical region."""
    return any(p.pc is PC.P for p in state.processes)


def _neighbour_clear_of(neighbour: ProcessState, side: Side) -> bool:
    """Is the neighbour unable to potentially control the shared resource?

    Per Section 6.2, process ``i`` with ``X_i in {W_<-, S_<-}`` is good
    when ``X_{i+1} in {ER, R, F, #_->}``; symmetrically for the right
    orientation.  ``side`` is the direction the *neighbour* must point
    to be harmless (away from the contested resource).
    """
    if neighbour.pc in (PC.ER, PC.R, PC.F):
        return True
    return neighbour.pc in SHARP_PCS and neighbour.u is side


def is_good_process(state: LRState, i: int) -> bool:
    """Is process ``i`` good in ``state`` (Section 6.2's ``G`` witness)?

    A committed process (``W`` or ``S``) whose second resource is not
    potentially controlled by the neighbour that shares it.
    """
    local = state.process(i)
    if local.pc not in (PC.W, PC.S):
        return False
    if local.u is Side.LEFT:
        # Second resource is on the right, shared with process i+1,
        # which must not point left at it.
        return _neighbour_clear_of(state.process(i + 1), Side.RIGHT)
    # Mirror image: second resource on the left, shared with i-1.
    return _neighbour_clear_of(state.process(i - 1), Side.LEFT)


def good_processes(state: LRState) -> List[int]:
    """All good processes of ``state``, in index order."""
    return [i for i in range(state.n) if is_good_process(state, i)]


def in_good(state: LRState) -> bool:
    """``G``: a state of ``RT`` containing a good process."""
    return in_reduced_trying(state) and bool(good_processes(state))


# ----------------------------------------------------------------------
# Lemma 6.1
# ----------------------------------------------------------------------


def lemma_6_1_holds(state: LRState) -> bool:
    """Both clauses of Lemma 6.1 at ``state``.

    (1) ``Res_i`` is taken iff process ``i`` holds it from the left side
    or process ``i+1`` holds it from the right side; (2) never both —
    only one process at a time can hold one resource.
    """
    for i in range(state.n):
        right_holder = holds_right(state.process(i))
        left_holder = holds_left(state.process(i + 1))
        if right_holder and left_holder:
            return False
        if state.resource(i) != (right_holder or left_holder):
            return False
    return True


def mutual_exclusion_holds(state: LRState) -> bool:
    """No two adjacent processes are critical simultaneously.

    The safety property of the Dining Philosophers problem: a critical
    process holds both adjacent resources, so Lemma 6.1 implies this;
    checking it separately gives an independent safety test.
    """
    for i in range(state.n):
        if state.process(i).pc is PC.C and state.process(i + 1).pc is PC.C:
            return False
    return True


# ----------------------------------------------------------------------
# StateClass bindings for the proof ledger
# ----------------------------------------------------------------------

#: ``T`` — some process is in its trying region.
T_CLASS = StateClass("T", in_trying)
#: ``C`` — some process is in its critical region.
C_CLASS = StateClass("C", in_critical)
#: ``RT`` — reduced trying (no critical or resource-holding exiters).
RT_CLASS = StateClass("RT", in_reduced_trying)
#: ``F`` — reduced trying with a process ready to flip.
F_CLASS = StateClass("F", in_flip_ready)
#: ``G`` — reduced trying with a good process.
G_CLASS = StateClass("G", in_good)
#: ``P`` — some process is pre-critical.
P_CLASS = StateClass("P", in_pre_critical)
