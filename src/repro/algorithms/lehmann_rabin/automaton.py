"""The Lehmann-Rabin probabilistic timed automaton (Sections 5 and 6.1).

The transition relation transcribes Figure 1.  Every action is a pair
``(kind, i)`` with ``kind`` one of the strings below and ``i`` the
process index; external actions are the user-interface ones (``try``,
``crit``, ``exit``, ``rem``), everything else is internal, and the
special time-passage action :data:`~repro.automaton.signature.TIME_PASSAGE`
advances the clock by one unit (the round granularity of the Unit-Time
adversaries; Section 2's patient construction allows arbitrary amounts,
but the unit-delay schema only ever needs unit steps).

The state space is unbounded (time grows), so the automaton is a
:class:`~repro.automaton.automaton.FunctionalAutomaton`; dynamics are
time-invariant and all analyses memoise on the untimed part.
"""

from __future__ import annotations

from fractions import Fraction
from typing import FrozenSet, List, Optional, Tuple

from repro.adversary.unit_time import ProcessView
from repro.algorithms.lehmann_rabin.state import (
    FREE,
    TAKEN,
    LRState,
    PC,
    ProcessState,
    Side,
    initial_state,
)
from repro.automaton.automaton import FunctionalAutomaton
from repro.automaton.signature import TIME_PASSAGE, Action, ActionSignature
from repro.automaton.transition import Transition
from repro.errors import AutomatonError
from repro.probability.space import FiniteDistribution

#: Action kinds, matching the paper's table in Section 6.1.
TRY, FLIP, WAIT, SECOND, DROP, CRIT, EXIT, DROPF, DROPS, REM = (
    "try", "flip", "wait", "second", "drop", "crit", "exit", "dropf",
    "drops", "rem",
)

#: Action kinds controlled by the user, hence exempt from the Unit-Time
#: scheduling obligation (Section 6.2: "actions try_i and exit_i are
#: supposed to be under the control of the user").
USER_KINDS: FrozenSet[str] = frozenset({TRY, EXIT})

#: The paper's external actions.
EXTERNAL_KINDS: FrozenSet[str] = frozenset({TRY, CRIT, EXIT, REM})


def lr_signature(n: int) -> ActionSignature:
    """The action signature for a ring of ``n`` processes."""
    external = frozenset(
        (kind, i) for kind in EXTERNAL_KINDS for i in range(n)
    )
    internal_kinds = (FLIP, WAIT, SECOND, DROP, DROPF, DROPS)
    internal = frozenset(
        (kind, i) for kind in internal_kinds for i in range(n)
    ) | {TIME_PASSAGE}
    return ActionSignature(external=external, internal=internal)


def process_transitions(state: LRState, i: int) -> List[Transition[LRState]]:
    """The steps of process ``i`` enabled in ``state`` (Figure 1)."""
    local = state.process(i)
    pc, u = local.pc, local.u
    steps: List[Transition[LRState]] = []

    if pc is PC.R:
        # 0: a try message moves the process into its trying region.
        steps.append(
            Transition.deterministic(
                state, (TRY, i), state.with_process(i, local.with_pc(PC.F))
            )
        )
    elif pc is PC.F:
        # 1: flip a fair coin to choose which resource to pursue first.
        after_left = state.with_process(i, ProcessState(PC.W, Side.LEFT))
        after_right = state.with_process(i, ProcessState(PC.W, Side.RIGHT))
        steps.append(
            Transition(
                state,
                (FLIP, i),
                FiniteDistribution.bernoulli(after_left, after_right),
            )
        )
    elif pc is PC.W:
        # 2: busy-wait for the first resource; the step leaves the state
        # unchanged when the resource is taken (the paper's "else goto 2").
        first = state.resource_index(i, u)
        if state.resource(first) == FREE:
            after = state.with_resource(first, TAKEN).with_process(
                i, local.with_pc(PC.S)
            )
        else:
            after = state
        steps.append(Transition.deterministic(state, (WAIT, i), after))
    elif pc is PC.S:
        # 3: check the second resource once; success enters P, failure
        # moves to D (the first resource will be put back).
        second = state.resource_index(i, u.opp)
        if state.resource(second) == FREE:
            after = state.with_resource(second, TAKEN).with_process(
                i, local.with_pc(PC.P)
            )
        else:
            after = state.with_process(i, local.with_pc(PC.D))
        steps.append(Transition.deterministic(state, (SECOND, i), after))
    elif pc is PC.D:
        # 4: put down the first resource and go flip again.
        first = state.resource_index(i, u)
        after = state.with_resource(first, FREE).with_process(
            i, local.with_pc(PC.F)
        )
        steps.append(Transition.deterministic(state, (DROP, i), after))
    elif pc is PC.P:
        # 5: announce the critical region.
        steps.append(
            Transition.deterministic(
                state, (CRIT, i), state.with_process(i, local.with_pc(PC.C))
            )
        )
    elif pc is PC.C:
        # 6: an exit message starts the exit protocol.
        steps.append(
            Transition.deterministic(
                state, (EXIT, i), state.with_process(i, local.with_pc(PC.EF))
            )
        )
    elif pc is PC.EF:
        # 7: nondeterministically choose u, and free the opposite
        # resource; two separate steps, the choice left to the adversary.
        for new_u in (Side.RIGHT, Side.LEFT):
            freed = state.resource_index(i, new_u.opp)
            after = state.with_resource(freed, FREE).with_process(
                i, ProcessState(PC.ES, new_u)
            )
            steps.append(Transition.deterministic(state, (DROPF, i), after))
    elif pc is PC.ES:
        # 8: free the remaining resource.
        freed = state.resource_index(i, u)
        after = state.with_resource(freed, FREE).with_process(
            i, local.with_pc(PC.ER)
        )
        steps.append(Transition.deterministic(state, (DROPS, i), after))
    elif pc is PC.ER:
        # 9: send rem and return to the remainder region.
        steps.append(
            Transition.deterministic(
                state, (REM, i), state.with_process(i, local.with_pc(PC.R))
            )
        )
    else:  # pragma: no cover - the PC enum is exhaustive
        raise AutomatonError(f"unknown program counter {pc!r}")
    return steps


def lr_transitions(
    state: LRState,
    time_increments: Tuple[Fraction, ...] = (Fraction(1),),
) -> List[Transition[LRState]]:
    """All steps enabled in ``state``: every process's, plus time passage.

    One time-passage step per allowed increment; the paper's patient
    construction allows every positive amount, and the menu is the
    executable restriction (the adversary still chooses among them).
    """
    steps: List[Transition[LRState]] = []
    for i in range(state.n):
        steps.extend(process_transitions(state, i))
    for amount in time_increments:
        steps.append(
            Transition.deterministic(
                state, TIME_PASSAGE, state.advanced(amount)
            )
        )
    return steps


def lehmann_rabin_automaton(
    n: int,
    start: Optional[LRState] = None,
    time_increments: Tuple[Fraction, ...] = (Fraction(1),),
) -> FunctionalAutomaton[LRState]:
    """The Lehmann-Rabin automaton for a ring of ``n`` philosophers.

    ``start`` defaults to the paper's start state (everyone in the
    remainder region, all resources free); experiments pass other
    invariant-consistent states to begin mid-protocol.
    ``time_increments`` is the menu of time-passage amounts (default:
    unit steps, the round granularity; pass fractions for the
    asynchronous deadline schedulers of :mod:`repro.adversary.deadline`).
    """
    if n < 2:
        raise AutomatonError("the ring needs at least two processes")
    if start is None:
        start = initial_state(n)
    if start.n != n:
        raise AutomatonError(f"start state has {start.n} processes, expected {n}")
    increments = tuple(time_increments)
    if not increments or any(a <= 0 for a in increments):
        raise AutomatonError("time increments must be positive and nonempty")
    return FunctionalAutomaton(
        start_states=(start,),
        signature=lr_signature(n),
        transition_fn=lambda s: lr_transitions(s, increments),
    )


def lr_time_of(state: LRState) -> Fraction:
    """The clock of a Lehmann-Rabin state (``time_of`` for verifiers)."""
    return state.time


class LRProcessView(ProcessView[LRState]):
    """The process decomposition of the ring, for Unit-Time scheduling.

    A process is *ready* (obligated) exactly when it enables an action
    other than ``try_i``/``exit_i`` — i.e. whenever it is not sitting in
    its remainder or critical region.
    """

    def __init__(self, n: int):
        if n < 2:
            raise AutomatonError("the ring needs at least two processes")
        self._processes = tuple(range(n))

    @property
    def processes(self) -> Tuple[int, ...]:
        return self._processes

    def ready(self, state: LRState) -> FrozenSet[int]:
        return frozenset(
            i
            for i in self._processes
            if state.process(i).pc not in (PC.R, PC.C)
        )

    def process_of(self, action: Action) -> Optional[int]:
        if action == TIME_PASSAGE:
            return None
        kind, index = action
        return index

    def time_of(self, state: LRState) -> Fraction:
        return state.time
