"""Exhaustive verification of the Section 6.2 statements (small rings).

For ``n = 3`` the set of Lemma 6.1-consistent states is small (4382),
so each leaf proposition can be checked over *every* state of its
region — no sampling — against *every* strategy of the
round-synchronous Unit-Time subclass.  This is the strongest statement
this reproduction makes: within the subclass, the propositions are
theorems of the model, machine-checked state by state.

The exhaustive sweep also reveals exactly how tight each bound is:
the true minimum of Proposition A.11 on the full ``G`` region is 1/2
(attained at ``F W<- W<-``), twice the paper's 1/4; the other four
leaves are deterministic (minimum 1) as the paper claims.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Tuple

from repro.algorithms.lehmann_rabin.automaton import (
    LRProcessView,
    lehmann_rabin_automaton,
)
from repro.algorithms.lehmann_rabin.regions import (
    F_CLASS,
    G_CLASS,
    P_CLASS,
    RT_CLASS,
    T_CLASS,
    in_critical,
    in_flip_ready,
    in_good,
    in_pre_critical,
    in_reduced_trying,
)
from repro.algorithms.lehmann_rabin.state import (
    LRState,
    PC,
    ProcessState,
    Side,
    consistent_resources,
    make_state,
)
from repro.algorithms.lehmann_rabin.automaton import lr_time_of
from repro.errors import StateBudgetExceeded, VerificationError
from repro.mdp.bounded import min_reach_probability_rounds
from repro.proofs.statements import StateClass
from repro.statespace.compile import CompiledSpace, SpaceSpec, compile_space

_ALL_LOCALS = tuple(
    ProcessState(pc, side) for pc in PC for side in Side
)

_STATE_CACHE: Dict[int, Tuple[LRState, ...]] = {}


def all_consistent_states(n: int) -> Tuple[LRState, ...]:
    """Every Lemma 6.1-consistent global state for ring size ``n``.

    Grows as ~20^n before consistency filtering; intended for n <= 4.
    Results are cached per ``n``.
    """
    if n > 4:
        raise VerificationError(
            f"exhaustive enumeration is intended for n <= 4, got {n}"
        )
    cached = _STATE_CACHE.get(n)
    if cached is None:
        states: List[LRState] = []
        for combo in itertools.product(_ALL_LOCALS, repeat=n):
            if consistent_resources(combo) is None:
                continue
            states.append(make_state(list(combo)))
        cached = tuple(states)
        _STATE_CACHE[n] = cached
    return cached


@dataclass(frozen=True)
class ExhaustiveResult:
    """One proposition checked over its whole region."""

    name: str
    region: str
    states_checked: int
    bound: Fraction
    exact_minimum: Fraction
    witness: Optional[LRState]

    @property
    def holds(self) -> bool:
        """Does the exhaustive minimum meet the paper's bound?"""
        return self.exact_minimum >= self.bound

    @property
    def slack(self) -> Fraction:
        """How far above the paper's bound the true minimum sits."""
        return self.exact_minimum - self.bound


#: name -> (region class, target predicate, rounds, paper bound)
LEAF_SPECS: Dict[str, Tuple[StateClass, Callable, int, Fraction]] = {
    "A.1": (P_CLASS, in_critical, 1, Fraction(1)),
    "A.3": (
        T_CLASS,
        lambda s: in_reduced_trying(s) or in_critical(s),
        2,
        Fraction(1),
    ),
    "A.15": (
        RT_CLASS,
        lambda s: in_flip_ready(s) or in_good(s) or in_pre_critical(s),
        3,
        Fraction(1),
    ),
    "A.14": (
        F_CLASS,
        lambda s: in_good(s) or in_pre_critical(s),
        2,
        Fraction(1, 2),
    ),
    "A.11": (G_CLASS, in_pre_critical, 5, Fraction(1, 4)),
}


def _exhaustive_space(
    automaton, members: List[LRState]
) -> Optional[CompiledSpace]:
    """One interned space shared by every start of a sweep.

    Compiled up to the clock from all region members at once; ``None``
    (falling back to rich-key memoisation) when the closure does not
    fit the default budget, so sweeps degrade instead of failing.
    """
    try:
        return compile_space(
            automaton,
            members,
            SpaceSpec(key=lambda s: s.untimed(), time_of=lr_time_of),
        )
    except StateBudgetExceeded:
        return None


def exhaustive_leaf_check(name: str, n: int = 3) -> ExhaustiveResult:
    """Check one leaf proposition over its entire region, exactly.

    The region's reachable space is compiled once and its interned ids
    key a memo table shared across all member states — neighbouring
    starts reuse almost every subproblem, which is what makes the full
    sweeps fast enough for the tier-1 suite.
    """
    spec = LEAF_SPECS.get(name)
    if spec is None:
        raise VerificationError(
            f"unknown proposition {name!r}; choose from {sorted(LEAF_SPECS)}"
        )
    region, target, rounds, bound = spec
    automaton = lehmann_rabin_automaton(n)
    view = LRProcessView(n)
    members = [s for s in all_consistent_states(n) if region.contains(s)]
    if not members:
        raise VerificationError(f"region {region.name!r} is empty for n={n}")
    space = _exhaustive_space(automaton, members)
    memo: Dict = {}
    worst = Fraction(1)
    witness: Optional[LRState] = None
    for state in members:
        value = min_reach_probability_rounds(
            automaton, view, target, state, rounds,
            strip_time=lambda s: s.untimed(),
            space=space, memo=memo,
        )
        if value < worst:
            worst, witness = value, state
    return ExhaustiveResult(
        name=name,
        region=region.name,
        states_checked=len(members),
        bound=bound,
        exact_minimum=worst,
        witness=witness,
    )


def exhaustive_composed_check(
    n: int = 3, rounds: int = 13, limit: Optional[int] = None
) -> ExhaustiveResult:
    """``T --13--> C`` over (optionally the first ``limit``) T states.

    The full sweep over all T states takes a few minutes at n = 3; the
    benchmarks run it with a limit by default and the full version in
    the slow path.
    """
    automaton = lehmann_rabin_automaton(n)
    view = LRProcessView(n)
    members = [s for s in all_consistent_states(n) if T_CLASS.contains(s)]
    if limit is not None:
        members = members[:limit]
    space = _exhaustive_space(automaton, members)
    memo: Dict = {}
    worst = Fraction(1)
    witness: Optional[LRState] = None
    for state in members:
        value = min_reach_probability_rounds(
            automaton, view, in_critical, state, rounds,
            strip_time=lambda s: s.untimed(),
            space=space, memo=memo,
        )
        if value < worst:
            worst, witness = value, state
    return ExhaustiveResult(
        name="composed",
        region=T_CLASS.name,
        states_checked=len(members),
        bound=Fraction(1, 8),
        exact_minimum=worst,
        witness=witness,
    )
