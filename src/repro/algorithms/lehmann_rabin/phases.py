"""Phase decomposition of Lehmann-Rabin runs (the V-recursion's anatomy).

Section 6.2 derives the expected-time bound from a branch analysis of
one attempt departing from ``RT``:

* *success*    — ``P`` reached within time 10, probability >= 1/8;
* *failure at the third arrow*  — ``F`` was reached but the window
  ``F --2--> G|P`` missed, time spent <= 5, probability <= 1/2;
* *failure at the fourth arrow* — ``G|P`` was reached but the window
  ``G --5--> P`` missed, time spent <= 10, probability <= 3/8.

This module replays that accounting on sampled executions: it walks a
run from an ``RT`` state, finds the first entry into ``F | G | P``
(within 3, by Prop A.15), then classifies the attempt by which window
missed.  The measured branch frequencies and times are compared with
the recursion's coefficients by the benchmarks — reproducing not just
the paper's final constant but the *structure* of its derivation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from repro.adversary.base import Adversary
from repro.algorithms import lehmann_rabin as lr
from repro.automaton.automaton import ProbabilisticAutomaton
from repro.automaton.execution import ExecutionFragment
from repro.errors import VerificationError

#: Branch labels of the Section 6.2 recursion.
SUCCESS = "success"
FAIL_THIRD = "fail-third-arrow"
FAIL_FOURTH = "fail-fourth-arrow"


@dataclass(frozen=True)
class PhaseOutcome:
    """One attempt's classification and the time it consumed."""

    branch: str
    time_spent: Fraction


@dataclass(frozen=True)
class PhaseStatistics:
    """Aggregated branch frequencies and worst observed times."""

    outcomes: Tuple[PhaseOutcome, ...]

    def frequency(self, branch: str) -> float:
        """The fraction of attempts resolved by ``branch``."""
        if not self.outcomes:
            raise VerificationError("no outcomes recorded")
        return sum(
            1 for o in self.outcomes if o.branch == branch
        ) / len(self.outcomes)

    def max_time(self, branch: str) -> Fraction:
        """The slowest attempt on ``branch`` (0 if none occurred)."""
        times = [o.time_spent for o in self.outcomes if o.branch == branch]
        return max(times) if times else Fraction(0)

    def respects_recursion_coefficients(self, slack: float = 0.05) -> bool:
        """Do the measured frequencies fit the paper's coefficients?

        The paper uses *bounds*: success >= 1/8, fail-third <= 1/2,
        fail-fourth <= 3/8.  ``slack`` absorbs sampling noise on the
        upper-bounded branches.
        """
        return (
            self.frequency(SUCCESS) >= 1 / 8
            and self.frequency(FAIL_THIRD) <= 1 / 2 + slack
            and self.frequency(FAIL_FOURTH) <= 3 / 8 + slack
        )


def _first_hit(
    states: Sequence[lr.LRState],
    start_index: int,
    predicate,
    deadline: Fraction,
    origin: Fraction,
) -> Optional[int]:
    """Index of the first state at/after ``start_index`` satisfying
    ``predicate`` with clock at most ``origin + deadline``."""
    for index in range(start_index, len(states)):
        state = states[index]
        if lr.lr_time_of(state) - origin > deadline:
            return None
        if predicate(state):
            return index
    return None


def classify_attempt(
    states: Sequence[lr.LRState], start_index: int = 0
) -> Optional[PhaseOutcome]:
    """Classify one attempt beginning at ``states[start_index]`` (in RT).

    Follows the paper's accounting: first entry into ``F | G | P``
    within 3 (guaranteed by Prop A.15); if the entry is into ``F``, the
    ``F --2--> G|P`` window; then the ``G|P --5--> P`` window.  Returns
    ``None`` when the trajectory is too short to resolve the attempt.
    """
    origin = lr.lr_time_of(states[start_index])

    def in_fgp(state):
        return (
            lr.in_flip_ready(state) or lr.in_good(state)
            or lr.in_pre_critical(state)
        )

    def in_gp(state):
        return lr.in_good(state) or lr.in_pre_critical(state)

    entry = _first_hit(states, start_index, in_fgp, Fraction(3), origin)
    if entry is None:
        # Prop A.15 guarantees entry within 3; a None here means the
        # trajectory ended early.
        return None
    entry_state = states[entry]
    entry_time = lr.lr_time_of(entry_state)

    if not in_gp(entry_state):
        # Entered through F: the F --2--> G|P window.
        gp = _first_hit(states, entry, in_gp, Fraction(2), entry_time)
        if gp is None:
            missed_by = _first_hit(
                states, entry, lambda s: lr.lr_time_of(s) - entry_time > 2,
                Fraction(10**6), entry_time,
            )
            if missed_by is None:
                return None
            return PhaseOutcome(
                branch=FAIL_THIRD,
                time_spent=lr.lr_time_of(states[missed_by]) - origin,
            )
    else:
        gp = entry
    gp_time = lr.lr_time_of(states[gp])

    hit_p = _first_hit(
        states, gp, lr.in_pre_critical, Fraction(5), gp_time
    )
    if hit_p is not None:
        return PhaseOutcome(
            branch=SUCCESS,
            time_spent=lr.lr_time_of(states[hit_p]) - origin,
        )
    missed_by = _first_hit(
        states, gp, lambda s: lr.lr_time_of(s) - gp_time > 5,
        Fraction(10**6), gp_time,
    )
    if missed_by is None:
        return None
    return PhaseOutcome(
        branch=FAIL_FOURTH,
        time_spent=lr.lr_time_of(states[missed_by]) - origin,
    )


def sample_phase_statistics(
    automaton: ProbabilisticAutomaton[lr.LRState],
    adversary: Adversary[lr.LRState],
    starts: Sequence[lr.LRState],
    rng: random.Random,
    attempts: int = 200,
    max_steps: int = 400,
) -> PhaseStatistics:
    """Sample ``attempts`` single attempts from the given RT states."""
    if not starts:
        raise VerificationError("no start states supplied")
    outcomes: List[PhaseOutcome] = []
    index = 0
    budget = attempts * 4
    while len(outcomes) < attempts and budget > 0:
        budget -= 1
        start = starts[index % len(starts)]
        index += 1
        fragment = ExecutionFragment.initial(start)
        for _ in range(max_steps):
            step = adversary.checked_choose(automaton, fragment)
            if step is None:
                break
            fragment = fragment.extend(step.action, step.target.sample(rng))
            if lr.lr_time_of(fragment.lstate) - lr.lr_time_of(start) > 12:
                break
        outcome = classify_attempt(fragment.states)
        if outcome is not None:
            outcomes.append(outcome)
    if len(outcomes) < attempts:
        raise VerificationError(
            f"only {len(outcomes)}/{attempts} attempts resolved; "
            "increase max_steps"
        )
    return PhaseStatistics(outcomes=tuple(outcomes))
