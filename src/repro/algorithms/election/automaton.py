"""Randomized leader election among anonymous candidates.

The second case study (Section 7 asks for the method to be exercised on
other algorithms).  ``k`` anonymous candidates repeatedly flip fair
coins in lock-step rounds; after a round in which some candidates drew 1
and some drew 0, the 0-drawers withdraw.  When a single candidate
remains, it declares itself leader.  Symmetry makes the problem
unsolvable deterministically — the same motivation as the Dining
Philosophers ring — and the expected number of rounds is logarithmic in
``k``.

Model.  The automaton enforces the phases of a round structurally (a
candidate resolves only after every active candidate committed its
coin, and nobody re-flips until every candidate resolved), while the
adversary keeps full control of ordering within each phase and of the
timing, exactly like the Lehmann-Rabin Unit-Time setting.  Per-candidate
statuses:

* ``F``           — active, must flip this round;
* ``W0``/``W1``   — active, committed its coin, must resolve;
* ``RS0``/``RS1`` — active, resolved "stay", waiting for the round
  barrier (the coin is retained so that later resolvers still see the
  full round bit-vector);
* ``O``           — withdrawn (out);
* ``L``           — elected leader.

A ``resolve_i`` step is enabled once no active candidate is still in
``F``: candidate ``i`` inspects all committed coins (``W*`` and ``RS*``)
— if both values are present and ``i`` holds a 0 it withdraws,
otherwise it moves to ``RS``; the *last* resolver also releases the
barrier, sending every ``RS`` candidate back to ``F``.  A sole
surviving candidate takes ``lead_i`` instead of flipping.

This is a full-information substitution for the ring circulation of
coin values in a message-passing implementation; it preserves the
adversary's scheduling power and the algorithm's probabilistic
structure (see DESIGN.md).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from typing import FrozenSet, List, Optional, Tuple

from repro.adversary.unit_time import ProcessView
from repro.automaton.automaton import FunctionalAutomaton
from repro.automaton.signature import TIME_PASSAGE, Action, ActionSignature
from repro.automaton.transition import Transition
from repro.errors import AutomatonError
from repro.probability.space import FiniteDistribution


class EStatus(enum.Enum):
    """Per-candidate status."""

    F = "F"      # active, about to flip
    W0 = "W0"    # active, committed coin 0, not yet resolved
    W1 = "W1"    # active, committed coin 1, not yet resolved
    RS0 = "RS0"  # active, resolved to stay, coin was 0
    RS1 = "RS1"  # active, resolved to stay, coin was 1
    O = "O"      # withdrawn
    L = "L"      # leader

    def __repr__(self) -> str:
        return self.value


#: Statuses of candidates still in the race.
ACTIVE: FrozenSet[EStatus] = frozenset(
    {EStatus.F, EStatus.W0, EStatus.W1, EStatus.RS0, EStatus.RS1}
)
#: Statuses awaiting resolution.
WAITING: FrozenSet[EStatus] = frozenset({EStatus.W0, EStatus.W1})
#: Statuses carrying a committed coin for the current round.
COMMITTED: FrozenSet[EStatus] = frozenset(
    {EStatus.W0, EStatus.W1, EStatus.RS0, EStatus.RS1}
)

FLIP, RESOLVE, LEAD = "flip", "resolve", "lead"


def _bit_of(status: EStatus) -> int:
    """The committed coin carried by a ``W*``/``RS*`` status."""
    return 1 if status in (EStatus.W1, EStatus.RS1) else 0


@dataclass(frozen=True)
class ElectionState:
    """Global state: per-candidate statuses and the clock."""

    statuses: Tuple[EStatus, ...]
    time: Fraction

    def __post_init__(self) -> None:
        if len(self.statuses) < 2:
            raise AutomatonError("an election needs at least two candidates")

    @property
    def n(self) -> int:
        """The number of candidates."""
        return len(self.statuses)

    def with_status(self, i: int, status: EStatus) -> "ElectionState":
        """Copy with candidate ``i``'s status replaced."""
        return ElectionState(
            self.statuses[:i] + (status,) + self.statuses[i + 1 :], self.time
        )

    def advanced(self, amount: Fraction) -> "ElectionState":
        """Copy with the clock advanced."""
        return ElectionState(self.statuses, self.time + amount)

    def untimed(self) -> Tuple[EStatus, ...]:
        """The state without its clock."""
        return self.statuses

    def active_candidates(self) -> List[int]:
        """Indices of candidates still in the race."""
        return [i for i, s in enumerate(self.statuses) if s in ACTIVE]

    def flip_phase_open(self) -> bool:
        """Is some candidate still waiting to flip this round?"""
        return any(s is EStatus.F for s in self.statuses)

    def committed_bits(self) -> List[int]:
        """All coins committed in the current round (``W*`` and ``RS*``)."""
        return [
            _bit_of(s) for s in self.statuses if s in COMMITTED
        ]

    def __repr__(self) -> str:
        inner = " ".join(s.value for s in self.statuses)
        return f"ElectionState[{inner} | t={self.time}]"


def election_initial_state(n: int) -> ElectionState:
    """All ``n`` candidates active and ready to flip, time 0."""
    return ElectionState(tuple([EStatus.F] * n), Fraction(0))


def election_signature(n: int) -> ActionSignature:
    """Action signature: ``lead`` is external, the rest internal."""
    external = frozenset((LEAD, i) for i in range(n))
    internal = frozenset(
        (kind, i) for kind in (FLIP, RESOLVE) for i in range(n)
    ) | {TIME_PASSAGE}
    return ActionSignature(external=external, internal=internal)


def _resolution_target(state: ElectionState, i: int) -> ElectionState:
    """The state after candidate ``i`` resolves.

    Withdraws on a losing 0 (both values present this round); otherwise
    parks in ``RS`` carrying its coin.  The last resolver releases the
    barrier: every ``RS`` candidate returns to ``F``.
    """
    bits = state.committed_bits()
    my_bit = _bit_of(state.statuses[i])
    if 0 in bits and 1 in bits and my_bit == 0:
        after = state.with_status(i, EStatus.O)
    else:
        after = state.with_status(
            i, EStatus.RS1 if my_bit else EStatus.RS0
        )
    if not any(s in WAITING for s in after.statuses):
        released = tuple(
            EStatus.F if s in (EStatus.RS0, EStatus.RS1) else s
            for s in after.statuses
        )
        after = ElectionState(released, after.time)
    return after


def election_transitions(state: ElectionState) -> List[Transition[ElectionState]]:
    """The enabled steps of the election automaton."""
    steps: List[Transition[ElectionState]] = []
    active = state.active_candidates()
    flip_open = state.flip_phase_open()
    for i, status in enumerate(state.statuses):
        if status is EStatus.F:
            if len(active) == 1:
                # The last candidate standing declares victory instead
                # of flipping alone forever.
                steps.append(
                    Transition.deterministic(
                        state, (LEAD, i), state.with_status(i, EStatus.L)
                    )
                )
            else:
                steps.append(
                    Transition(
                        state,
                        (FLIP, i),
                        FiniteDistribution.bernoulli(
                            state.with_status(i, EStatus.W0),
                            state.with_status(i, EStatus.W1),
                        ),
                    )
                )
        elif status in WAITING and not flip_open:
            steps.append(
                Transition.deterministic(
                    state, (RESOLVE, i), _resolution_target(state, i)
                )
            )
    steps.append(
        Transition.deterministic(
            state, TIME_PASSAGE, state.advanced(Fraction(1))
        )
    )
    return steps


def election_automaton(
    n: int, start: Optional[ElectionState] = None
) -> FunctionalAutomaton[ElectionState]:
    """The leader-election automaton for ``n`` candidates."""
    if n < 2:
        raise AutomatonError("an election needs at least two candidates")
    if start is None:
        start = election_initial_state(n)
    if start.n != n:
        raise AutomatonError(f"start state has {start.n} candidates, expected {n}")
    return FunctionalAutomaton(
        start_states=(start,),
        signature=election_signature(n),
        transition_fn=election_transitions,
    )


def election_time_of(state: ElectionState) -> Fraction:
    """The clock of an election state."""
    return state.time


class ElectionProcessView(ProcessView[ElectionState]):
    """Process decomposition for Unit-Time scheduling of the election.

    There is no user: every enabled non-time action is obligated, so a
    candidate is ready exactly when it has an enabled step (``F``
    always; ``W*`` once the round's flip phase has closed; ``RS*``
    never — it waits for the barrier).
    """

    def __init__(self, n: int):
        if n < 2:
            raise AutomatonError("an election needs at least two candidates")
        self._processes = tuple(range(n))

    @property
    def processes(self) -> Tuple[int, ...]:
        return self._processes

    def ready(self, state: ElectionState) -> FrozenSet[int]:
        flip_open = state.flip_phase_open()
        ready = set()
        for i, status in enumerate(state.statuses):
            if status is EStatus.F:
                ready.add(i)
            elif status in WAITING and not flip_open:
                ready.add(i)
        return frozenset(ready)

    def process_of(self, action: Action) -> Optional[int]:
        if action == TIME_PASSAGE:
            return None
        _, index = action
        return index

    def time_of(self, state: ElectionState) -> Fraction:
        return state.time
