"""Arrow-statement analysis of the leader election (method generality).

Section 7 claims the proof technique applies to many randomized
protocols; this module demonstrates it end to end on the election:

* level statements ``D_k --3-->_{1/2} D_{k-1} | L`` for ``k >= 2``
  (within three time units a full coin round completes and, with
  probability at least 1/2, eliminates somebody — the worst start
  state is a just-committed all-equal round, which must first be
  resolved and replayed);
* the base statement ``D_1 --2-->_1 L`` (a lone candidate resolves and
  declares itself);
* their composition through Proposition 3.2 and Theorem 3.4 into
  ``D_n --(3(n-1)+2)-->_{2^{-(n-1)}} L``;
* a per-level retry recursion giving an expected-election-time bound.

``A_j`` is the set of states with exactly ``j`` active candidates and no
leader; ``D_k = A_1 | ... | A_k`` ("at most k active").
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List

from repro.algorithms.election.automaton import (
    ACTIVE,
    ElectionState,
    EStatus,
)
from repro.errors import ProofError
from repro.proofs.expected_time import RetryBranch, RetryRecursion
from repro.proofs.ledger import ProofLedger, StatementId
from repro.proofs.statements import ArrowStatement, StateClass

#: The schema name for election statements (same Unit-Time notion).
ELECTION_SCHEMA = "Unit-Time"


def active_count(state: ElectionState) -> int:
    """The number of candidates still in the race."""
    return sum(1 for s in state.statuses if s in ACTIVE)


def leader_elected(state: ElectionState) -> bool:
    """Has some candidate declared itself leader?"""
    return any(s is EStatus.L for s in state.statuses)


#: ``L``: a leader has been elected.
LEADER_CLASS = StateClass("L", leader_elected)

# StateClass predicates are compared by atom name; cache the exact-count
# atoms so that every caller shares one predicate object per level.
_EXACTLY_CACHE: Dict[int, StateClass] = {}


def exactly_active_class(j: int) -> StateClass:
    """``A_j``: exactly ``j`` active candidates, no leader yet."""
    if j < 1:
        raise ProofError("a nonempty race needs at least one active candidate")
    cached = _EXACTLY_CACHE.get(j)
    if cached is None:
        def predicate(state: ElectionState, count: int = j) -> bool:
            return not leader_elected(state) and active_count(state) == count

        cached = StateClass(f"A{j}", predicate)
        _EXACTLY_CACHE[j] = cached
    return cached


def at_most_active_class(k: int) -> StateClass:
    """``D_k = A_1 | ... | A_k``: at most ``k`` active, no leader."""
    result = exactly_active_class(1)
    for j in range(2, k + 1):
        result = result | exactly_active_class(j)
    return result


def level_statement(k: int) -> ArrowStatement:
    """``D_k --3-->_{1/2} D_{k-1} | L`` for ``k >= 2``.

    Three time units cover the worst phase alignment (finish a stale
    all-equal round, then flip and resolve a fresh one); the fresh
    round eliminates somebody with probability ``1 - 2^{1-j} >= 1/2``
    for every ``j >= 2`` active candidates, and states already below
    level ``k`` are in the target at time zero.
    """
    if k < 2:
        raise ProofError("level statements need k >= 2")
    return ArrowStatement(
        source=at_most_active_class(k),
        target=at_most_active_class(k - 1) | LEADER_CLASS,
        time_bound=3,
        probability=Fraction(1, 2),
        schema_name=ELECTION_SCHEMA,
    )


def base_statement() -> ArrowStatement:
    """``D_1 --2-->_1 L``: a lone candidate wins within two time units."""
    return ArrowStatement(
        source=at_most_active_class(1),
        target=LEADER_CLASS,
        time_bound=2,
        probability=1,
        schema_name=ELECTION_SCHEMA,
    )


@dataclass(frozen=True)
class ElectionProofChain:
    """The composed election proof for a fixed number of candidates."""

    n: int
    ledger: ProofLedger
    level_ids: Dict[int, StatementId]
    final_id: StatementId

    @property
    def final_statement(self) -> ArrowStatement:
        """``D_n --(3(n-1)+2)-->_{2^{-(n-1)}} L``."""
        return self.ledger.statement(self.final_id)


def election_proof(n: int) -> ElectionProofChain:
    """Compose the level statements into the end-to-end bound for ``n``.

    Mirrors the Lehmann-Rabin derivation: each level statement is lifted
    by Proposition 3.2 (adding ``L`` to both sides) so the chain's
    intermediate sets match, then Theorem 3.4 folds the chain.
    """
    if n < 2:
        raise ProofError("an election needs at least two candidates")
    ledger = ProofLedger(ELECTION_SCHEMA, execution_closed=True)
    level_ids: Dict[int, StatementId] = {}
    chain_ids: List[StatementId] = []
    for k in range(n, 1, -1):
        leaf = ledger.assume(
            level_statement(k),
            evidence=f"one fresh coin round from <= {k} candidates "
            f"(elimination probability 1 - 2^(1-j) >= 1/2)",
        )
        level_ids[k] = leaf
        if k == n:
            # The first chain link keeps its bare source D_n.
            chain_ids.append(leaf)
        else:
            # Lift source D_k to D_k | L so it matches the previous
            # link's target.
            chain_ids.append(ledger.union(leaf, LEADER_CLASS))
    base = ledger.assume(
        base_statement(),
        evidence="a lone candidate resolves any stale round and leads",
    )
    level_ids[1] = base
    chain_ids.append(ledger.union(base, LEADER_CLASS))
    final = ledger.chain(chain_ids)

    expected = ArrowStatement(
        source=at_most_active_class(n),
        target=LEADER_CLASS,
        time_bound=3 * (n - 1) + 2,
        probability=Fraction(1, 2 ** (n - 1)),
        schema_name=ELECTION_SCHEMA,
    )
    chain = ElectionProofChain(
        n=n, ledger=ledger, level_ids=level_ids, final_id=final
    )
    if chain.final_statement != expected:
        raise ProofError(
            f"derivation produced {chain.final_statement!r}, "
            f"expected {expected!r}"
        )
    return chain


def election_expected_time_bound(n: int) -> Fraction:
    """An expected-time bound for electing a leader from ``n`` candidates.

    Per level ``k`` the retry recursion with success probability 1/2 and
    window 3 gives at most 6 expected time units, plus 2 for the lone
    winner's final steps: ``6(n-1) + 2``.
    """
    if n < 2:
        raise ProofError("an election needs at least two candidates")
    per_level = RetryRecursion(
        [
            RetryBranch.of(Fraction(1, 2), 3, retries=False),
            RetryBranch.of(Fraction(1, 2), 3, retries=True),
        ]
    ).solve()
    return per_level * (n - 1) + 2
