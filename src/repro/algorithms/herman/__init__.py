"""Herman's probabilistic self-stabilizing token ring (new case study).

The canonical next randomized-ring protocol after Lehmann-Rabin: an odd
ring of bit-holding processes where token holders flip a (possibly
biased) coin each round and everyone else copies left, merging tokens
until the legal single-token configuration is reached.  Packaged for
the paper's framework — Unit-Time process view, arrow-statement claims,
retry-recursion expected-time bound, and dihedral compile quotients —
and registered as the ``herman`` model in :mod:`repro.models`.
"""

from repro.algorithms.herman.automaton import (
    COPY,
    FAIR_COIN,
    FLIP,
    HermanProcessView,
    herman_automaton,
    herman_initial_state,
    herman_signature,
    herman_time_of,
    herman_transitions,
    token_at,
    token_count,
)
from repro.algorithms.herman.claims import (
    HERMAN_SCHEMA,
    REDUCED_CLASS,
    STABLE_CLASS,
    TOP_CLASS,
    at_top,
    collapse_probability,
    herman_expected_time_bound,
    herman_progress_statement,
    in_reduced,
    stabilized,
)
from repro.algorithms.herman.state import HermanState, herman_fresh_state
from repro.algorithms.herman.symmetry import (
    canonical_rotation,
    canonical_symmetry,
    ring_symmetry_spec,
    rotation_orbit,
    rotation_space_spec,
    symmetry_orbit,
)

__all__ = [
    "COPY",
    "FAIR_COIN",
    "FLIP",
    "HERMAN_SCHEMA",
    "HermanProcessView",
    "HermanState",
    "REDUCED_CLASS",
    "STABLE_CLASS",
    "TOP_CLASS",
    "at_top",
    "canonical_rotation",
    "canonical_symmetry",
    "collapse_probability",
    "herman_automaton",
    "herman_expected_time_bound",
    "herman_fresh_state",
    "herman_initial_state",
    "herman_progress_statement",
    "herman_signature",
    "herman_time_of",
    "herman_transitions",
    "in_reduced",
    "ring_symmetry_spec",
    "rotation_orbit",
    "rotation_space_spec",
    "stabilized",
    "symmetry_orbit",
    "token_at",
    "token_count",
]
