"""The Herman token-ring automaton and its Unit-Time process view.

Round structure (see :mod:`repro.algorithms.herman.state`): every
uncommitted process has exactly one enabled step per round — token
holders flip the shared (possibly biased) coin, everyone else copies
its left neighbour's round-start bit — plus the always-enabled
``TIME_PASSAGE`` self-advance.  The commit/barrier encoding makes the
synchronous protocol a probabilistic automaton in the sense of
Definition 2.1 while keeping every round's randomness independent of
the schedule, so reports are adversary-schedule-invariant within a
round.
"""

from __future__ import annotations

from fractions import Fraction
from typing import FrozenSet, List, Optional, Tuple

from repro.adversary.unit_time import ProcessView
from repro.algorithms.herman.state import HermanState, herman_fresh_state
from repro.automaton.automaton import FunctionalAutomaton
from repro.automaton.signature import TIME_PASSAGE, Action, ActionSignature
from repro.automaton.transition import Transition
from repro.errors import AutomatonError
from repro.probability.space import FiniteDistribution

#: Action kinds: token holders ``flip`` the coin, the rest ``copy``.
FLIP = "flip"
COPY = "copy"

#: The default (fair) coin.
FAIR_COIN = Fraction(1, 2)


def token_at(state: HermanState, i: int) -> bool:
    """Process ``i`` holds a token: its bit equals its left neighbour's."""
    return state.bits[i] == state.bits[i - 1]


def token_count(state: HermanState) -> int:
    """The number of tokens on the ring (odd, never increasing)."""
    return sum(1 for i in range(state.n) if token_at(state, i))


def herman_signature(n: int) -> ActionSignature:
    """All commit actions are internal, like the election's rounds."""
    internal = frozenset(
        (kind, i) for kind in (FLIP, COPY) for i in range(n)
    ) | {TIME_PASSAGE}
    return ActionSignature(internal=internal)


def herman_transitions(
    state: HermanState, bias: Fraction
) -> List[Transition[HermanState]]:
    """The enabled steps: one commit per uncommitted process, plus time."""
    steps: List[Transition[HermanState]] = []
    for i in range(state.n):
        if state.commits[i] is not None:
            continue
        if token_at(state, i):
            steps.append(
                Transition(
                    state,
                    (FLIP, i),
                    FiniteDistribution(
                        {
                            state.committed(i, 1): bias,
                            state.committed(i, 0): 1 - bias,
                        }
                    ),
                )
            )
        else:
            steps.append(
                Transition.deterministic(
                    state, (COPY, i), state.committed(i, state.bits[i - 1])
                )
            )
    steps.append(
        Transition.deterministic(
            state, TIME_PASSAGE, state.advanced(Fraction(1))
        )
    )
    return steps


def herman_initial_state(n: int, fill: int = 1) -> HermanState:
    """The all-``fill`` configuration: every process holds a token."""
    if fill not in (0, 1):
        raise AutomatonError(f"fill bit must be 0 or 1, got {fill}")
    return herman_fresh_state((fill,) * n)


def herman_automaton(
    n: int,
    bias: Fraction = FAIR_COIN,
    start: Optional[HermanState] = None,
) -> FunctionalAutomaton[HermanState]:
    """Herman's ring for ``n`` (odd) processes with coin bias ``bias``.

    ``bias`` is the probability a token holder commits bit 1; Herman's
    original protocol is the fair coin, and the biased variants are the
    subject of the optimal-bias-synthesis literature.
    """
    if n < 3 or n % 2 == 0:
        raise AutomatonError(
            f"Herman's ring needs an odd number of processes >= 3, got {n}"
        )
    if not Fraction(0) < bias < Fraction(1):
        raise AutomatonError(
            f"the coin bias must lie strictly between 0 and 1, got {bias}"
        )
    if start is None:
        start = herman_initial_state(n)
    if start.n != n:
        raise AutomatonError(
            f"start state has {start.n} processes, expected {n}"
        )
    return FunctionalAutomaton(
        start_states=(start,),
        signature=herman_signature(n),
        transition_fn=lambda state: herman_transitions(state, bias),
    )


def herman_time_of(state: HermanState) -> Fraction:
    """The state's clock."""
    return state.time


class HermanProcessView(ProcessView[HermanState]):
    """The Unit-Time obligations of the ring.

    A process is ready while it has not committed this round; the
    barrier release (last commit) leaves everyone ready for the next
    round, so obligations never starve.
    """

    def __init__(self, n: int):
        if n < 3 or n % 2 == 0:
            raise AutomatonError(
                f"Herman's ring needs an odd number of processes >= 3, "
                f"got {n}"
            )
        self._processes: Tuple[int, ...] = tuple(range(n))

    @property
    def processes(self) -> Tuple[int, ...]:
        return self._processes

    def ready(self, state: HermanState) -> FrozenSet[int]:
        return frozenset(
            i for i, commit in enumerate(state.commits) if commit is None
        )

    def process_of(self, action: Action) -> Optional[int]:
        if action == TIME_PASSAGE:
            return None
        if isinstance(action, tuple) and len(action) == 2:
            kind, i = action
            if kind in (FLIP, COPY):
                return i
        return None

    def time_of(self, state: HermanState) -> Fraction:
        return state.time
