"""Arrow-statement claims for Herman's self-stabilizing ring.

One hand-derived progress statement in the paper's style, rigorous for
every odd ``n`` and coin bias ``p``:

    Top --1-->_{1 - p^n - (1-p)^n} Reduced

where ``Top`` is the round-fresh all-tokens region (all bits equal —
the classic worst start) and ``Reduced`` is the region with fewer than
``n`` tokens.  Justification: from ``Top`` every process holds a token,
so the round commits ``n`` independent coin flips and installs them
within one time unit of Unit-Time scheduling; the new configuration
stays in ``Top`` exactly when all ``n`` flips agree, which has
probability ``p^n + (1-p)^n``.

Because a failed round lands back in ``Top``, the paper's retry
recursion (Section 6.2) applies verbatim and bounds the expected time
to leave ``Top`` by ``1 / (1 - p^n - (1-p)^n)`` — ``4/3`` for the fair
coin on the default ``n = 3`` ring.

At ``n = 3`` the token count is 1 or 3, so ``Reduced`` *is* the legal
single-token region and the bound is an expected-self-stabilization
bound.  For larger rings the claim bounds the first token collapse;
composing collapse statements level by level (as the election does) is
the natural extension and is tracked in ROADMAP.md.
"""

from __future__ import annotations

from fractions import Fraction

from repro.algorithms.herman.automaton import token_count
from repro.algorithms.herman.state import HermanState
from repro.errors import ProofError
from repro.proofs.expected_time import RetryBranch, RetryRecursion
from repro.proofs.statements import ArrowStatement, StateClass

#: The schema name (same Unit-Time notion as the other case studies).
HERMAN_SCHEMA = "Unit-Time"


def at_top(state: HermanState) -> bool:
    """Round-fresh with a token everywhere (all bits equal)."""
    return all(commit is None for commit in state.commits) and (
        len(set(state.bits)) == 1
    )


def in_reduced(state: HermanState) -> bool:
    """Fewer than ``n`` tokens: the first collapse has happened."""
    return token_count(state) < state.n


def stabilized(state: HermanState) -> bool:
    """The legal configuration: exactly one token circulates."""
    return token_count(state) == 1


#: ``Top``: every process holds a token, round fresh.
TOP_CLASS = StateClass("Top", at_top)
#: ``Reduced``: the token count has dropped below ``n``.
REDUCED_CLASS = StateClass("Reduced", in_reduced)
#: ``Stable``: the single-token legal region.
STABLE_CLASS = StateClass("Stable", stabilized)


def collapse_probability(n: int, bias: Fraction) -> Fraction:
    """``1 - p^n - (1-p)^n``: one round breaks the all-equal pattern."""
    if n < 3 or n % 2 == 0:
        raise ProofError(
            f"Herman's ring needs an odd number of processes >= 3, got {n}"
        )
    if not Fraction(0) < bias < Fraction(1):
        raise ProofError(
            f"the coin bias must lie strictly between 0 and 1, got {bias}"
        )
    return 1 - bias**n - (1 - bias) ** n


def herman_progress_statement(
    n: int, bias: Fraction = Fraction(1, 2)
) -> ArrowStatement:
    """``Top --1-->_{1 - p^n - (1-p)^n} Reduced``."""
    return ArrowStatement(
        source=TOP_CLASS,
        target=REDUCED_CLASS,
        time_bound=1,
        probability=collapse_probability(n, bias),
        schema_name=HERMAN_SCHEMA,
    )


def herman_expected_time_bound(
    n: int, bias: Fraction = Fraction(1, 2)
) -> Fraction:
    """The retry-recursion bound on the expected time to ``Reduced``.

    A failed round returns to ``Top``, so the recursion is exact in
    the paper's sense: ``E <= 1 / (1 - p^n - (1-p)^n)``.
    """
    statement = herman_progress_statement(n, bias)
    recursion = RetryRecursion(
        [
            RetryBranch.of(
                statement.probability, statement.time_bound, retries=False
            ),
            RetryBranch.of(
                1 - statement.probability, statement.time_bound,
                retries=True,
            ),
        ]
    )
    return recursion.solve()
