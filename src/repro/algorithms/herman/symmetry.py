"""Herman's ring symmetries as compile-time quotients.

Herman's protocol is invariant under **rotation**: relabelling process
``i`` to ``i - k`` preserves left-neighbour adjacency and orientation,
so it maps transitions to transitions with identical probabilities and
time advances — rotation is a strict automorphism of the directed
dynamics.

**Reflection** is subtler than in Lehmann-Rabin: the mirror reverses
the ring's orientation, and Herman's update rule is directional (every
process reads its *left* neighbour), so reflection composed with one
round is one round of the *mirror-image* protocol, not of the original.
Reflection does preserve the token structure (the token at ``i`` maps
to a token at ``1 - i``) and therefore every shipped predicate — token
count, stability, the ``Top``/``Reduced`` regions — is constant on
dihedral orbits, which is exactly what the quotient-invariance spot
check of ``CompiledSpace.flags`` probes.  As with the Lehmann-Rabin
dihedral quotient, the full quotient is sound for quotient-level
analyses over symmetry-invariant predicates, while per-adversary
sampling keeps the exact untimed quotient of the model's
``space_spec`` (docs/models.md spells out the contract).
"""

from __future__ import annotations

from typing import Tuple

from repro.algorithms.herman.automaton import herman_time_of
from repro.algorithms.herman.state import HermanState
from repro.statespace.compile import SpaceSpec

_COMMIT_LETTERS = {None: 2, 0: 0, 1: 1}


def _ring_word(state: HermanState) -> Tuple[Tuple[int, int], ...]:
    """The ring as a comparable word, one letter per index.

    Letter ``j`` packs ``(bits[j], commits[j])`` (with ``None`` mapped
    above the bit values); rotating the state rotates the word, so the
    least rotation of the word identifies the least rotation of the
    state, and equal least words mean equal canonical states.
    """
    return tuple(
        (bit, _COMMIT_LETTERS[commit])
        for bit, commit in zip(state.bits, state.commits)
    )


def _least_rotation(word) -> Tuple[int, Tuple]:
    """``(k, word rotated by k)`` minimising the rotated word."""
    n = len(word)
    doubled = word + word
    best_k = 0
    best = word
    for k in range(1, n):
        candidate = doubled[k : k + n]
        if candidate < best:
            best = candidate
            best_k = k
    return best_k, best


def canonical_rotation(state: HermanState) -> HermanState:
    """The lexicographically least rotation of ``state`` (clock kept)."""
    k, _ = _least_rotation(_ring_word(state))
    return state.rotated(k)


def rotation_orbit(state: HermanState) -> Tuple[HermanState, ...]:
    """Every rotation of ``state`` (duplicates for symmetric states)."""
    return tuple(state.rotated(k) for k in range(state.n))


def canonical_symmetry(state: HermanState) -> HermanState:
    """The least dihedral image of ``state``: rotations and mirrors."""
    k, best = _least_rotation(_ring_word(state))
    mirrored = state.reflected()
    mk, mbest = _least_rotation(_ring_word(mirrored))
    if mbest < best:
        return mirrored.rotated(mk)
    return state.rotated(k)


def symmetry_orbit(state: HermanState) -> Tuple[HermanState, ...]:
    """All ``2n`` dihedral images of ``state`` (duplicates possible)."""
    mirrored = state.reflected()
    return tuple(state.rotated(k) for k in range(state.n)) + tuple(
        mirrored.rotated(k) for k in range(state.n)
    )


def rotation_space_spec() -> SpaceSpec:
    """The untimed quotient composed with the rotation quotient.

    Rotation is a strict automorphism of Herman's directed dynamics;
    this quotient is exact for the automaton and for rotation-invariant
    predicates (all shipped region predicates are).
    """
    return SpaceSpec(
        key=lambda state: state.untimed(),
        time_of=herman_time_of,
        canonical=canonical_rotation,
        orbit=rotation_orbit,
    )


def ring_symmetry_spec() -> SpaceSpec:
    """The untimed quotient composed with the full dihedral quotient.

    ~``2n``-fold reduction.  Reflection reverses the update rule's
    orientation (see the module docstring), so this spec serves
    quotient-level analyses over symmetry-invariant predicates only —
    token counts, region flags, reachable-space measurement — never
    per-adversary sampling.
    """
    return SpaceSpec(
        key=lambda state: state.untimed(),
        time_of=herman_time_of,
        canonical=canonical_symmetry,
        orbit=symmetry_orbit,
    )
