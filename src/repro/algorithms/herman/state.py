"""States of Herman's self-stabilizing token ring.

Herman's protocol (Herman 1990, "Probabilistic self-stabilization")
runs on a unidirectional ring of an odd number ``n`` of processes, each
holding one bit.  Process ``i`` *has a token* exactly when its bit
equals its left neighbour's (``bits[i] == bits[i-1]``); the number of
tokens is therefore odd and never increases.  Each synchronous round
every token holder re-randomizes its bit with a (possibly biased) coin
while every other process copies its left neighbour; adjacent tokens
merge, and the ring self-stabilizes to the legal single-token
configuration with probability one.

The paper's framework is asynchronous, so the synchronous round is
encoded the same way the leader election encodes its coin rounds: each
process *commits* its next bit against the round-start snapshot, and
the last committer releases the barrier by installing the committed
bits as the new configuration.  ``time`` advances only through explicit
``TIME_PASSAGE`` steps, as everywhere else in the library.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Tuple

from repro.errors import AutomatonError


@dataclass(frozen=True)
class HermanState:
    """One configuration of the ring: bits, pending commits, clock.

    ``bits[i]`` is process ``i``'s current bit; ``commits[i]`` is the
    bit it has committed for the next configuration this round, or
    ``None`` while it has not moved yet.  A state never has *every*
    commit filled: the transition that fills the last slot immediately
    installs the committed bits and clears the slate (the barrier
    release), so full-commit configurations are not reachable.
    """

    bits: Tuple[int, ...]
    commits: Tuple[Optional[int], ...]
    time: Fraction = Fraction(0)

    def __post_init__(self) -> None:
        n = len(self.bits)
        if n < 3 or n % 2 == 0:
            raise AutomatonError(
                f"Herman's ring needs an odd number of processes >= 3, "
                f"got {n}"
            )
        if len(self.commits) != n:
            raise AutomatonError(
                f"{n} processes but {len(self.commits)} commit slots"
            )
        if any(bit not in (0, 1) for bit in self.bits):
            raise AutomatonError(f"bits must be 0 or 1, got {self.bits!r}")
        if any(c not in (None, 0, 1) for c in self.commits):
            raise AutomatonError(
                f"commits must be None, 0, or 1, got {self.commits!r}"
            )

    @property
    def n(self) -> int:
        return len(self.bits)

    def untimed(self) -> Tuple[Tuple[int, ...], Tuple[Optional[int], ...]]:
        """The state up to the clock — the compile interning key."""
        return (self.bits, self.commits)

    def advanced(self, amount: Fraction) -> "HermanState":
        """The same configuration with the clock moved forward."""
        return HermanState(self.bits, self.commits, self.time + amount)

    def committed(self, i: int, bit: int) -> "HermanState":
        """Process ``i`` commits ``bit``; the last committer releases.

        Mirrors the election's resolution barrier: when every other
        slot is already filled, the new configuration is installed
        atomically in the same step and the commit slate clears.
        """
        if self.commits[i] is not None:
            raise AutomatonError(f"process {i} has already committed")
        commits = self.commits[:i] + (bit,) + self.commits[i + 1:]
        if all(c is not None for c in commits):
            return HermanState(tuple(commits), (None,) * self.n, self.time)
        return HermanState(self.bits, commits, self.time)

    def rotated(self, k: int) -> "HermanState":
        """The ring relabelled by ``i -> i - k`` (word rotated left)."""
        n = self.n
        return HermanState(
            tuple(self.bits[(i + k) % n] for i in range(n)),
            tuple(self.commits[(i + k) % n] for i in range(n)),
            self.time,
        )

    def reflected(self) -> "HermanState":
        """The ring relabelled by ``i -> -i`` (orientation reversed)."""
        n = self.n
        return HermanState(
            tuple(self.bits[(-i) % n] for i in range(n)),
            tuple(self.commits[(-i) % n] for i in range(n)),
            self.time,
        )

    def __repr__(self) -> str:
        slots = "".join(
            "." if c is None else str(c) for c in self.commits
        )
        word = "".join(str(bit) for bit in self.bits)
        return f"Herman({word}|{slots} t={self.time})"


def herman_fresh_state(
    bits: Tuple[int, ...], time: Fraction = Fraction(0)
) -> HermanState:
    """A round-fresh configuration: no commits pending."""
    return HermanState(tuple(bits), (None,) * len(bits), time)
