"""Case-study algorithms: Lehmann-Rabin, baselines, and extensions."""
