"""The two-coin model of Example 4.1.

Two processes, ``P`` and ``Q``, may each flip one fair coin.  The
adversary decides who flips and when — in particular it may look at the
outcome of one flip before deciding whether to schedule the other,
which is precisely how it breaks naive independence reasoning.

States are pairs ``(p, q)`` with each component one of ``None`` (not
flipped yet), ``"H"``, or ``"T"``.  The model is an
:class:`~repro.automaton.automaton.ExplicitAutomaton`, small enough for
exhaustive analysis, and ships with the hostile adversaries the example
discusses.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.adversary.base import Adversary, FunctionAdversary
from repro.automaton.automaton import ExplicitAutomaton, ProbabilisticAutomaton
from repro.automaton.execution import ExecutionFragment
from repro.automaton.signature import ActionSignature
from repro.automaton.transition import Transition
from repro.probability.space import FiniteDistribution

#: Coin outcomes.
HEADS, TAILS = "H", "T"

FLIP_P, FLIP_Q = "flip_p", "flip_q"

CoinState = Tuple[Optional[str], Optional[str]]


def two_coin_automaton() -> ExplicitAutomaton[CoinState]:
    """The Example 4.1 automaton: each process may flip one fair coin."""
    outcomes = (None, HEADS, TAILS)
    states: List[CoinState] = [(p, q) for p in outcomes for q in outcomes]
    steps: List[Transition[CoinState]] = []
    for p, q in states:
        if p is None:
            steps.append(
                Transition(
                    (p, q),
                    FLIP_P,
                    FiniteDistribution.bernoulli((HEADS, q), (TAILS, q)),
                )
            )
        if q is None:
            steps.append(
                Transition(
                    (p, q),
                    FLIP_Q,
                    FiniteDistribution.bernoulli((p, HEADS), (p, TAILS)),
                )
            )
    return ExplicitAutomaton(
        states=states,
        start_states=[(None, None)],
        signature=ActionSignature(internal=frozenset({FLIP_P, FLIP_Q})),
        steps=steps,
    )


def p_heads(state: CoinState) -> bool:
    """``P``'s coin shows heads."""
    return state[0] == HEADS


def q_tails(state: CoinState) -> bool:
    """``Q``'s coin shows tails."""
    return state[1] == TAILS


def both_flip_adversary() -> Adversary[CoinState]:
    """Flips ``P`` then ``Q`` unconditionally, then halts."""

    def choose(automaton: ProbabilisticAutomaton, fragment: ExecutionFragment):
        p, q = fragment.lstate
        for step in automaton.transitions(fragment.lstate):
            if p is None and step.action == FLIP_P:
                return step
            if p is not None and q is None and step.action == FLIP_Q:
                return step
        return None

    return FunctionAdversary(choose, name="both-flip")


def peek_adversary(schedule_q_on: str = HEADS) -> Adversary[CoinState]:
    """Example 4.1's spoiler: flips ``P``, peeks, then maybe flips ``Q``.

    ``Q`` is scheduled only when ``P``'s outcome equals
    ``schedule_q_on``; otherwise the adversary halts.  This induces the
    dependence the paper warns about: conditioned on both coins having
    been flipped, ``P``'s outcome is forced.
    """

    def choose(automaton: ProbabilisticAutomaton, fragment: ExecutionFragment):
        p, q = fragment.lstate
        for step in automaton.transitions(fragment.lstate):
            if p is None and step.action == FLIP_P:
                return step
            if p == schedule_q_on and q is None and step.action == FLIP_Q:
                return step
        return None

    return FunctionAdversary(choose, name=f"peek-q-on-{schedule_q_on}")


def never_flip_q_adversary() -> Adversary[CoinState]:
    """Flips only ``P``; the ``first(flip_q, .)`` event holds vacuously."""

    def choose(automaton: ProbabilisticAutomaton, fragment: ExecutionFragment):
        p, _ = fragment.lstate
        if p is None:
            for step in automaton.transitions(fragment.lstate):
                if step.action == FLIP_P:
                    return step
        return None

    return FunctionAdversary(choose, name="never-flip-q")
