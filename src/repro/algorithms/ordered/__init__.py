"""Deterministic baseline: resource-ordered (asymmetric) philosophers."""

from repro.algorithms.ordered.automaton import (
    OrderedProcessView,
    OrderedState,
    ordered_automaton,
    ordered_initial_state,
    ordered_time_of,
)
from repro.algorithms.ordered.automaton import OPC, adjacent_resources
from repro.algorithms.ordered.regions import (
    ORDERED_C_CLASS,
    ORDERED_T_CLASS,
    ordered_in_critical,
    ordered_in_trying,
    ordered_mutual_exclusion,
    ordered_resource_invariant,
)

__all__ = [
    "OPC",
    "ORDERED_C_CLASS",
    "ORDERED_T_CLASS",
    "OrderedProcessView",
    "OrderedState",
    "adjacent_resources",
    "ordered_automaton",
    "ordered_in_critical",
    "ordered_in_trying",
    "ordered_initial_state",
    "ordered_mutual_exclusion",
    "ordered_resource_invariant",
    "ordered_time_of",
]
