"""Region predicates and safety checks for the ordered baseline."""

from __future__ import annotations

from repro.algorithms.ordered.automaton import (
    ORDERED_TRYING,
    OPC,
    OrderedState,
    adjacent_resources,
)
from repro.proofs.statements import StateClass


def ordered_in_trying(state: OrderedState) -> bool:
    """Some process is in its trying region."""
    return any(pc in ORDERED_TRYING for pc in state.pcs)


def ordered_in_critical(state: OrderedState) -> bool:
    """Some process is in its critical region."""
    return any(pc is OPC.C for pc in state.pcs)


def ordered_mutual_exclusion(state: OrderedState) -> bool:
    """No two adjacent processes are critical simultaneously."""
    n = state.n
    for i in range(n):
        if state.pcs[i] is OPC.C and state.pcs[(i + 1) % n] is OPC.C:
            return False
    return True


def ordered_resource_invariant(state: OrderedState) -> bool:
    """Resources are taken exactly by their unique current holders.

    A process holds its first resource from ``W2`` up to ``E1``
    inclusive, and its second from ``P`` up to ``E2`` inclusive.
    """
    n = state.n
    holders_first = {OPC.W2, OPC.P, OPC.C, OPC.E1}
    holders_second = {OPC.P, OPC.C, OPC.E1, OPC.E2}
    expected = [False] * n
    for i in range(n):
        first, second = adjacent_resources(i, n)
        if state.pcs[i] in holders_first:
            if expected[first]:
                return False
            expected[first] = True
        if state.pcs[i] in holders_second:
            if expected[second]:
                return False
            expected[second] = True
    return tuple(expected) == state.resources


#: ``T`` for the baseline: some process is trying.
ORDERED_T_CLASS = StateClass("T_ord", ordered_in_trying)
#: ``C`` for the baseline: some process is critical.
ORDERED_C_CLASS = StateClass("C_ord", ordered_in_critical)
