"""The resource-hierarchy Dining Philosophers baseline (deterministic).

The classical deterministic solution breaks the ring's symmetry by
ordering the resources: every process first waits for its lower-indexed
adjacent resource, then for the higher-indexed one.  Exactly one
process (the one between resource ``n-1`` and resource ``0``) therefore
picks its resources in the opposite rotational order, which is what
prevents the circular-wait deadlock.

The paper's introduction motivates randomization by the impossibility
of *symmetric* deterministic solutions; this baseline is the standard
asymmetric comparator.  It is a degenerate probabilistic automaton (all
Dirac targets), so the whole verification stack applies unchanged:
Unit-Time round adversaries, arrow statements, and time measurements —
which is how the benchmarks compare its worst-case progress time
against Lehmann-Rabin's.

Program counters::

    R   remainder           (user ``try`` moves to W1)
    W1  waiting for the lower-indexed resource (busy-wait)
    W2  waiting for the higher-indexed resource (busy-wait, holds first)
    P   pre-critical        (``crit`` announces entry)
    C   critical            (user ``exit`` moves to E1)
    E1  exit: drop first resource
    E2  exit: drop second resource, then ``rem`` back to R

Unlike Lehmann-Rabin, a process in ``W2`` *keeps holding* its first
resource while waiting — hold-and-wait is safe here because the global
resource order rules out cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from typing import FrozenSet, List, Optional, Tuple

from repro.adversary.unit_time import ProcessView
from repro.automaton.automaton import FunctionalAutomaton
from repro.automaton.signature import TIME_PASSAGE, Action, ActionSignature
from repro.automaton.transition import Transition
from repro.errors import AutomatonError


class OPC(enum.Enum):
    """Program counters of the ordered baseline."""

    R = "R"
    W1 = "W1"
    W2 = "W2"
    P = "P"
    C = "C"
    E1 = "E1"
    E2 = "E2"
    ER = "ER"

    def __repr__(self) -> str:
        return self.value


#: Trying-region program counters of the baseline.
ORDERED_TRYING: FrozenSet[OPC] = frozenset({OPC.W1, OPC.W2, OPC.P})


@dataclass(frozen=True)
class OrderedState:
    """Global state: per-process counters, resource flags, and time."""

    pcs: Tuple[OPC, ...]
    resources: Tuple[bool, ...]
    time: Fraction

    def __post_init__(self) -> None:
        if len(self.pcs) != len(self.resources):
            raise AutomatonError("one resource per process is required")
        if len(self.pcs) < 2:
            raise AutomatonError("the ring needs at least two processes")

    @property
    def n(self) -> int:
        """Ring size."""
        return len(self.pcs)

    def with_pc(self, i: int, pc: OPC) -> "OrderedState":
        """Copy with process ``i``'s counter replaced."""
        i %= self.n
        return OrderedState(
            self.pcs[:i] + (pc,) + self.pcs[i + 1 :], self.resources, self.time
        )

    def with_resource(self, j: int, taken: bool) -> "OrderedState":
        """Copy with resource ``j`` replaced."""
        j %= self.n
        return OrderedState(
            self.pcs,
            self.resources[:j] + (taken,) + self.resources[j + 1 :],
            self.time,
        )

    def advanced(self, amount: Fraction) -> "OrderedState":
        """Copy with the clock advanced."""
        return OrderedState(self.pcs, self.resources, self.time + amount)

    def untimed(self) -> Tuple[Tuple[OPC, ...], Tuple[bool, ...]]:
        """The state without its clock."""
        return (self.pcs, self.resources)

    def __repr__(self) -> str:
        pcs = " ".join(pc.value for pc in self.pcs)
        res = "".join("T" if r else "." for r in self.resources)
        return f"OrderedState[{pcs} | Res={res} | t={self.time}]"


def adjacent_resources(i: int, n: int) -> Tuple[int, int]:
    """Process ``i``'s resources ``(first, second)`` in pickup order.

    Adjacent resources are ``i-1`` (left) and ``i`` (right); the pickup
    order is ascending resource index, so every process but the one
    adjacent to both ``n-1`` and ``0`` grabs its left resource first.
    """
    left, right = (i - 1) % n, i % n
    return (min(left, right), max(left, right))


def ordered_initial_state(n: int) -> OrderedState:
    """All processes in ``R``, all resources free, time 0."""
    return OrderedState(
        pcs=tuple([OPC.R] * n),
        resources=tuple([False] * n),
        time=Fraction(0),
    )


TRY, WAIT1, WAIT2, CRIT, EXIT, DROP1, DROP2, REM = (
    "try", "wait1", "wait2", "crit", "exit", "drop1", "drop2", "rem",
)


def ordered_signature(n: int) -> ActionSignature:
    """Action signature of the baseline ring."""
    external = frozenset(
        (kind, i) for kind in (TRY, CRIT, EXIT, REM) for i in range(n)
    )
    internal = frozenset(
        (kind, i) for kind in (WAIT1, WAIT2, DROP1, DROP2) for i in range(n)
    ) | {TIME_PASSAGE}
    return ActionSignature(external=external, internal=internal)


def ordered_transitions(state: OrderedState) -> List[Transition[OrderedState]]:
    """All enabled steps: one per process, plus unit time passage."""
    steps: List[Transition[OrderedState]] = []
    n = state.n
    for i in range(n):
        pc = state.pcs[i]
        first, second = adjacent_resources(i, n)
        if pc is OPC.R:
            steps.append(
                Transition.deterministic(state, (TRY, i), state.with_pc(i, OPC.W1))
            )
        elif pc is OPC.W1:
            if state.resources[first]:
                after = state  # busy-wait
            else:
                after = state.with_resource(first, True).with_pc(i, OPC.W2)
            steps.append(Transition.deterministic(state, (WAIT1, i), after))
        elif pc is OPC.W2:
            if state.resources[second]:
                after = state  # busy-wait, holding the first resource
            else:
                after = state.with_resource(second, True).with_pc(i, OPC.P)
            steps.append(Transition.deterministic(state, (WAIT2, i), after))
        elif pc is OPC.P:
            steps.append(
                Transition.deterministic(state, (CRIT, i), state.with_pc(i, OPC.C))
            )
        elif pc is OPC.C:
            steps.append(
                Transition.deterministic(state, (EXIT, i), state.with_pc(i, OPC.E1))
            )
        elif pc is OPC.E1:
            after = state.with_resource(first, False).with_pc(i, OPC.E2)
            steps.append(Transition.deterministic(state, (DROP1, i), after))
        elif pc is OPC.E2:
            after = state.with_resource(second, False).with_pc(i, OPC.ER)
            steps.append(Transition.deterministic(state, (DROP2, i), after))
        elif pc is OPC.ER:
            steps.append(
                Transition.deterministic(state, (REM, i), state.with_pc(i, OPC.R))
            )
        else:  # pragma: no cover - OPC is exhaustive
            raise AutomatonError(f"unknown program counter {pc!r}")
    steps.append(
        Transition.deterministic(state, TIME_PASSAGE, state.advanced(Fraction(1)))
    )
    return steps


def ordered_automaton(
    n: int, start: Optional[OrderedState] = None
) -> FunctionalAutomaton[OrderedState]:
    """The ordered-philosophers automaton for a ring of ``n`` processes."""
    if n < 2:
        raise AutomatonError("the ring needs at least two processes")
    if start is None:
        start = ordered_initial_state(n)
    if start.n != n:
        raise AutomatonError(f"start state has {start.n} processes, expected {n}")
    return FunctionalAutomaton(
        start_states=(start,),
        signature=ordered_signature(n),
        transition_fn=ordered_transitions,
    )


def ordered_time_of(state: OrderedState) -> Fraction:
    """The clock of a baseline state."""
    return state.time


class OrderedProcessView(ProcessView[OrderedState]):
    """Process decomposition for Unit-Time scheduling of the baseline."""

    def __init__(self, n: int):
        if n < 2:
            raise AutomatonError("the ring needs at least two processes")
        self._processes = tuple(range(n))

    @property
    def processes(self) -> Tuple[int, ...]:
        return self._processes

    def ready(self, state: OrderedState) -> FrozenSet[int]:
        return frozenset(
            i
            for i in self._processes
            if state.pcs[i] not in (OPC.R, OPC.C)
        )

    def process_of(self, action: Action) -> Optional[int]:
        if action == TIME_PASSAGE:
            return None
        _, index = action
        return index

    def time_of(self, state: OrderedState) -> Fraction:
        return state.time
