"""Arrow-statement claims for Ben-Or consensus.

A hand-derived progress statement in the paper's style, validated
empirically by the benchmarks:

    INIT --(4r+2)-->_{2^{-n}} DECIDED    for r = 2 rounds,

justified exactly as Section 6.2 justifies its leaves: under Unit-Time
scheduling a Ben-Or round completes within 4 time units (one unit per
phase: everyone reports, everyone collects — at least ``n - f`` reports
are then on the board — everyone proposes, everyone resolves).  In the
worst adversarial round nobody decides, and each process either adopts
the unique proposable value or flips; with probability at least
``2^{-n}`` all estimates agree afterwards, and a unanimous round
decides deterministically.  The extra 2 time units absorb crash-induced
stutter.

Expected-decision-time bound via the same retry recursion as the paper:
success probability ``2^{-n}`` per 2-round window of length 8 gives
``E <= 8 * 2^n + 2`` — wildly loose for the same reason the paper's 63
is loose, and the benchmarks show measured means of a few units.
"""

from __future__ import annotations

from fractions import Fraction

from repro.algorithms.benor.automaton import (
    BenOrState,
    Phase,
    all_live_decided,
    some_decided,
)
from repro.errors import ProofError
from repro.proofs.expected_time import RetryBranch, RetryRecursion
from repro.proofs.statements import ArrowStatement, StateClass

#: The schema name (same Unit-Time notion as the other case studies).
BENOR_SCHEMA = "Unit-Time"


def at_protocol_start(state: BenOrState) -> bool:
    """Every process is at the top of round 1 with an empty board."""
    return not state.messages and all(
        p.phase is Phase.SEND1 and p.round == 1 and not p.crashed
        and p.decided is None
        for p in state.processes
    )


#: ``INIT``: the protocol has not begun.
INIT_CLASS = StateClass("Init", at_protocol_start)
#: ``Decided``: some process has decided.
DECIDED_CLASS = StateClass("Decided", some_decided)
#: ``AllDecided``: every live process has decided.
ALL_DECIDED_CLASS = StateClass("AllDecided", all_live_decided)


def benor_progress_statement(n: int) -> ArrowStatement:
    """``INIT --10-->_{2^{-n}} DECIDED`` (two rounds plus slack)."""
    if n < 2:
        raise ProofError("consensus needs at least two processes")
    return ArrowStatement(
        source=INIT_CLASS,
        target=DECIDED_CLASS,
        time_bound=4 * 2 + 2,
        probability=Fraction(1, 2**n),
        schema_name=BENOR_SCHEMA,
    )


def benor_expected_time_bound(n: int) -> Fraction:
    """The retry-recursion bound on expected time to a first decision."""
    statement = benor_progress_statement(n)
    recursion = RetryRecursion(
        [
            RetryBranch.of(
                statement.probability, statement.time_bound, retries=False
            ),
            RetryBranch.of(
                1 - statement.probability, statement.time_bound,
                retries=True,
            ),
        ]
    )
    return recursion.solve()
