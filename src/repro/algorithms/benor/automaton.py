"""Ben-Or randomized binary consensus, in the probabilistic-automaton model.

A third case study for the framework (Section 7: "it is desirable that
the general model and this technique be used for the analysis of other
algorithms").  Ben-Or's algorithm is the canonical randomized
distributed algorithm: ``n`` processes with binary inputs reach
agreement despite up to ``f < n/2`` crash faults, using local coin
flips to escape the adversary.

Model.  Message passing is represented by a shared, monotonically
growing message board (a broadcast network with adversary-controlled
asynchrony: a process *reads* the board only when the adversary
schedules its collect step, so delivery order and interleaving are
fully adversarial).  Crashes are adversary-controlled optional actions,
capped at ``f``.  Each round has two phases:

1. *Report*: broadcast ``(1, r, v_i)``; wait for ``n - f`` round-``r``
   reports; if more than ``n/2`` carry the same value ``w``, propose
   ``w``, else propose ``?``.
2. *Proposal*: broadcast ``(2, r, proposal)``; wait for ``n - f``
   round-``r`` proposals; if some value ``w`` appears at least
   ``f + 1`` times, *decide* ``w``; else if ``w`` appears at all, adopt
   ``v_i := w``; else flip a fair coin for ``v_i``.  Advance to round
   ``r + 1`` (decided processes keep participating with their decided
   value, as in the original algorithm).

Collect steps that find too few messages are busy-waiting no-ops
(state-preserving steps, like the Lehmann-Rabin ``wait``), so Unit-Time
scheduling applies unchanged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from typing import (
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.adversary.unit_time import ProcessView
from repro.automaton.automaton import FunctionalAutomaton
from repro.automaton.signature import TIME_PASSAGE, Action, ActionSignature
from repro.automaton.transition import Transition
from repro.errors import AutomatonError
from repro.probability.space import FiniteDistribution


class Phase(enum.Enum):
    """The four program points of a Ben-Or round."""

    SEND1 = "send1"
    COLLECT1 = "collect1"
    SEND2 = "send2"
    COLLECT2 = "collect2"

    def __repr__(self) -> str:
        return self.value


#: A message: (phase, round, sender, value); proposal value None is '?'.
Message = Tuple[int, int, int, Optional[int]]

SEND1, COLLECT1, SEND2, COLLECT2, FLIP, CRASH = (
    "send1", "collect1", "send2", "collect2", "flip", "crash",
)


@dataclass(frozen=True)
class BenOrProcess:
    """The local state of one Ben-Or process."""

    phase: Phase
    round: int
    value: int
    proposal: Optional[int]
    decided: Optional[int]
    crashed: bool

    @classmethod
    def initial(cls, value: int) -> "BenOrProcess":
        """A fresh process with the given binary input."""
        if value not in (0, 1):
            raise AutomatonError(f"inputs are binary, got {value!r}")
        return cls(
            phase=Phase.SEND1, round=1, value=value, proposal=None,
            decided=None, crashed=False,
        )


@dataclass(frozen=True)
class BenOrState:
    """Global state: processes, the message board, and the clock."""

    processes: Tuple[BenOrProcess, ...]
    messages: FrozenSet[Message]
    time: Fraction

    @property
    def n(self) -> int:
        """The number of processes."""
        return len(self.processes)

    def with_process(self, i: int, process: BenOrProcess) -> "BenOrState":
        """Copy with process ``i`` replaced."""
        return BenOrState(
            self.processes[:i] + (process,) + self.processes[i + 1 :],
            self.messages,
            self.time,
        )

    def with_message(self, message: Message) -> "BenOrState":
        """Copy with one more message on the board."""
        return BenOrState(
            self.processes, self.messages | {message}, self.time
        )

    def advanced(self, amount: Fraction) -> "BenOrState":
        """Copy with the clock advanced."""
        return BenOrState(self.processes, self.messages, self.time + amount)

    def untimed(self) -> Tuple:
        """The state without its clock."""
        return (self.processes, self.messages)

    def round_messages(self, phase: int, round_number: int) -> List[Message]:
        """All board messages of the given phase and round."""
        return [
            message
            for message in self.messages
            if message[0] == phase and message[1] == round_number
        ]

    def crashed_count(self) -> int:
        """How many processes have crashed so far."""
        return sum(1 for p in self.processes if p.crashed)

    def __repr__(self) -> str:
        parts = []
        for p in self.processes:
            tag = "X" if p.crashed else (
                f"D{p.decided}" if p.decided is not None else str(p.value)
            )
            parts.append(f"{tag}@r{p.round}{p.phase.value[-1]}{p.phase.value[0]}")
        return f"BenOrState[{' '.join(parts)} | msgs={len(self.messages)} | t={self.time}]"


def benor_initial_state(inputs: Sequence[int]) -> BenOrState:
    """The start state for the given binary input vector."""
    if len(inputs) < 2:
        raise AutomatonError("consensus needs at least two processes")
    return BenOrState(
        processes=tuple(BenOrProcess.initial(v) for v in inputs),
        messages=frozenset(),
        time=Fraction(0),
    )


def benor_signature(n: int) -> ActionSignature:
    """Action signature: decisions are visible through ``collect2``."""
    external = frozenset((CRASH, i) for i in range(n))
    internal = frozenset(
        (kind, i)
        for kind in (SEND1, COLLECT1, SEND2, COLLECT2, FLIP)
        for i in range(n)
    ) | {TIME_PASSAGE}
    return ActionSignature(external=external, internal=internal)


def _majority_value(messages: List[Message], n: int) -> Optional[int]:
    """The value reported by more than ``n/2`` messages, if any."""
    counts: Dict[int, int] = {}
    for _, _, _, value in messages:
        if value is not None:
            counts[value] = counts.get(value, 0) + 1
    for value, count in counts.items():
        if count * 2 > n:
            return value
    return None


def _proposal_counts(messages: List[Message]) -> Dict[int, int]:
    """Non-'?' proposal counts by value."""
    counts: Dict[int, int] = {}
    for _, _, _, value in messages:
        if value is not None:
            counts[value] = counts.get(value, 0) + 1
    return counts


def benor_process_transitions(
    state: BenOrState, i: int, f: int
) -> List[Transition[BenOrState]]:
    """The steps of process ``i`` enabled in ``state``."""
    local = state.processes[i]
    n = state.n
    steps: List[Transition[BenOrState]] = []
    if local.crashed:
        return steps

    # The adversary may crash any live process while budget remains.
    if state.crashed_count() < f:
        steps.append(
            Transition.deterministic(
                state,
                (CRASH, i),
                state.with_process(
                    i,
                    BenOrProcess(
                        local.phase, local.round, local.value,
                        local.proposal, local.decided, crashed=True,
                    ),
                ),
            )
        )

    if local.phase is Phase.SEND1:
        after = state.with_message((1, local.round, i, local.value))
        after = after.with_process(
            i,
            BenOrProcess(
                Phase.COLLECT1, local.round, local.value, None,
                local.decided, False,
            ),
        )
        steps.append(Transition.deterministic(state, (SEND1, i), after))
    elif local.phase is Phase.COLLECT1:
        reports = state.round_messages(1, local.round)
        if len(reports) >= n - f:
            proposal = _majority_value(reports, n)
            after = state.with_process(
                i,
                BenOrProcess(
                    Phase.SEND2, local.round, local.value, proposal,
                    local.decided, False,
                ),
            )
        else:
            after = state  # busy-wait for more reports
        steps.append(Transition.deterministic(state, (COLLECT1, i), after))
    elif local.phase is Phase.SEND2:
        after = state.with_message((2, local.round, i, local.proposal))
        after = after.with_process(
            i,
            BenOrProcess(
                Phase.COLLECT2, local.round, local.value, local.proposal,
                local.decided, False,
            ),
        )
        steps.append(Transition.deterministic(state, (SEND2, i), after))
    elif local.phase is Phase.COLLECT2:
        proposals = state.round_messages(2, local.round)
        if len(proposals) < n - f:
            steps.append(
                Transition.deterministic(state, (COLLECT2, i), state)
            )
        else:
            counts = _proposal_counts(proposals)
            next_round = local.round + 1
            if counts and max(counts.values()) >= f + 1:
                winner = max(counts, key=lambda v: counts[v])
                decided = local.decided if local.decided is not None else winner
                after = state.with_process(
                    i,
                    BenOrProcess(
                        Phase.SEND1, next_round, winner, None, decided,
                        False,
                    ),
                )
                steps.append(
                    Transition.deterministic(state, (COLLECT2, i), after)
                )
            elif counts:
                adopted = min(counts)  # at most one value is proposable
                after = state.with_process(
                    i,
                    BenOrProcess(
                        Phase.SEND1, next_round, adopted, None,
                        local.decided, False,
                    ),
                )
                steps.append(
                    Transition.deterministic(state, (COLLECT2, i), after)
                )
            else:
                # No value proposed: flip a fair coin for the estimate.
                heads = state.with_process(
                    i,
                    BenOrProcess(
                        Phase.SEND1, next_round, 1, None, local.decided,
                        False,
                    ),
                )
                tails = state.with_process(
                    i,
                    BenOrProcess(
                        Phase.SEND1, next_round, 0, None, local.decided,
                        False,
                    ),
                )
                steps.append(
                    Transition(
                        state,
                        (FLIP, i),
                        FiniteDistribution.bernoulli(heads, tails),
                    )
                )
    return steps


def benor_automaton(
    inputs: Sequence[int], f: Optional[int] = None
) -> FunctionalAutomaton[BenOrState]:
    """The Ben-Or automaton for the given inputs and crash budget.

    ``f`` defaults to the maximum tolerated, ``ceil(n/2) - 1`` (the
    algorithm requires ``n > 2f``).
    """
    n = len(inputs)
    if f is None:
        f = (n - 1) // 2
    if not 0 <= f or n <= 2 * f:
        raise AutomatonError(f"Ben-Or requires n > 2f; got n={n}, f={f}")
    start = benor_initial_state(inputs)
    crash_budget = f

    def transitions(state: BenOrState) -> List[Transition[BenOrState]]:
        steps: List[Transition[BenOrState]] = []
        for i in range(state.n):
            steps.extend(benor_process_transitions(state, i, crash_budget))
        steps.append(
            Transition.deterministic(
                state, TIME_PASSAGE, state.advanced(Fraction(1))
            )
        )
        return steps

    return FunctionalAutomaton(
        start_states=(start,),
        signature=benor_signature(n),
        transition_fn=transitions,
    )


def benor_time_of(state: BenOrState) -> Fraction:
    """The clock of a Ben-Or state."""
    return state.time


class BenOrProcessView(ProcessView[BenOrState]):
    """Process decomposition for Unit-Time scheduling.

    Live processes are always obligated (they always enable a protocol
    step — sends, collects including busy-waits, or coin flips).
    Crashes are user-style actions and impose no obligation.
    """

    def __init__(self, n: int):
        if n < 2:
            raise AutomatonError("consensus needs at least two processes")
        self._processes = tuple(range(n))

    @property
    def processes(self) -> Tuple[int, ...]:
        return self._processes

    def ready(self, state: BenOrState) -> FrozenSet[int]:
        return frozenset(
            i for i in self._processes if not state.processes[i].crashed
        )

    def process_of(self, action: Action) -> Optional[int]:
        if action == TIME_PASSAGE:
            return None
        kind, index = action
        if kind == CRASH:
            return None  # crashes are the adversary's, not obligations
        return index

    def time_of(self, state: BenOrState) -> Fraction:
        return state.time


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------


def some_decided(state: BenOrState) -> bool:
    """Some live-or-crashed process has decided."""
    return any(p.decided is not None for p in state.processes)


def all_live_decided(state: BenOrState) -> bool:
    """Every non-crashed process has decided."""
    return all(
        p.decided is not None for p in state.processes if not p.crashed
    )


def agreement_holds(state: BenOrState) -> bool:
    """No two processes have decided differently."""
    decided = {
        p.decided for p in state.processes if p.decided is not None
    }
    return len(decided) <= 1


def validity_holds(state: BenOrState, inputs: Sequence[int]) -> bool:
    """Every decision equals some process's input."""
    allowed = set(inputs)
    return all(
        p.decided in allowed
        for p in state.processes
        if p.decided is not None
    )
