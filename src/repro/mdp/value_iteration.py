"""Step-bounded extremal reachability by backward induction.

For a finite-state probabilistic automaton viewed as an MDP (each
enabled step is an adversary choice), the probability of reaching a
target within ``k`` steps under the worst (or best) non-halting
adversary satisfies the Bellman recursion::

    V_0(s)   = [s in target]
    V_k(s)   = 1                                  if s in target
             = opt_{steps(s)} sum_s' P(s') V_{k-1}(s')   otherwise

with ``opt`` being min or max.  Halting adversaries are excluded (a
halting adversary trivially drives every reachability probability to 0,
so minimisation over them is vacuous); this matches schemas like
Unit-Time that force progress.

Exact rational arithmetic throughout; intended for small explicit
automata (tests, the two-coin Example 4.1 model, ablations).  The
Lehmann-Rabin exact checker uses the round-synchronous recursion in
:mod:`repro.mdp.bounded` instead, which accounts for timing.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, Hashable, Optional, Tuple, TypeVar

from repro import obs
from repro.automaton.automaton import ProbabilisticAutomaton
from repro.errors import VerificationError
from repro.statespace.compile import CompiledSpace

State = TypeVar("State", bound=Hashable)

_ZERO = Fraction(0)
_ONE = Fraction(1)


def bounded_reachability(
    automaton: ProbabilisticAutomaton[State],
    target: Callable[[State], bool],
    start: State,
    steps: int,
    minimise: bool = True,
    *,
    space: Optional[CompiledSpace] = None,
) -> Fraction:
    """The extremal probability of hitting ``target`` within ``steps``.

    ``minimise=True`` gives the worst case over non-halting adversaries
    (the side relevant to arrow statements); ``False`` the best case.
    Terminal states without enabled steps contribute 0 unless they are
    in the target.

    The induction runs on an explicit stack, so ``steps`` can exceed the
    interpreter's recursion limit.  When a :class:`CompiledSpace`
    covering ``start``'s reachable set is supplied, memo keys are its
    dense interned ids instead of rich state objects — cheaper to hash
    and shared with every other consumer of the same space.
    """
    if steps < 0:
        raise VerificationError("steps must be nonnegative")
    select = min if minimise else max
    if space is not None:
        key_of: Callable[[State], Hashable] = space.state_id
    else:
        key_of = lambda state: state  # noqa: E731 - local key adapter
    memo: Dict[Tuple[Hashable, int], Fraction] = {}

    stack = [(start, steps)]
    while stack:
        state, remaining = stack[-1]
        key = (key_of(state), remaining)
        if key in memo:
            stack.pop()
            continue
        if target(state):
            memo[key] = _ONE
            stack.pop()
            continue
        if remaining == 0:
            memo[key] = _ZERO
            stack.pop()
            continue
        enabled = automaton.transitions(state)
        if not enabled:
            memo[key] = _ZERO
            stack.pop()
            continue
        missing = [
            (successor, remaining - 1)
            for step in enabled
            for successor in step.target.support
            if (key_of(successor), remaining - 1) not in memo
        ]
        if missing:
            stack.extend(missing)
            continue
        memo[key] = select(
            sum(
                (
                    weight * memo[(key_of(successor), remaining - 1)]
                    for successor, weight in step.target.items()
                ),
                _ZERO,
            )
            for step in enabled
        )
        stack.pop()

    result = memo[(key_of(start), steps)]
    if obs.enabled():
        obs.incr("mdp.bounded.calls")
        obs.incr("mdp.bounded.states_evaluated", len(memo))
    return result


def unbounded_reachability(
    automaton: ProbabilisticAutomaton[State],
    target: Callable[[State], bool],
    start: State,
    minimise: bool = True,
    iterations: int = 10_000,
    tolerance: float = 1e-12,
) -> float:
    """Extremal unbounded reachability by value iteration (floats).

    Iterates the Bellman operator until the sup-norm change falls below
    ``tolerance``.  Value iteration converges from below for this
    monotone operator, so the returned value is a sound lower
    approximation for both optimisation senses.  Requires the reachable
    state space to be finite; explored on demand.
    """
    from repro.automaton.reachability import reachable_states

    with obs.span(
        "mdp.value_iteration", minimise=minimise, tolerance=tolerance
    ) as span:
        states = reachable_states(automaton, max_states=1_000_000)
        if start not in states:
            raise VerificationError(f"start state {start!r} is not reachable")
        obs.gauge("mdp.value_iteration.states", len(states))
        select = min if minimise else max
        values: Dict[State, float] = {
            s: (1.0 if target(s) else 0.0) for s in states
        }
        sweeps = 0
        for _ in range(iterations):
            delta = 0.0
            for state in states:
                if target(state):
                    continue
                enabled = automaton.transitions(state)
                if not enabled:
                    continue
                updated = select(
                    sum(
                        float(weight) * values[successor]
                        for successor, weight in step.target.items()
                    )
                    for step in enabled
                )
                delta = max(delta, abs(updated - values[state]))
                values[state] = updated
            sweeps += 1
            if obs.enabled():
                obs.incr("mdp.value_iteration.sweeps")
                obs.incr("mdp.value_iteration.states_touched", len(states))
                obs.observe("mdp.value_iteration.residual", delta)
            if delta < tolerance:
                break
        span.annotate(sweeps=sweeps, value=values[start])
    return values[start]
