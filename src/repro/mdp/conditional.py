"""Exact checking of conditional claims ``first(...) ∧ ... ⟹ reach``.

The appendix lemmas (A.4–A.10) have the shape: *from a state satisfying
H, if* ``first(a_1, U_1)`` *and ... and* ``first(a_k, U_k)`` *hold, then
a conclusion state is reached within time t*.  Equivalently: the event

    first(a_1,U_1) ∧ ... ∧ first(a_k,U_k) ∧ ¬ reach-within-t

has probability zero under every adversary of the schema.

:func:`max_counterexample_probability_rounds` computes, by backward
induction over every strategy of the round-synchronous Unit-Time
subclass, the *maximum* probability an adversary can give that
counterexample event — with the adversary-favorable convention that a
watched action still unfired at the horizon counts as "first(...) holds
vacuously".  The returned value is therefore an upper bound on the true
counterexample probability over the subclass; a lemma is verified
(for the subclass) exactly when it returns 0.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, FrozenSet, Hashable, Mapping, Tuple, TypeVar

from repro.adversary.unit_time import ProcessView
from repro.automaton.automaton import ProbabilisticAutomaton
from repro.automaton.signature import TIME_PASSAGE, Action
from repro.errors import VerificationError

State = TypeVar("State", bound=Hashable)


def max_counterexample_probability_rounds(
    automaton: ProbabilisticAutomaton[State],
    view: ProcessView[State],
    watched: Mapping[Action, Callable[[State], bool]],
    conclusion: Callable[[State], bool],
    start: State,
    rounds: int,
    strip_time: Callable[[State], Hashable],
    max_memo: int = 5_000_000,
) -> Fraction:
    """Worst-case probability of ``∧ first(a,U_a) ∧ ¬reach`` (see module).

    ``watched`` maps each constrained action to the state set its first
    occurrence must land in.  The adversary maximises; the watched
    constraints resolve at first occurrence (a miss makes the execution
    leave the conditioning event, contributing zero); the conclusion is
    checked at every state; the horizon end counts as a counterexample
    when the conclusion was never reached (the adversary may stall
    unfired coins indefinitely only at the price of Unit-Time
    obligations, which this bound conservatively ignores).
    """
    if rounds < 0:
        raise VerificationError("rounds must be nonnegative")
    memo: Dict[Tuple[Hashable, FrozenSet, FrozenSet, int], Fraction] = {}
    all_watched = frozenset(watched)

    def value(
        state: State,
        stepped: FrozenSet,
        pending_watch: FrozenSet,
        remaining: int,
    ) -> Fraction:
        if conclusion(state):
            return Fraction(0)
        if remaining == 0:
            return Fraction(1)
        key = (strip_time(state), stepped, pending_watch, remaining)
        cached = memo.get(key)
        if cached is not None:
            return cached
        if len(memo) >= max_memo:
            raise VerificationError(
                f"conditional recursion exceeded {max_memo} memo entries"
            )

        pending = view.ready(state) - stepped
        outcomes = []
        for step in automaton.transitions(state):
            if step.action == TIME_PASSAGE:
                continue
            process = view.process_of(step.action)
            if process is None or process in stepped:
                continue
            new_stepped = stepped | {process}
            if step.action in pending_watch:
                constraint = watched[step.action]
                new_watch = pending_watch - {step.action}
                total = Fraction(0)
                for successor, weight in step.target.items():
                    if not constraint(successor):
                        continue  # first(...) violated: leaves the event
                    total += weight * value(
                        successor, new_stepped, new_watch, remaining
                    )
                outcomes.append(total)
            else:
                outcomes.append(
                    sum(
                        (
                            weight
                            * value(
                                successor, new_stepped, pending_watch,
                                remaining,
                            )
                            for successor, weight in step.target.items()
                        ),
                        Fraction(0),
                    )
                )
        if not pending:
            outcomes.append(
                value(state, frozenset(), pending_watch, remaining - 1)
            )
        result = max(outcomes) if outcomes else Fraction(1)
        memo[key] = result
        return result

    return value(start, frozenset(), all_watched, rounds)
