"""Exact worst-case probabilities over round-synchronous adversaries.

The Unit-Time schema is infinite; exact minimisation over all of it is
out of reach.  The *round-synchronous* subclass is finitely branching
and Markov, so the minimum success probability over it is computable by
backward induction:

* a round lasts one time unit;
* within a round, the adversary repeatedly picks any process that has
  not stepped yet this round (obligated or user-controlled) and fires
  one of its enabled steps — full knowledge of all outcomes so far;
* the round may close (time advances) only when every *obligated*
  process has stepped.

Every strategy in the subclass satisfies the Unit-Time obligation, so
the computed minimum is an upper bound on the schema-wide minimum — if
it already meets the paper's ``p``, the subclass cannot refute the
statement, and if it falls below ``p`` we have a genuine Unit-Time
counterexample.

The recursion memoises on ``(untimed state, stepped set, rounds left)``:
optimal play depends on history only through that tuple, because the
dynamics are time-invariant and coin outcomes are recorded in the state.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, FrozenSet, Hashable, Optional, Tuple, TypeVar

from repro import obs
from repro.adversary.unit_time import ProcessView
from repro.automaton.automaton import ProbabilisticAutomaton
from repro.automaton.signature import TIME_PASSAGE
from repro.errors import VerificationError
from repro.statespace.compile import CompiledSpace

State = TypeVar("State", bound=Hashable)


def min_reach_probability_rounds(
    automaton: ProbabilisticAutomaton[State],
    view: ProcessView[State],
    target: Callable[[State], bool],
    start: State,
    rounds: int,
    strip_time: Callable[[State], Hashable],
    minimise: bool = True,
    max_memo: int = 5_000_000,
    *,
    space: Optional[CompiledSpace] = None,
    memo: Optional[Dict] = None,
) -> Fraction:
    """Extremal probability of reaching ``target`` within ``rounds``.

    ``strip_time`` must map a state to a hashable key invariant under
    time passage (for Lehmann-Rabin:
    :meth:`~repro.algorithms.lehmann_rabin.state.LRState.untimed`); the
    recursion relies on the dynamics depending only on that key.

    ``minimise=True`` computes the adversary's best spoiling play (the
    quantity arrow statements lower-bound); ``False`` the most helpful
    scheduler, an upper envelope used in ablations.

    When a :class:`CompiledSpace` whose quotient key equals
    ``strip_time`` is supplied, memo entries key on its dense interned
    ids instead of rich keys.  ``memo`` lets callers share one table
    across many starts of the *same* (target, minimise) problem — the
    exhaustive sweeps reuse almost every subproblem between
    neighbouring start states.
    """
    if rounds < 0:
        raise VerificationError("rounds must be nonnegative")
    select = min if minimise else max
    if space is not None:
        strip: Callable[[State], Hashable] = space.state_id
    else:
        strip = strip_time
    if memo is None:
        memo = {}

    def value(state: State, stepped: FrozenSet, remaining: int) -> Fraction:
        if target(state):
            return Fraction(1)
        if remaining == 0:
            return Fraction(0)
        key = (strip(state), stepped, remaining)
        cached = memo.get(key)
        if cached is not None:
            return cached
        if len(memo) >= max_memo:
            raise VerificationError(
                f"round-synchronous recursion exceeded {max_memo} memo entries"
            )

        pending = view.ready(state) - stepped
        candidates = []
        for step in automaton.transitions(state):
            if step.action == TIME_PASSAGE:
                continue
            process = view.process_of(step.action)
            if process is None or process in stepped:
                continue
            candidates.append((process, step))

        outcomes = []
        for process, step in candidates:
            new_stepped = stepped | {process}
            outcomes.append(
                sum(
                    (
                        weight * value(successor, new_stepped, remaining)
                        for successor, weight in step.target.items()
                    ),
                    Fraction(0),
                )
            )
        if not pending:
            # The round may close: time advances one unit, obligations
            # reset.  The state's own time component is irrelevant to
            # the dynamics, so we reuse the state unchanged.
            outcomes.append(value(state, frozenset(), remaining - 1))
        if not outcomes:
            # No schedulable process and obligations pending: cannot
            # happen for well-formed views (pending processes have
            # enabled steps); treat defensively as failure.
            result = Fraction(0)
        else:
            result = select(outcomes)
        memo[key] = result
        return result

    result = value(start, frozenset(), rounds)
    if obs.enabled():
        obs.incr("mdp.bounded_rounds.calls")
        obs.incr("mdp.bounded_rounds.states_evaluated", len(memo))
    return result


def min_reach_over_starts(
    automaton: ProbabilisticAutomaton[State],
    view: ProcessView[State],
    target: Callable[[State], bool],
    starts,
    rounds: int,
    strip_time: Callable[[State], Hashable],
    minimise: bool = True,
) -> Tuple[Fraction, Optional[State]]:
    """The worst start state of a family, with its exact probability.

    Returns ``(probability, witness_state)``; the witness attains the
    minimum (or maximum, for ``minimise=False``).
    """
    starts = list(starts)
    if not starts:
        raise VerificationError("no start states supplied")
    best: Optional[Tuple[Fraction, State]] = None
    for start in starts:
        probability = min_reach_probability_rounds(
            automaton, view, target, start, rounds, strip_time, minimise
        )
        if best is None:
            best = (probability, start)
        elif minimise and probability < best[0]:
            best = (probability, start)
        elif not minimise and probability > best[0]:
            best = (probability, start)
    return best  # type: ignore[return-value]
