"""Exact extremal expected hitting times over round-synchronous play.

The paper derives 63 as an upper bound on the expected time for some
process to enter its critical region, for every Unit-Time adversary.
For the round-synchronous subclass we can do better than bounding: the
*exact* worst-case expected time satisfies the optimality equation

    V(s, stepped) = 0                                   if s in target
    V(s, stepped) = opt over moves:
        step of an unstepped process ->  sum_s' P(s') V(s', stepped+p)
        close the round (no pending) ->  1 + V(s, {})

and is computed here by value iteration from below over the reachable
``(untimed state, stepped set)`` space.  Convergence is guaranteed when
the target is reached with probability 1 under every strategy (which
for Lehmann-Rabin is the Zuck-Pnueli progress property the paper
refines); divergence is detected and reported instead of looping.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    List,
    Set,
    Tuple,
    TypeVar,
)

from repro import obs
from repro.adversary.unit_time import ProcessView
from repro.automaton.automaton import ProbabilisticAutomaton
from repro.automaton.signature import TIME_PASSAGE
from repro.errors import VerificationError

State = TypeVar("State", bound=Hashable)

Node = Tuple[Hashable, FrozenSet]


def extremal_expected_time_rounds(
    automaton: ProbabilisticAutomaton[State],
    view: ProcessView[State],
    target: Callable[[State], bool],
    start: State,
    strip_time: Callable[[State], Hashable],
    maximise: bool = True,
    tolerance: float = 1e-9,
    max_iterations: int = 100_000,
    max_nodes: int = 2_000_000,
    divergence_bound: float = 1e7,
) -> float:
    """The exact extremal expected time to ``target`` (in rounds).

    ``maximise=True`` gives the slowest scheduler of the
    round-synchronous Unit-Time subclass (the quantity the paper's 63
    upper-bounds); ``False`` the fastest.  Floats: value iteration
    converges monotonically from below, so the result is accurate to
    ``tolerance`` when it converges and raises
    :class:`VerificationError` past ``divergence_bound`` (a scheduler
    can then starve the target, i.e. progress fails).
    """
    select = max if maximise else min
    with obs.span("mdp.expected_time", maximise=maximise) as obs_span:
        return _solve(
            automaton, view, target, start, strip_time, select, tolerance,
            max_iterations, max_nodes, divergence_bound, obs_span,
        )


def _solve(
    automaton: ProbabilisticAutomaton[State],
    view: ProcessView[State],
    target: Callable[[State], bool],
    start: State,
    strip_time: Callable[[State], Hashable],
    select: Callable,
    tolerance: float,
    max_iterations: int,
    max_nodes: int,
    divergence_bound: float,
    obs_span,
) -> float:
    # ------------------------------------------------------------------
    # Enumerate the reachable (untimed state, stepped) space and record
    # each node's move structure once; value iteration then just sweeps.
    # ------------------------------------------------------------------
    representative: Dict[Hashable, State] = {}

    def node_of(state: State, stepped: FrozenSet) -> Node:
        key = strip_time(state)
        representative.setdefault(key, state)
        return (key, stepped)

    start_node = node_of(start, frozenset())
    moves: Dict[Node, List[object]] = {}
    is_target: Dict[Node, bool] = {}
    frontier = deque([start_node])
    seen: Set[Node] = {start_node}
    while frontier:
        node = frontier.popleft()
        key, stepped = node
        state = representative[key]
        if target(state):
            is_target[node] = True
            moves[node] = []
            continue
        is_target[node] = False
        node_moves: List[object] = []
        pending = view.ready(state) - stepped
        for step in automaton.transitions(state):
            if step.action == TIME_PASSAGE:
                continue
            process = view.process_of(step.action)
            if process is None or process in stepped:
                continue
            new_stepped = stepped | {process}
            outcome = []
            for successor, weight in step.target.items():
                child = node_of(successor, new_stepped)
                outcome.append((child, float(weight)))
                if child not in seen:
                    seen.add(child)
                    if len(seen) > max_nodes:
                        raise VerificationError(
                            f"expected-time exploration exceeded "
                            f"{max_nodes} nodes"
                        )
                    frontier.append(child)
            node_moves.append(("step", outcome))
        if not pending:
            child = (key, frozenset())
            node_moves.append(("advance", child))
            if child not in seen:
                seen.add(child)
                frontier.append(child)
        if not node_moves:
            raise VerificationError(
                f"dead node without moves at {state!r} / {stepped!r}"
            )
        moves[node] = node_moves

    # ------------------------------------------------------------------
    # Value iteration from below.
    # ------------------------------------------------------------------
    obs.gauge("mdp.expected_time.nodes", len(moves))
    values: Dict[Node, float] = {node: 0.0 for node in moves}
    sweeps = 0
    for _ in range(max_iterations):
        delta = 0.0
        for node, node_moves in moves.items():
            if is_target[node]:
                continue
            candidates = []
            for kind, payload in node_moves:
                if kind == "step":
                    candidates.append(
                        sum(w * values[child] for child, w in payload)
                    )
                else:
                    candidates.append(1.0 + values[payload])
            updated = select(candidates)
            delta = max(delta, abs(updated - values[node]))
            values[node] = updated
        sweeps += 1
        if obs.enabled():
            obs.incr("mdp.expected_time.sweeps")
            obs.incr("mdp.expected_time.states_touched", len(moves))
            obs.observe("mdp.expected_time.residual", delta)
        if values[start_node] > divergence_bound:
            raise VerificationError(
                "expected time diverges: some scheduler starves the target"
            )
        if delta < tolerance:
            obs_span.annotate(sweeps=sweeps, value=values[start_node])
            return values[start_node]
    raise VerificationError(
        f"value iteration did not converge in {max_iterations} sweeps"
    )
