"""Exact extremal-probability checking (MDP view of the automaton)."""

from repro.mdp.bounded import min_reach_over_starts, min_reach_probability_rounds
from repro.mdp.conditional import max_counterexample_probability_rounds
from repro.mdp.expected_time import extremal_expected_time_rounds
from repro.mdp.value_iteration import bounded_reachability, unbounded_reachability

__all__ = [
    "bounded_reachability",
    "extremal_expected_time_rounds",
    "max_counterexample_probability_rounds",
    "min_reach_over_starts",
    "min_reach_probability_rounds",
    "unbounded_reachability",
]
