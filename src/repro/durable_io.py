"""Crash-safe file primitives shared by every append-only store.

Four stores in this repository are JSONL files that must survive a
``kill -9`` mid-write: the checkpoint store
(:mod:`repro.parallel.checkpoint`), the run-manifest index
(:mod:`repro.obs.manifest`), the on-disk corpus
(:mod:`repro.corpus.registry`), and the job-service WAL
(:mod:`repro.service.store`).  They all follow the same discipline,
implemented once here:

* **Appends are single writes.**  One record is serialised to one
  ``\\n``-terminated line and written in a single ``write`` call on a
  file opened in append mode, then flushed (and by default fsynced).
  POSIX guarantees ``O_APPEND`` writes are atomic with respect to each
  other, so concurrent appenders from many processes interleave whole
  lines, never splice them.
* **Torn tails are repaired, not fatal.**  A process killed mid-write
  leaves at most one truncated final line with no trailing newline.
  :class:`DurableAppender` terminates such a tail with a ``\\n`` before
  its first append, so later records never merge into the torn one;
  :func:`load_jsonl` drops undecodable lines instead of raising.
* **Whole-file writes are atomic.**  :func:`atomic_write_text` writes
  to a temporary file in the same directory, fsyncs it, and renames it
  over the target — readers see the old bytes or the new bytes, never
  a mixture.

The lint gate (``tools/lint.py``) forbids raw append-mode ``open()``
under ``src/`` outside this module, so every durable append in the
library provably goes through one audited code path.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import IO, List, Optional, Tuple


def _fsync_handle(handle: IO[str]) -> None:
    handle.flush()
    os.fsync(handle.fileno())


def _fsync_dir(path: str) -> None:
    """Fsync the directory holding ``path`` so renames/creates persist.

    Best-effort: some filesystems refuse ``open`` on directories; the
    data fsync already happened, so a refusal only weakens the
    guarantee back to what most applications settle for.
    """
    directory = os.path.dirname(os.path.abspath(path))
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class DurableAppender:
    """An append handle that writes whole fsynced lines.

    Opening is lazy; the first append repairs a torn tail left by a
    previous crash (a final line missing its ``\\n`` gets one, so the
    dead record stays a single undecodable line instead of merging
    with the next append).  Each :meth:`append_line` is one ``write``
    of one terminated line, flushed and (unless ``fsync=False``)
    fsynced before returning — after it returns, the record survives a
    power cut.
    """

    def __init__(self, path: str, *, fsync: bool = True):
        self.path = str(path)
        self.fsync = fsync
        self._handle: Optional[IO[str]] = None

    def _open(self) -> IO[str]:
        if self._handle is None:
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)
            repair = b""
            try:
                with open(self.path, "rb") as probe:
                    probe.seek(0, os.SEEK_END)
                    if probe.tell() > 0:
                        probe.seek(-1, os.SEEK_END)
                        if probe.read(1) != b"\n":
                            repair = b"\n"
            except FileNotFoundError:
                pass
            handle = open(self.path, "a", encoding="utf-8")
            if repair:
                handle.write("\n")
                _fsync_handle(handle)
            self._handle = handle
        return self._handle

    def open(self) -> None:
        """Open now — repairing any torn tail — instead of lazily.

        Appending already opens on demand; call this when the repair
        itself is the point (e.g. before handing the file descriptor's
        position to some other writer).
        """
        self._open()

    def append_line(self, line: str) -> None:
        """Write one record as a single terminated, durable line."""
        handle = self._open()
        handle.write(line + "\n")
        if self.fsync:
            _fsync_handle(handle)
        else:
            handle.flush()

    def append_json(self, record: object) -> None:
        """Serialise ``record`` canonically and append it durably."""
        self.append_line(json.dumps(record, sort_keys=True))

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "DurableAppender":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def append_json_line(path: str, record: object, *, fsync: bool = True) -> None:
    """One-shot durable append of a single JSON record to ``path``."""
    with DurableAppender(path, fsync=fsync) as appender:
        appender.append_json(record)


def atomic_write_text(path: str, text: str) -> None:
    """Replace ``path``'s contents atomically (tmp + fsync + rename)."""
    path = str(path)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            _fsync_handle(handle)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    _fsync_dir(path)


def load_jsonl(
    path: str, *, tolerate: str = "tail"
) -> Tuple[List[Tuple[int, object]], int]:
    """Read a JSONL file, tolerating crash damage.

    Returns ``(records, dropped)`` where ``records`` is a list of
    ``(lineno, decoded_object)`` pairs (1-based line numbers) and
    ``dropped`` counts undecodable lines that were skipped.  Blank
    lines are ignored without counting.  A missing file is empty.

    ``tolerate`` selects how much damage is forgiven:

    * ``"tail"`` — only a genuinely *torn* tail is dropped: an
      undecodable final line that is missing its terminating ``\\n``
      (exactly the damage a ``kill -9`` mid-append leaves, and the
      only damage it can leave).  Any undecodable *complete* line
      raises :class:`ValueError` naming the line — a whole terminated
      line that fails to decode was never a crash artefact.  Use for
      files whose corruption means something is actually wrong.
    * ``"all"`` — every undecodable line is dropped and counted.  Use
      for stores that repair torn tails on reopen, where a dead line
      can end up interior once later appends land after it.

    ``OSError`` from an unreadable file propagates; callers wrap it in
    their own taxonomy error.
    """
    if tolerate not in ("tail", "all"):
        raise ValueError(f"unknown tolerate mode: {tolerate!r}")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except FileNotFoundError:
        return [], 0
    lines = text.splitlines()
    torn_lineno = (
        len(lines) if text and not text.endswith("\n") else 0
    )
    records: List[Tuple[int, object]] = []
    dropped = 0
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            records.append((lineno, json.loads(line)))
        except ValueError as error:
            if tolerate == "all" or lineno == torn_lineno:
                dropped += 1
                continue
            raise ValueError(
                f"{path}:{lineno}: undecodable JSONL record: {error}"
            ) from error
    return records, dropped
