"""Monte-Carlo sampling of executions.

Exact tree exploration is exponential in depth; for the long horizons of
the Lehmann-Rabin experiments we instead sample maximal executions of
``H(M, A, s)`` and estimate event probabilities and time statistics.
Each sample threads an explicit :class:`random.Random`, so experiments
are reproducible from their seeds.

This module is the *tree engine* of the sampling layer: it walks the
live object graph one fragment at a time.  The compiled engine in
:mod:`repro.statespace.engine` mirrors these loops over interned index
tables — draw for draw, metric for metric — so both produce
byte-identical reports; any change to the control flow here must be
reflected there (the cross-engine suite in ``tests/test_statespace.py``
pins the equivalence).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Hashable, Optional, TypeVar

from repro import contracts, obs
from repro.adversary.base import Adversary
from repro.automaton.automaton import ProbabilisticAutomaton
from repro.automaton.execution import ExecutionFragment
from repro.contracts import GuardConfig
from repro.contracts.fuel import fuel_for
from repro.contracts.guards import check_chosen_step
from repro.errors import VerificationError
from repro.events.schema import EventSchema, EventStatus

State = TypeVar("State", bound=Hashable)


@dataclass(frozen=True)
class SampleResult:
    """The outcome of sampling one execution against an event schema.

    ``verdict`` is ``True``/``False`` when the event was decided and
    ``None`` when the step budget ran out first (the caller chooses how
    to count truncations; the sound choice for lower-bound checking is
    to count them as failures).
    """

    verdict: Optional[bool]
    steps: int
    final: ExecutionFragment

    @property
    def truncated(self) -> bool:
        """True when the sampler hit its step budget before a verdict."""
        return self.verdict is None


def sample_event(
    automaton: ProbabilisticAutomaton[State],
    adversary: Adversary[State],
    start: ExecutionFragment[State],
    schema: EventSchema[State],
    rng: random.Random,
    max_steps: int = 10_000,
    *,
    guards: Optional[GuardConfig] = None,
) -> SampleResult:
    """Sample one execution of ``H(M, A, start)`` until the event decides.

    Stops as soon as the schema classifies the growing fragment as
    ACCEPT or REJECT, when the adversary halts (then
    ``decide_maximal`` settles the verdict), or after ``max_steps``
    steps (verdict ``None``).

    ``guards`` selects the contract-check mode (default: the installed
    :func:`repro.contracts.active` config, normally off).  Guard checks
    never consume ``rng``, so enabling them does not perturb the sample
    stream; in warn mode a fuel exhaustion truncates the sample exactly
    like hitting ``max_steps``.
    """
    if max_steps < 0:
        raise VerificationError("max_steps must be nonnegative")
    config = guards if guards is not None else contracts.active()
    checking = config.checking
    fuel = fuel_for(config)
    adversary_name = getattr(adversary, "name", "")
    fragment = start
    result: Optional[SampleResult] = None
    for steps_taken in range(max_steps + 1):
        status = schema.classify(fragment)
        if status is EventStatus.ACCEPT:
            result = SampleResult(True, steps_taken, fragment)
            break
        if status is EventStatus.REJECT:
            result = SampleResult(False, steps_taken, fragment)
            break
        if steps_taken == max_steps:
            break
        chosen = adversary.choose(automaton, fragment)
        if obs.enabled():
            obs.incr("adversary.decisions")
            if chosen is None:
                obs.incr("adversary.halts")
        if chosen is None:
            result = SampleResult(
                schema.decide_maximal(fragment), steps_taken, fragment
            )
            break
        if checking:
            check_chosen_step(config, automaton, fragment, chosen, adversary_name)
            if fuel is not None and not fuel.spend(config, fragment, adversary_name):
                result = SampleResult(None, steps_taken, fragment)
                break
        next_state = chosen.target.sample(rng)
        fragment = fragment.extend(chosen.action, next_state)
    if result is None:
        result = SampleResult(None, max_steps, fragment)
    if obs.enabled():
        _record_event_sample(result)
    return result


def _record_event_sample(result: SampleResult) -> None:
    """Metrics for one finished event sample (recording registries only)."""
    obs.incr("sampler.samples")
    obs.incr("sampler.steps", result.steps)
    obs.observe("sampler.steps_per_sample", result.steps)
    if result.truncated:
        obs.incr("sampler.truncated")
    elif result.verdict:
        obs.incr("sampler.accepted")
    else:
        obs.incr("sampler.rejected")


def sample_time_until(
    automaton: ProbabilisticAutomaton[State],
    adversary: Adversary[State],
    start: ExecutionFragment[State],
    target: Callable[[State], bool],
    time_of: Callable[[State], Fraction],
    rng: random.Random,
    max_steps: int = 10_000,
    *,
    guards: Optional[GuardConfig] = None,
) -> Optional[Fraction]:
    """The elapsed time until ``target`` first holds along one sample.

    Returns ``None`` when the target was not reached within the step
    budget (or before the adversary halted).  Elapsed time is measured
    from the start fragment's last state — the moment the adversary
    takes over, matching Definition 3.1's clock.  ``guards`` behaves as
    in :func:`sample_event`.
    """
    if max_steps < 0:
        raise VerificationError("max_steps must be nonnegative")
    config = guards if guards is not None else contracts.active()
    checking = config.checking
    fuel = fuel_for(config)
    adversary_name = getattr(adversary, "name", "")
    origin = time_of(start.lstate)
    if any(target(state) for state in start.states):
        if obs.enabled():
            _record_time_sample(Fraction(0), 0)
        return Fraction(0)
    fragment = start
    elapsed: Optional[Fraction] = None
    steps_taken = 0
    for _ in range(max_steps):
        chosen = adversary.choose(automaton, fragment)
        if obs.enabled():
            obs.incr("adversary.decisions")
            if chosen is None:
                obs.incr("adversary.halts")
        if chosen is None:
            break
        if checking:
            check_chosen_step(config, automaton, fragment, chosen, adversary_name)
            if fuel is not None and not fuel.spend(config, fragment, adversary_name):
                break
        next_state = chosen.target.sample(rng)
        fragment = fragment.extend(chosen.action, next_state)
        steps_taken += 1
        if target(next_state):
            elapsed = time_of(next_state) - origin
            break
    if obs.enabled():
        _record_time_sample(elapsed, steps_taken)
    return elapsed


def _record_time_sample(elapsed: Optional[Fraction], steps: int) -> None:
    """Metrics for one time-to-target sample (recording registries only)."""
    obs.incr("sampler.time_samples")
    obs.incr("sampler.steps", steps)
    if elapsed is None:
        obs.incr("sampler.unreached")
    else:
        obs.observe("sampler.time_to_target", float(elapsed))


def trim_fragment(fragment: ExecutionFragment[State]) -> ExecutionFragment[State]:
    """Restart a fragment at its last state.

    Utility for long-running samplers that only need bounded history:
    callers that know their adversary and schema look at bounded history
    can trim to keep memory flat.  (The adversaries in this library that
    need full history — coin-peeking policies — must not be used with
    trimming; the samplers above never trim implicitly.)
    """
    return ExecutionFragment.initial(fragment.lstate)
