"""Execution automata, the cone measure, and Monte-Carlo sampling."""

from repro.execution.automaton import ExecutionAutomaton
from repro.execution.measure import (
    EventBounds,
    event_probability_bounds,
    exact_event_probability,
    rectangle_probability,
)
from repro.execution.sampler import (
    SampleResult,
    sample_event,
    sample_time_until,
    trim_fragment,
)

__all__ = [
    "EventBounds",
    "ExecutionAutomaton",
    "SampleResult",
    "event_probability_bounds",
    "exact_event_probability",
    "rectangle_probability",
    "sample_event",
    "sample_time_until",
    "trim_fragment",
]
