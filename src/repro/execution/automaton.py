"""Execution automata ``H(M, A, alpha)`` (Definitions 2.3 and 2.4).

Running a probabilistic automaton ``M`` under an adversary ``A`` from a
starting fragment ``alpha`` yields a *fully probabilistic* automaton
``H``: its states are finite execution fragments of ``M`` extending
``alpha``, its unique start state is ``alpha`` itself, and from each
state at most one step is enabled — the one the adversary chose —
whose target lifts the corresponding step of ``M`` by appending the
action and the new state to the fragment (condition 2 of
Definition 2.3: ``Omega = { alpha a s }`` with ``P'[alpha a s] = P[s]``).

The tree is materialised lazily and memoised: the state spaces of
interesting execution automata are exponential in depth, and both the
exact measure computation and the sampler only touch the parts they
need.
"""

from __future__ import annotations

from typing import (
    Dict,
    Generic,
    Hashable,
    Iterator,
    Optional,
    Tuple,
    TypeVar,
)

from repro import obs
from repro.adversary.base import Adversary
from repro.automaton.automaton import ProbabilisticAutomaton
from repro.automaton.execution import ExecutionFragment
from repro.automaton.signature import Action
from repro.automaton.transition import Transition
from repro.contracts import GuardConfig
from repro.contracts.guards import check_chosen_step
from repro.probability.space import FiniteDistribution

State = TypeVar("State", bound=Hashable)


class ExecutionAutomaton(Generic[State]):
    """The execution automaton ``H(M, A, alpha)``.

    ``states(H)`` are fragments of ``M``; :meth:`step` returns the unique
    enabled step of a state (or ``None`` when the adversary halts there,
    making the state's executions maximal at that point).
    """

    def __init__(
        self,
        automaton: ProbabilisticAutomaton[State],
        adversary: Adversary[State],
        start: ExecutionFragment[State],
        guards: Optional[GuardConfig] = None,
    ):
        self._automaton = automaton
        self._adversary = adversary
        self._start = start
        # With no explicit config the historical behaviour is kept:
        # checked_choose validates the adversary contract (and raises a
        # plain AdversaryError).  A GuardConfig reroutes validation
        # through the contracts layer instead.
        self._guards = guards
        self._cache: Dict[
            ExecutionFragment[State],
            Optional[Tuple[Action, FiniteDistribution]],
        ] = {}
        obs.incr("execution.automata_built")

    @property
    def automaton(self) -> ProbabilisticAutomaton[State]:
        """The underlying probabilistic automaton ``M``."""
        return self._automaton

    @property
    def adversary(self) -> Adversary[State]:
        """The adversary ``A`` resolving the nondeterminism."""
        return self._adversary

    @property
    def start(self) -> ExecutionFragment[State]:
        """The unique start state (the starting fragment ``alpha``)."""
        return self._start

    def corresponding_step(
        self, fragment: ExecutionFragment[State]
    ) -> Optional[Transition[State]]:
        """The step of ``M`` the adversary schedules after ``fragment``."""
        if self._guards is None:
            return self._adversary.checked_choose(self._automaton, fragment)
        chosen = self._adversary.choose(self._automaton, fragment)
        if obs.enabled():
            obs.incr("adversary.decisions")
            if chosen is None:
                obs.incr("adversary.halts")
        if chosen is not None and self._guards.checking:
            check_chosen_step(
                self._guards,
                self._automaton,
                fragment,
                chosen,
                getattr(self._adversary, "name", ""),
            )
        return chosen

    def step(
        self, fragment: ExecutionFragment[State]
    ) -> Optional[Tuple[Action, FiniteDistribution]]:
        """The unique step of ``H`` from ``fragment`` (lifted), if any.

        The target distribution ranges over extended fragments
        ``fragment . a . s`` with the probabilities of the corresponding
        step of ``M`` (Definition 2.3, condition 2).
        """
        if fragment in self._cache:
            obs.incr("execution.step_cache_hits")
            return self._cache[fragment]
        obs.incr("execution.step_cache_misses")
        chosen = self.corresponding_step(fragment)
        if chosen is None:
            lifted: Optional[Tuple[Action, FiniteDistribution]] = None
        else:
            action = chosen.action
            lifted = (
                action,
                chosen.target.map(lambda s: fragment.extend(action, s)),
            )
        self._cache[fragment] = lifted
        return lifted

    def is_terminal(self, fragment: ExecutionFragment[State]) -> bool:
        """True when ``fragment`` enables no step of ``H``.

        Terminal states are exactly the finite *maximal* executions of
        ``H`` (used by the sample space ``Omega_H``).
        """
        return self.step(fragment) is None

    def nodes_to_depth(
        self, depth: int
    ) -> Iterator[Tuple[ExecutionFragment[State], int]]:
        """Enumerate tree nodes with their depth, up to ``depth`` steps.

        Depth counts steps of ``H`` from the start fragment, not the
        length of the underlying fragment.  Intended for tests and
        diagnostics; the measure computation walks the tree itself so
        it can prune decided subtrees.
        """
        frontier = [(self._start, 0)]
        while frontier:
            fragment, d = frontier.pop()
            yield fragment, d
            if d >= depth:
                continue
            lifted = self.step(fragment)
            if lifted is None:
                continue
            _, distribution = lifted
            for child in distribution.support:
                frontier.append((child, d + 1))
