"""Quarantine records: what a run skipped, and why.

When strict guards trip inside one (adversary, start) task, the backend
converts the :class:`~repro.errors.ContractViolation` into a
:class:`QuarantinedPair` instead of aborting the whole run.  Reports
carry these records alongside their healthy checks so the caller knows
exactly what was skipped; the CLI exits with the dedicated contract
status (4) whenever a report carries any.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class QuarantinedPair:
    """One skipped (adversary, start) task."""

    adversary_name: str
    start_state: str  # repr of the start state (kept picklable/JSON-able)
    kind: str  # ContractViolation kind: distribution/adversary/closure/fuel/contract
    message: str

    def describe(self) -> str:
        return (
            f"quarantined {self.adversary_name} from {self.start_state}: "
            f"{self.kind}: {self.message}"
        )

    def to_dict(self) -> dict:
        return {
            "adversary": self.adversary_name,
            "start": self.start_state,
            "kind": self.kind,
            "message": self.message,
        }
