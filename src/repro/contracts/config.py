"""Guard configuration: enforcement modes and fuel budgets.

A :class:`GuardConfig` is a small frozen value threaded through the
sampling and verification hot paths.  Three modes:

``off``
    Zero-overhead no-op.  The hot path performs no contract checks at
    all — a single cached boolean test per step is the only residue.

``warn``
    Every check runs; violations increment ``contracts.*`` obs counters
    and print one warning per *site* to stderr, then execution
    continues (graceful degradation).

``strict``
    Violations raise the matching :class:`~repro.errors.ContractViolation`
    subclass.  Inside the verifier backend the violation is caught per
    (adversary, start) pair and converted into a quarantine record, so
    one poisoned pair does not abort the rest of the run.

Configs pickle cleanly and are embedded in the parallel contexts, so
forked pool workers enforce identically to ``workers=1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import VerificationError

OFF = "off"
WARN = "warn"
STRICT = "strict"

MODES = (OFF, WARN, STRICT)


@dataclass(frozen=True)
class GuardConfig:
    """Immutable guard settings for one run.

    ``fuel_steps`` / ``fuel_seconds`` bound each *single execution*
    sampled by the runtime; ``None`` means unlimited.  Fuel is only
    enforced when ``mode`` is ``warn`` or ``strict``.
    """

    mode: str = OFF
    fuel_steps: Optional[int] = None
    fuel_seconds: Optional[float] = None
    #: How many closure spot-check probes to run per (adversary, start)
    #: pair when the schema declares ``execution_closed=True``.
    closure_probes: int = 1

    def validate(self) -> "GuardConfig":
        """Check internal consistency; returns self for chaining."""
        if self.mode not in MODES:
            raise VerificationError(
                f"unknown guard mode {self.mode!r}; expected one of {MODES}"
            )
        if self.fuel_steps is not None and self.fuel_steps < 1:
            raise VerificationError("fuel_steps must be a positive integer")
        if self.fuel_seconds is not None and self.fuel_seconds <= 0:
            raise VerificationError("fuel_seconds must be positive")
        if self.mode == OFF and self.fuelled:
            raise VerificationError(
                "fuel budgets require guard mode 'warn' or 'strict' "
                "(mode 'off' performs no checks)"
            )
        if self.closure_probes < 0:
            raise VerificationError("closure_probes must be >= 0")
        return self

    @property
    def checking(self) -> bool:
        """True when any contract checks run (warn or strict)."""
        return self.mode != OFF

    @property
    def strict(self) -> bool:
        """True when violations raise instead of being counted."""
        return self.mode == STRICT

    @property
    def fuelled(self) -> bool:
        """True when a per-execution fuel budget is configured."""
        return self.fuel_steps is not None or self.fuel_seconds is not None

    @classmethod
    def from_flags(cls, mode: str, fuel: Optional[str] = None) -> "GuardConfig":
        """Build a config from the ``--guards`` / ``--fuel`` CLI flags.

        ``fuel`` grammar: a plain integer is a step budget; otherwise a
        comma-separated list of ``steps=N`` / ``seconds=X`` assignments,
        e.g. ``steps=5000,seconds=2.5``.
        """
        steps, seconds = _parse_fuel(fuel)
        return cls(mode=mode, fuel_steps=steps, fuel_seconds=seconds).validate()


def _parse_fuel(spec: Optional[str]):
    if spec is None or spec == "":
        return None, None
    spec = spec.strip()
    if spec.isdigit():
        return int(spec), None
    steps: Optional[int] = None
    seconds: Optional[float] = None
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        key = key.strip()
        value = value.strip()
        if not sep or not value:
            raise VerificationError(
                f"bad --fuel component {part!r}: expected steps=N or seconds=X"
            )
        try:
            if key == "steps":
                steps = int(value)
            elif key == "seconds":
                seconds = float(value)
            else:
                raise VerificationError(
                    f"bad --fuel key {key!r}: expected 'steps' or 'seconds'"
                )
        except ValueError:
            raise VerificationError(
                f"bad --fuel value {value!r} for {key!r}"
            ) from None
    return steps, seconds


#: The shared zero-overhead default.
OFF_CONFIG = GuardConfig()

_active = OFF_CONFIG


def active() -> GuardConfig:
    """The process-wide default config, used when no explicit config is
    passed down a call chain.  Defaults to :data:`OFF_CONFIG`."""
    return _active


def install(config: GuardConfig) -> GuardConfig:
    """Replace the process-wide default; returns the previous one."""
    global _active
    previous = _active
    _active = config.validate()
    return previous


class use:
    """Context manager installing ``config`` for the enclosed block."""

    def __init__(self, config: GuardConfig):
        self._config = config
        self._previous: Optional[GuardConfig] = None

    def __enter__(self) -> GuardConfig:
        self._previous = install(self._config)
        return self._config

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._previous is not None:
            install(self._previous)
