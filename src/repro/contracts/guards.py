"""Runtime contract checks for the sampling/verification hot paths.

Each check takes the active :class:`~repro.contracts.config.GuardConfig`
first and is a no-op when ``config.checking`` is false — callers are
expected to hoist that test out of their inner loops.  Violations are
routed through :func:`report_violation`, which raises in strict mode and
counts + warns-once-per-site in warn mode.

Checks consume **no randomness** from the caller's sample streams: the
closure spot check takes its own rng, derived by the backend from a
separate ``"contracts"`` seed label.  This is what keeps ``--guards
warn`` output byte-identical to ``--guards off`` on healthy models.
"""

from __future__ import annotations

import sys
from fractions import Fraction
from typing import Dict, Optional, Set, Tuple

from repro import obs
from repro.adversary.base import Adversary, AdversarySchema
from repro.automaton.automaton import ProbabilisticAutomaton
from repro.automaton.execution import ExecutionFragment
from repro.automaton.transition import Transition
from repro.contracts.config import GuardConfig
from repro.errors import (
    AdversaryContractError,
    ContractViolation,
    DistributionError,
    ReproError,
)
from repro.probability.space import as_fraction

#: Sites already warned about in this process (warn mode prints each
#: distinct site once).  Forked pool workers inherit a copy, so a site
#: may be warned once per worker; counters are merged exactly.
_warned_sites: Set[str] = set()
_MAX_WARNED_SITES = 4096

#: Transitions whose target distribution already passed the Definition
#: 2.1 check, keyed by id.  The mapped value keeps the transition alive
#: so a dead object's id cannot be reused and spuriously hit the cache.
_validated_transitions: Dict[int, Transition] = {}
_MAX_VALIDATED = 100_000


def reset_warnings() -> None:
    """Forget warned sites (used by tests and fresh CLI invocations)."""
    _warned_sites.clear()


def report_violation(config: GuardConfig, error: ContractViolation) -> None:
    """Dispatch a violation according to the guard mode.

    Strict: raises ``error``.  Warn: increments ``contracts.violations``
    and ``contracts.<kind>`` counters and prints one stderr warning per
    distinct ``error.site``.  Never called in off mode.
    """
    if obs.enabled():
        obs.incr("contracts.violations")
        obs.incr(f"contracts.{type(error).kind}")
    if config.strict:
        raise error
    if error.site not in _warned_sites and len(_warned_sites) < _MAX_WARNED_SITES:
        _warned_sites.add(error.site)
        print(f"repro: contract warning: {error}", file=sys.stderr)


def check_transition_distribution(
    config: GuardConfig, step: Transition
) -> Optional[ContractViolation]:
    """Definition 2.1: the step's target must sum exactly to 1.

    Successful checks are cached per transition object, so repeatedly
    scheduled steps (the common case: :class:`FunctionalAutomaton`
    memoises its transitions) cost one dict lookup after the first
    visit.  Returns the violation in warn mode so callers can inspect
    it; raises in strict mode.
    """
    if id(step) in _validated_transitions:
        return None
    error: Optional[ContractViolation] = None
    try:
        total = Fraction(0)
        points = 0
        for point, weight in step.target.items():
            points += 1
            w = as_fraction(weight)
            if w <= 0:
                error = DistributionError(
                    f"target of {step.action!r} gives {point!r} a nonpositive "
                    f"weight {w}",
                    state=step.source,
                    action=step.action,
                    site=f"distribution:{step.source!r}:{step.action!r}",
                )
                break
            total += w
        if error is None and (points == 0 or total != 1):
            error = DistributionError(
                f"target of {step.action!r} sums to {total} over {points} "
                f"points; Definition 2.1 requires exactly 1",
                state=step.source,
                action=step.action,
                site=f"distribution:{step.source!r}:{step.action!r}",
            )
    except (ReproError, TypeError, ValueError) as exc:
        error = DistributionError(
            f"target of {step.action!r} is not a probability space: {exc}",
            state=step.source,
            action=step.action,
            site=f"distribution:{step.source!r}:{step.action!r}",
        )
    if error is None:
        if len(_validated_transitions) >= _MAX_VALIDATED:
            _validated_transitions.clear()
        _validated_transitions[id(step)] = step
        return None
    report_violation(config, error)
    return error


def check_chosen_step(
    config: GuardConfig,
    automaton: ProbabilisticAutomaton,
    fragment: ExecutionFragment,
    step: Transition,
    adversary_name: str = "",
) -> None:
    """Definition 2.2: the scheduled step must be enabled here.

    Checks the step's source matches the fragment's last state, that
    the step is one of the automaton's transitions from that state, and
    that its target distribution is well-formed (Definition 2.1).

    Fast path: a well-behaved adversary returns one of the automaton's
    own (memoised) transition objects, so an identity scan plus the
    validated-distribution cache settles the common case without any
    state or distribution equality comparison.
    """
    last = fragment.lstate
    try:
        steps = automaton.transitions(last)
    except ReproError as exc:
        report_violation(
            config,
            AdversaryContractError(
                f"cannot enumerate transitions from {last!r} while checking "
                f"adversary {adversary_name or '<anonymous>'}: {exc}",
                state=last,
                action=step.action,
                site=f"adversary-enabled:{adversary_name}",
            ),
        )
        return
    for known in steps:
        if known is step:
            # Enabled by identity; the automaton already guarantees the
            # source matches the state it was queried at.
            if id(step) not in _validated_transitions:
                check_transition_distribution(config, step)
            return
    if step.source != last:
        report_violation(
            config,
            AdversaryContractError(
                f"adversary {adversary_name or '<anonymous>'} scheduled a step "
                f"from {step.source!r} but the execution ends in {last!r}",
                state=last,
                action=step.action,
                prefix=fragment_prefix_repr(fragment),
                site=f"adversary-source:{adversary_name}",
            ),
        )
        return
    if step not in steps:
        report_violation(
            config,
            AdversaryContractError(
                f"adversary {adversary_name or '<anonymous>'} scheduled "
                f"{step.action!r}, which is not enabled in {last!r}",
                state=last,
                action=step.action,
                prefix=fragment_prefix_repr(fragment),
                site=f"adversary-enabled:{adversary_name}:{step.action!r}",
            ),
        )
        return
    check_transition_distribution(config, step)


def check_schema_membership(
    config: GuardConfig,
    schema: Optional[AdversarySchema],
    adversary: Adversary,
    adversary_name: str = "",
) -> None:
    """Definition 2.6: the adversary must lie in its declared schema."""
    if schema is None:
        return
    try:
        member = schema.contains(adversary)
    except ReproError as exc:
        member = False
        detail = f" (membership test raised: {exc})"
    else:
        detail = ""
    if not member:
        report_violation(
            config,
            AdversaryContractError(
                f"adversary {adversary_name or adversary!r} is outside its "
                f"declared schema {schema.name!r}{detail}",
                site=f"schema:{schema.name}:{adversary_name}",
            ),
        )


def spot_check_closure(
    config: GuardConfig,
    schema: Optional[AdversarySchema],
    adversary: Adversary,
    fragment: ExecutionFragment,
    rng,
    adversary_name: str = "",
) -> None:
    """Definition 3.3 probe: shifting must stay inside the schema.

    ``rng`` must be a stream reserved for guard checks (never the
    sample stream), so enabling guards cannot perturb sampled results.
    """
    if schema is None or not schema.execution_closed:
        return
    try:
        schema.spot_check_closure(
            adversary, fragment, rng, probes=config.closure_probes
        )
    except ContractViolation as error:
        if not error.site:
            error.site = f"closure:{schema.name}:{adversary_name}"
        report_violation(config, error)


def fragment_prefix_repr(fragment: ExecutionFragment, limit: int = 200) -> str:
    """A truncated textual repro of the offending execution prefix."""
    text = repr(fragment)
    if len(text) > limit:
        text = text[: limit - 3] + "..."
    return text


def describe_violation(error: ContractViolation) -> Tuple[str, str]:
    """The picklable ``(kind, message)`` pair quarantine records carry."""
    return type(error).kind, str(error)
