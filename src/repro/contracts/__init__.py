"""Model-contract guard layer (Definitions 2.1 / 2.2 / 3.3).

The rest of the library trusts model code: an automaton whose target
distribution sums to 0.99, an adversary scheduling a disabled step, or
a schema falsely declared execution closed would silently corrupt every
probability estimate downstream.  This package makes those violations
*observable*:

* :mod:`~repro.contracts.config` — the three enforcement modes
  (``off`` no-op / ``warn`` count + once-per-site warning / ``strict``
  raise) and per-execution fuel budgets, as a picklable
  :class:`GuardConfig` threaded through the hot paths and across the
  fork boundary.
* :mod:`~repro.contracts.guards` — the runtime checks themselves.
* :mod:`~repro.contracts.fuel` — step/wall-clock budgets per execution.
* :mod:`~repro.contracts.audit` — a static well-formedness pass over an
  automaton (``repro audit``).
* :mod:`~repro.contracts.quarantine` — records of per-(adversary,
  start) tasks a strict run skipped instead of aborting.

Violations are the :class:`~repro.errors.ContractViolation` taxonomy;
warn-mode occurrences are counted on ``contracts.*`` obs counters.
See ``docs/contracts.md``.
"""

from repro.contracts.audit import AuditFinding, AuditReport, audit_automaton
from repro.contracts.config import (
    MODES,
    OFF,
    OFF_CONFIG,
    STRICT,
    WARN,
    GuardConfig,
    active,
    install,
    use,
)
from repro.contracts.fuel import Fuel, fuel_for
from repro.contracts.guards import (
    check_chosen_step,
    check_schema_membership,
    check_transition_distribution,
    describe_violation,
    report_violation,
    reset_warnings,
    spot_check_closure,
)
from repro.contracts.quarantine import QuarantinedPair

__all__ = [
    "AuditFinding",
    "AuditReport",
    "audit_automaton",
    "MODES",
    "OFF",
    "OFF_CONFIG",
    "STRICT",
    "WARN",
    "GuardConfig",
    "active",
    "install",
    "use",
    "Fuel",
    "fuel_for",
    "check_chosen_step",
    "check_schema_membership",
    "check_transition_distribution",
    "describe_violation",
    "report_violation",
    "reset_warnings",
    "spot_check_closure",
    "QuarantinedPair",
]
