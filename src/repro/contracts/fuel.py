"""Per-execution fuel: step and wall-clock budgets for one sample.

One :class:`Fuel` is created per sampled execution and ticked once per
scheduled step.  Exhaustion is a :class:`~repro.errors.FuelExhaustedError`
carrying the execution prefix as a minimal repro: in strict mode it
raises (and the backend quarantines the pair); in warn mode the sampler
stops extending the execution and reports it truncated, exactly as if
``max_steps`` had been hit.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.contracts.config import GuardConfig
from repro.contracts.guards import fragment_prefix_repr, report_violation
from repro.errors import FuelExhaustedError

#: How many ticks between wall-clock reads (monotonic() is cheap but
#: not free; step-dominated loops should not pay it every iteration).
_CLOCK_STRIDE = 16


class Fuel:
    """Mutable budget for a single execution."""

    __slots__ = ("steps", "used", "deadline", "seconds")

    def __init__(self, steps: Optional[int], seconds: Optional[float]):
        self.steps = steps
        self.seconds = seconds
        self.used = 0
        self.deadline = None if seconds is None else time.monotonic() + seconds

    def spend(self, config: GuardConfig, fragment, adversary_name: str = "") -> bool:
        """Account one step; True while budget remains.

        On exhaustion, reports a :class:`FuelExhaustedError` (raising
        in strict mode) and returns False so warn-mode callers stop
        extending this execution.
        """
        self.used += 1
        if self.steps is not None and self.used > self.steps:
            detail = f"step budget of {self.steps} exhausted"
        elif (
            self.deadline is not None
            and self.used % _CLOCK_STRIDE == 0
            and time.monotonic() > self.deadline
        ):
            detail = (
                f"wall-clock budget of {self.seconds}s exhausted after "
                f"{self.used} steps"
            )
        else:
            return True
        report_violation(
            config,
            FuelExhaustedError(
                f"execution fuel exhausted: {detail}",
                state=fragment.lstate,
                prefix=fragment_prefix_repr(fragment),
                site=f"fuel:{adversary_name}",
            ),
        )
        return False


def fuel_for(config: GuardConfig) -> Optional[Fuel]:
    """A fresh :class:`Fuel` for one execution, or ``None`` if the
    config carries no budget (or is not checking at all)."""
    if not config.checking or not config.fuelled:
        return None
    return Fuel(config.fuel_steps, config.fuel_seconds)
