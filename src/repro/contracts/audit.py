"""Static well-formedness audit of a probabilistic automaton.

:func:`audit_automaton` walks the states reachable from ``start(M)``
within a horizon and checks, for every enabled step, the Definition 2.1
obligations: the target is a probability space summing exactly to 1 as
``Fraction``s, the action belongs to the signature, the source matches
the state queried, and every state in the support passes
``validate_state``.  Start states are validated too.  Findings are
collected (never raised), so one broken transition does not hide the
rest — the CLI surface is ``repro audit``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Optional, Set, Tuple

from repro.automaton.automaton import ProbabilisticAutomaton
from repro.errors import ReproError
from repro.probability.space import as_fraction

#: Findings beyond this count are dropped (the report records how many).
MAX_FINDINGS = 100


@dataclass(frozen=True)
class AuditFinding:
    """One well-formedness defect, anchored to a state and action."""

    kind: str  # "start" | "state" | "signature" | "source" | "distribution" | "transitions"
    state: Optional[str]
    action: Optional[str]
    message: str

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "state": self.state,
            "action": self.action,
            "message": self.message,
        }

    def describe(self) -> str:
        where = self.state if self.state is not None else "<start>"
        label = f" / {self.action}" if self.action is not None else ""
        return f"[{self.kind}] {where}{label}: {self.message}"


@dataclass(frozen=True)
class AuditReport:
    """The outcome of one automaton audit."""

    findings: Tuple[AuditFinding, ...]
    states_visited: int
    transitions_checked: int
    #: True when the horizon ran out before the reachable frontier did.
    exhausted: bool
    #: Tri-state "yes" / "no" / "unknown" from
    #: :meth:`ProbabilisticAutomaton.fully_probabilistic_status`.
    fully_probabilistic: str
    #: Findings beyond :data:`MAX_FINDINGS` that were dropped.
    findings_dropped: int = 0

    @property
    def ok(self) -> bool:
        """True when no defect was found (exhaustion is not a defect)."""
        return not self.findings and self.findings_dropped == 0

    def summary_line(self) -> str:
        coverage = "horizon exhausted" if self.exhausted else "reachable set covered"
        verdict = "ok" if self.ok else f"{len(self.findings)} finding(s)"
        if self.findings_dropped:
            verdict += f" (+{self.findings_dropped} dropped)"
        return (
            f"audit: {verdict}; {self.states_visited} states, "
            f"{self.transitions_checked} transitions ({coverage}); "
            f"fully probabilistic: {self.fully_probabilistic}"
        )

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.findings],
            "findings_dropped": self.findings_dropped,
            "states_visited": self.states_visited,
            "transitions_checked": self.transitions_checked,
            "exhausted": self.exhausted,
            "fully_probabilistic": self.fully_probabilistic,
        }


@dataclass
class _Collector:
    findings: List[AuditFinding] = field(default_factory=list)
    dropped: int = 0

    def add(self, kind, state, action, message) -> None:
        if len(self.findings) >= MAX_FINDINGS:
            self.dropped += 1
            return
        self.findings.append(
            AuditFinding(
                kind=kind,
                state=None if state is None else repr(state),
                action=None if action is None else repr(action),
                message=message,
            )
        )


def audit_automaton(
    automaton: ProbabilisticAutomaton, horizon: int = 5_000
) -> AuditReport:
    """Audit every state reachable within ``horizon`` expansions."""
    out = _Collector()
    signature = automaton.signature

    for start in automaton.start_states:
        try:
            automaton.validate_state(start)
        except ReproError as exc:
            out.add("start", start, None, f"start state fails validate_state: {exc}")

    frontier: List[object] = list(reversed(automaton.start_states))
    visited: Set[object] = set(automaton.start_states)
    expansions = 0
    transitions_checked = 0
    while frontier and expansions < horizon:
        state = frontier.pop()
        expansions += 1
        try:
            steps = automaton.transitions(state)
        except ReproError as exc:
            out.add("transitions", state, None, f"transitions() raised: {exc}")
            continue
        for step in steps:
            transitions_checked += 1
            if step.source != state:
                out.add(
                    "source",
                    state,
                    step.action,
                    f"step source {step.source!r} does not match the queried state",
                )
            if step.action not in signature:
                out.add(
                    "signature",
                    state,
                    step.action,
                    "action is not in the automaton's signature",
                )
            _audit_distribution(out, state, step, automaton, frontier, visited)

    return AuditReport(
        findings=tuple(out.findings),
        states_visited=expansions,
        transitions_checked=transitions_checked,
        exhausted=bool(frontier),
        fully_probabilistic=automaton.fully_probabilistic_status(horizon),
        findings_dropped=out.dropped,
    )


def _audit_distribution(out, state, step, automaton, frontier, visited) -> None:
    try:
        total = Fraction(0)
        points = 0
        for target, weight in step.target.items():
            points += 1
            w = as_fraction(weight)
            if w <= 0:
                out.add(
                    "distribution",
                    state,
                    step.action,
                    f"weight {w} of target {target!r} is not positive",
                )
            total += w
            try:
                automaton.validate_state(target)
            except ReproError as exc:
                out.add(
                    "state",
                    target,
                    step.action,
                    f"reachable state fails validate_state: {exc}",
                )
            if target not in visited:
                visited.add(target)
                frontier.append(target)
        if points == 0 or total != 1:
            out.add(
                "distribution",
                state,
                step.action,
                f"target distribution sums to {total} over {points} point(s); "
                "Definition 2.1 requires exactly 1",
            )
    except (ReproError, TypeError, ValueError) as exc:
        out.add(
            "distribution",
            state,
            step.action,
            f"target is not a probability space: {exc}",
        )
