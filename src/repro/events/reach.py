"""The time-bounded reachability event schema ``e_{U',t}`` (Definition 3.1).

``reach_within(U', t, time_of)`` applied to an execution automaton ``H``
is the set of maximal executions in which some state of ``U'`` occurs
within time ``t`` of the execution's *first* state.  This is exactly the
event whose probability the arrow statements ``U --t-->_p U'`` bound.

Time is read out of states with a ``time_of`` function (for untimed
automata, pass :func:`step_counting_time`, which makes "time" the number
of steps — useful in tests).  The bound is relative to the starting
fragment's last state, because Definition 3.1 starts the clock when the
adversary takes over at a state of ``U``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, FrozenSet, Hashable, TypeVar, Union

from repro.automaton.execution import ExecutionFragment
from repro.events.schema import EventSchema, EventStatus
from repro.probability.space import as_fraction

State = TypeVar("State", bound=Hashable)

StateSet = Union[FrozenSet[State], Callable[[State], bool]]


def _as_predicate(states: StateSet) -> Callable[[State], bool]:
    """Normalise a state set given as a set or a predicate."""
    if callable(states):
        return states
    frozen = frozenset(states)
    return lambda state: state in frozen


class ReachWithinTime(EventSchema[State]):
    """``e_{U',t}``: a state of ``U'`` occurs within time ``t``.

    The clock starts at the fragment's first state (when evaluating
    ``H(M, A, s)`` the first state is ``s`` itself, matching
    Definition 3.1).  States are examined *including* the start state, so
    the event is trivially accepted when the system already satisfies the
    target — mirroring the paper's remark that ``T --13-->_{1/8} C`` is
    trivial if some process starts in its critical region.
    """

    def __init__(
        self,
        target: StateSet,
        time_bound,
        time_of: Callable[[State], Fraction],
    ):
        self._target = _as_predicate(target)
        self._bound: Fraction = as_fraction(time_bound)
        self._time_of = time_of

    @property
    def time_bound(self) -> Fraction:
        """The deadline ``t`` measured from the execution's first state."""
        return self._bound

    def classify(self, fragment: ExecutionFragment[State]) -> EventStatus:
        start_time = self._time_of(fragment.fstate)
        deadline = start_time + self._bound
        for state in fragment.states:
            if self._time_of(state) > deadline:
                # Time already exceeded the bound; the scan below only
                # needs states up to the deadline, and since fragments
                # have monotone time we can reject unless a hit occurred
                # earlier (handled by scanning in order).
                return EventStatus.REJECT
            if self._target(state):
                return EventStatus.ACCEPT
        return EventStatus.UNDECIDED

    def decide_maximal(self, fragment: ExecutionFragment[State]) -> bool:
        # A maximal execution that never visited the target within the
        # bound is not in the event.
        return False

    def __repr__(self) -> str:
        return f"ReachWithinTime(t={self._bound})"


def step_counting_time(_state: State) -> Fraction:
    """A ``time_of`` for untimed automata: every state is at time 0.

    With this clock, ``ReachWithinTime`` never rejects on time and the
    bound degenerates to plain (unbounded) reachability over however
    many steps the adversary runs; use :class:`ReachWithinSteps` when a
    step-indexed bound is wanted instead.
    """
    return Fraction(0)


class ReachWithinSteps(EventSchema[State]):
    """Reachability within a bounded number of *steps* of the fragment.

    The untimed analogue of ``e_{U',t}``; the paper's model measures
    time through the patient construction, but tests and the exact
    checker often work step-indexed.
    """

    def __init__(self, target: StateSet, max_steps: int):
        self._target = _as_predicate(target)
        self._max_steps = max_steps

    def classify(self, fragment: ExecutionFragment[State]) -> EventStatus:
        for index, state in enumerate(fragment.states):
            if index > self._max_steps:
                return EventStatus.REJECT
            if self._target(state):
                return EventStatus.ACCEPT
        if len(fragment) >= self._max_steps:
            return EventStatus.REJECT
        return EventStatus.UNDECIDED

    def __repr__(self) -> str:
        return f"ReachWithinSteps(max_steps={self._max_steps})"


class EventuallyReach(EventSchema[State]):
    """Unbounded reachability: some state of the target ever occurs."""

    def __init__(self, target: StateSet):
        self._target = _as_predicate(target)

    def classify(self, fragment: ExecutionFragment[State]) -> EventStatus:
        if any(self._target(state) for state in fragment.states):
            return EventStatus.ACCEPT
        return EventStatus.UNDECIDED

    def __repr__(self) -> str:
        return "EventuallyReach()"
