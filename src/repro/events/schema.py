"""Event schemas (Definition 2.5) as three-valued classifiers.

An event schema associates with each execution automaton ``H`` an event
of ``F_H`` — a measurable set of maximal executions of ``H``.  All the
events the paper uses (time-bounded reachability ``e_{U',t}``,
``first(a, U)``, ``next(...)``, and their boolean combinations) share a
convenient structure: membership of a maximal execution is determined by
a *finite-prefix classifier* plus a rule for executions in which the
deciding trigger never occurs.  We exploit that structure to compute
exact probabilities by walking the execution tree and pruning decided
subtrees.

A schema must implement:

* :meth:`EventSchema.classify` — for a finite fragment, return

  - ``ACCEPT`` when *every* maximal execution extending the fragment is
    in the event,
  - ``REJECT`` when *none* is,
  - ``UNDECIDED`` otherwise;

* :meth:`EventSchema.decide_maximal` — the verdict for a *maximal*
  execution whose every prefix classified ``UNDECIDED`` (for
  ``first(a, U)`` this is ``True``: the event contains executions where
  ``a`` never occurs; for reachability it is ``False``).

Soundness requirement (checked property-style in the tests): once a
fragment classifies ``ACCEPT`` or ``REJECT``, every extension classifies
the same way.  The measure computation in
:mod:`repro.execution.measure` relies on this monotonicity.
"""

from __future__ import annotations

import abc
import enum
from typing import Generic, Hashable, TypeVar

from repro.automaton.execution import ExecutionFragment

State = TypeVar("State", bound=Hashable)


class EventStatus(enum.Enum):
    """Three-valued verdict of a finite-prefix event classifier."""

    ACCEPT = "accept"
    REJECT = "reject"
    UNDECIDED = "undecided"

    def negate(self) -> "EventStatus":
        """Swap ACCEPT and REJECT (complement of the event)."""
        if self is EventStatus.ACCEPT:
            return EventStatus.REJECT
        if self is EventStatus.REJECT:
            return EventStatus.ACCEPT
        return EventStatus.UNDECIDED


class EventSchema(Generic[State], abc.ABC):
    """Definition 2.5, in finite-prefix classifier form."""

    @abc.abstractmethod
    def classify(self, fragment: ExecutionFragment[State]) -> EventStatus:
        """The verdict determined by this finite prefix alone."""

    def decide_maximal(self, fragment: ExecutionFragment[State]) -> bool:
        """Verdict for a maximal execution still UNDECIDED at its end.

        Default ``False``: an event that waits for a trigger does not
        contain executions where the trigger never fires.  ``first`` and
        ``next`` override this (they *do* contain such executions).
        """
        return False

    def holds_on(self, fragment: ExecutionFragment[State], maximal: bool) -> bool:
        """Resolve a (possibly maximal) finite execution to a verdict.

        For use by samplers: ``maximal`` says whether the run ended
        because the adversary halted (True) or because sampling was
        truncated (False — then an UNDECIDED verdict is resolved
        pessimistically to False, keeping estimated lower bounds sound).
        """
        status = self.classify(fragment)
        if status is EventStatus.ACCEPT:
            return True
        if status is EventStatus.REJECT:
            return False
        if maximal:
            return self.decide_maximal(fragment)
        return False
