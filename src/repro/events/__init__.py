"""Event schemas (Definition 2.5) and the Section 4 independence rules."""

from repro.events.combinators import Complement, Intersection, Union
from repro.events.first import FirstOccurrence
from repro.events.independence import (
    IndependenceClaim,
    action_outcome_lower_bound,
    first_conjunction_claim,
    next_claim,
    proposition_4_2_claims,
)
from repro.events.next_first import NextFirstOccurrence
from repro.events.reach import (
    EventuallyReach,
    ReachWithinSteps,
    ReachWithinTime,
    step_counting_time,
)
from repro.events.schema import EventSchema, EventStatus

__all__ = [
    "Complement",
    "EventSchema",
    "EventStatus",
    "EventuallyReach",
    "FirstOccurrence",
    "IndependenceClaim",
    "Intersection",
    "NextFirstOccurrence",
    "ReachWithinSteps",
    "ReachWithinTime",
    "Union",
    "action_outcome_lower_bound",
    "first_conjunction_claim",
    "next_claim",
    "proposition_4_2_claims",
    "step_counting_time",
]
