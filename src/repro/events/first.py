"""The ``first(a, U)`` event schema (Section 4).

``first(a, U)`` applied to an execution automaton ``H`` is the set of
maximal executions in which either the action ``a`` never occurs, or it
occurs and the state reached immediately after its *first* occurrence is
in ``U``.  It expresses properties like "the i-th coin yields left"
robustly against adversaries that may decide never to schedule the coin
flip — the subtlety Example 4.1 turns on.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Hashable, TypeVar, Union

from repro.automaton.execution import ExecutionFragment
from repro.automaton.signature import Action
from repro.events.schema import EventSchema, EventStatus

State = TypeVar("State", bound=Hashable)

StateSet = Union[FrozenSet[State], Callable[[State], bool]]


class FirstOccurrence(EventSchema[State]):
    """``first(a, U)``: the first ``a`` (if any) lands in ``U``."""

    def __init__(self, action: Action, target: StateSet):
        self._action = action
        if callable(target):
            self._target = target
        else:
            frozen = frozenset(target)
            self._target = lambda state: state in frozen

    @property
    def action(self) -> Action:
        """The action whose first occurrence is constrained."""
        return self._action

    def classify(self, fragment: ExecutionFragment[State]) -> EventStatus:
        for _, action, after in fragment.steps():
            if action == self._action:
                if self._target(after):
                    return EventStatus.ACCEPT
                return EventStatus.REJECT
        return EventStatus.UNDECIDED

    def decide_maximal(self, fragment: ExecutionFragment[State]) -> bool:
        # The action never occurred: by definition the execution is in
        # the event.
        return True

    def __repr__(self) -> str:
        return f"FirstOccurrence(action={self._action!r})"
