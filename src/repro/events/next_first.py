"""The ``next((a1,U1),...,(an,Un))`` event schema (Section 4).

Applied to an execution automaton ``H``, the event contains the maximal
executions in which either no action from ``{a1,...,an}`` occurs, or at
least one occurs and — with ``a_i`` the *first* among them to occur —
the state reached immediately after that first occurrence is in ``U_i``.
It expresses properties like "the first coin that is flipped yields
left".  Section 4 requires the actions to be pairwise distinct.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from repro.automaton.execution import ExecutionFragment
from repro.automaton.signature import Action
from repro.errors import EventError
from repro.events.schema import EventSchema, EventStatus

State = TypeVar("State", bound=Hashable)

StateSet = Union[FrozenSet[State], Callable[[State], bool]]


def _as_predicate(states: StateSet) -> Callable[[State], bool]:
    if callable(states):
        return states
    frozen = frozenset(states)
    return lambda state: state in frozen


class NextFirstOccurrence(EventSchema[State]):
    """``next((a1,U1),...,(an,Un))`` over pairwise-distinct actions."""

    def __init__(self, pairs: Sequence[Tuple[Action, StateSet]]):
        if not pairs:
            raise EventError("next(...) needs at least one (action, set) pair")
        actions = [action for action, _ in pairs]
        if len(set(actions)) != len(actions):
            raise EventError(
                "next(...) requires pairwise-distinct actions (Section 4); "
                f"got {actions!r}"
            )
        self._constraints: Dict[Action, Callable[[State], bool]] = {
            action: _as_predicate(target) for action, target in pairs
        }

    @property
    def actions(self) -> Tuple[Action, ...]:
        """The watched actions, in the order given."""
        return tuple(self._constraints)

    def classify(self, fragment: ExecutionFragment[State]) -> EventStatus:
        for _, action, after in fragment.steps():
            if action in self._constraints:
                if self._constraints[action](after):
                    return EventStatus.ACCEPT
                return EventStatus.REJECT
        return EventStatus.UNDECIDED

    def decide_maximal(self, fragment: ExecutionFragment[State]) -> bool:
        # No watched action ever occurred: the execution is in the event.
        return True

    def __repr__(self) -> str:
        return f"NextFirstOccurrence(actions={list(self._constraints)!r})"
