"""Proposition 4.2: partial independence bounds for ``first``/``next``.

Given pairs ``(a_i, U_i)`` with pairwise-distinct actions and numbers
``p_i`` such that *every* step of ``M`` labelled ``a_i`` gives ``U_i``
probability at least ``p_i``, the proposition states, for every
execution automaton ``H`` of ``M``:

1. ``P_H[ first(a_1,U_1) AND ... AND first(a_n,U_n) ] >= p_1 ... p_n``
2. ``P_H[ next((a_1,U_1),...,(a_n,U_n)) ] >= min(p_1,...,p_n)``

This module computes the per-action bounds ``p_i`` from the automaton
(:func:`action_outcome_lower_bound`) and packages the proposition's two
conclusions as checkable claims (:class:`IndependenceClaim`), which the
verification harness evaluates exactly on execution trees or
statistically by sampling.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import (
    Callable,
    FrozenSet,
    Hashable,
    Iterable,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from repro.automaton.automaton import ProbabilisticAutomaton
from repro.automaton.signature import Action
from repro.errors import EventError
from repro.events.combinators import Intersection
from repro.events.first import FirstOccurrence
from repro.events.next_first import NextFirstOccurrence
from repro.events.schema import EventSchema

State = TypeVar("State", bound=Hashable)

StateSet = Union[FrozenSet[State], Callable[[State], bool]]


def _as_predicate(states: StateSet) -> Callable[[State], bool]:
    if callable(states):
        return states
    frozen = frozenset(states)
    return lambda state: state in frozen


def action_outcome_lower_bound(
    automaton: ProbabilisticAutomaton[State],
    action: Action,
    target: StateSet,
    states: Iterable[State],
) -> Fraction:
    """The largest ``p`` valid in Proposition 4.2 for ``(action, target)``.

    Scans every step labelled ``action`` enabled at the given states and
    returns the minimum probability the step's target assigns to the
    target set.  For an explicit automaton pass all its states; for a
    functional automaton pass the states of interest (e.g. the reachable
    set of a bounded exploration).

    Returns 1 when no step is labelled ``action`` (the proposition's
    hypothesis is then vacuous), matching the convention that an
    unscheduled coin imposes no constraint.
    """
    predicate = _as_predicate(target)
    minimum = Fraction(1)
    seen_any = False
    for state in states:
        for step in automaton.transitions(state):
            if step.action != action:
                continue
            seen_any = True
            mass = sum(
                (weight for point, weight in step.target.items() if predicate(point)),
                Fraction(0),
            )
            if mass < minimum:
                minimum = mass
    return minimum if seen_any else Fraction(1)


@dataclass(frozen=True)
class IndependenceClaim:
    """One conclusion of Proposition 4.2, as a checkable object.

    ``event`` is the compound event schema, ``lower_bound`` the
    probability the proposition guarantees under every adversary.
    ``kind`` records which clause produced it.
    """

    event: EventSchema
    lower_bound: Fraction
    kind: str

    def __post_init__(self) -> None:
        if not 0 <= self.lower_bound <= 1:
            raise EventError(
                f"lower bound {self.lower_bound} is not a probability"
            )


def first_conjunction_claim(
    pairs: Sequence[Tuple[Action, StateSet]],
    bounds: Sequence[Fraction],
) -> IndependenceClaim:
    """Clause 1: the conjunction of ``first`` events, bound ``prod p_i``."""
    _validate(pairs, bounds)
    event = Intersection(
        [FirstOccurrence(action, target) for action, target in pairs]
    )
    product = Fraction(1)
    for bound in bounds:
        product *= bound
    return IndependenceClaim(event=event, lower_bound=product, kind="first-conjunction")


def next_claim(
    pairs: Sequence[Tuple[Action, StateSet]],
    bounds: Sequence[Fraction],
) -> IndependenceClaim:
    """Clause 2: the ``next`` event, bound ``min p_i``."""
    _validate(pairs, bounds)
    event = NextFirstOccurrence(list(pairs))
    return IndependenceClaim(
        event=event, lower_bound=min(bounds), kind="next-minimum"
    )


def proposition_4_2_claims(
    automaton: ProbabilisticAutomaton[State],
    pairs: Sequence[Tuple[Action, StateSet]],
    states: Iterable[State],
) -> Tuple[IndependenceClaim, IndependenceClaim]:
    """Both conclusions, with ``p_i`` computed from the automaton itself."""
    states = list(states)
    bounds = [
        action_outcome_lower_bound(automaton, action, target, states)
        for action, target in pairs
    ]
    return (
        first_conjunction_claim(pairs, bounds),
        next_claim(pairs, bounds),
    )


def _validate(
    pairs: Sequence[Tuple[Action, StateSet]], bounds: Sequence[Fraction]
) -> None:
    if not pairs:
        raise EventError("Proposition 4.2 needs at least one (action, set) pair")
    if len(pairs) != len(bounds):
        raise EventError(
            f"{len(pairs)} pairs but {len(bounds)} probability bounds"
        )
    actions = [action for action, _ in pairs]
    if len(set(actions)) != len(actions):
        raise EventError("Proposition 4.2 requires pairwise-distinct actions")
    for bound in bounds:
        if not 0 <= bound <= 1:
            raise EventError(f"bound {bound} is not a probability")
