"""Boolean combinators over event schemas.

Intersection is what Proposition 4.2(1) is about: the probability of
``first(a1,U1) AND ... AND first(an,Un)`` is bounded below by the product
``p1 ... pn`` under *every* adversary, despite the dependences an
adversary can induce.  Union and complement round out the algebra; the
three-valued classifier semantics compose pointwise with the usual
Kleene rules.
"""

from __future__ import annotations

from typing import Hashable, Sequence, TypeVar

from repro.automaton.execution import ExecutionFragment
from repro.errors import EventError
from repro.events.schema import EventSchema, EventStatus

State = TypeVar("State", bound=Hashable)


class Intersection(EventSchema[State]):
    """The conjunction of several event schemas."""

    def __init__(self, parts: Sequence[EventSchema[State]]):
        if not parts:
            raise EventError("an intersection needs at least one event schema")
        self._parts = tuple(parts)

    @property
    def parts(self) -> tuple:
        """The conjuncts."""
        return self._parts

    def classify(self, fragment: ExecutionFragment[State]) -> EventStatus:
        verdicts = [part.classify(fragment) for part in self._parts]
        if any(v is EventStatus.REJECT for v in verdicts):
            return EventStatus.REJECT
        if all(v is EventStatus.ACCEPT for v in verdicts):
            return EventStatus.ACCEPT
        return EventStatus.UNDECIDED

    def decide_maximal(self, fragment: ExecutionFragment[State]) -> bool:
        return all(
            part.holds_on(fragment, maximal=True) for part in self._parts
        )

    def __repr__(self) -> str:
        return f"Intersection({list(self._parts)!r})"


class Union(EventSchema[State]):
    """The disjunction of several event schemas."""

    def __init__(self, parts: Sequence[EventSchema[State]]):
        if not parts:
            raise EventError("a union needs at least one event schema")
        self._parts = tuple(parts)

    @property
    def parts(self) -> tuple:
        """The disjuncts."""
        return self._parts

    def classify(self, fragment: ExecutionFragment[State]) -> EventStatus:
        verdicts = [part.classify(fragment) for part in self._parts]
        if any(v is EventStatus.ACCEPT for v in verdicts):
            return EventStatus.ACCEPT
        if all(v is EventStatus.REJECT for v in verdicts):
            return EventStatus.REJECT
        return EventStatus.UNDECIDED

    def decide_maximal(self, fragment: ExecutionFragment[State]) -> bool:
        return any(
            part.holds_on(fragment, maximal=True) for part in self._parts
        )

    def __repr__(self) -> str:
        return f"Union({list(self._parts)!r})"


class Complement(EventSchema[State]):
    """The complement of an event schema."""

    def __init__(self, inner: EventSchema[State]):
        self._inner = inner

    @property
    def inner(self) -> EventSchema[State]:
        """The complemented event."""
        return self._inner

    def classify(self, fragment: ExecutionFragment[State]) -> EventStatus:
        return self._inner.classify(fragment).negate()

    def decide_maximal(self, fragment: ExecutionFragment[State]) -> bool:
        return not self._inner.holds_on(fragment, maximal=True)

    def __repr__(self) -> str:
        return f"Complement({self._inner!r})"
