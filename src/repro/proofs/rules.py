"""The paper's proof rules over arrow statements.

* :func:`compose` — Theorem 3.4: for an execution-closed schema,
  ``U --t1-->_p1 U'`` and ``U' --t2-->_p2 U''`` yield
  ``U --t1+t2-->_{p1 p2} U''``.
* :func:`union_rule` — Proposition 3.2: ``U --t-->_p U'`` yields
  ``U ∪ U'' --t-->_p U' ∪ U''``.
* :func:`weaken` — relax the bound: smaller ``p`` and/or larger ``t``.
* :func:`strengthen_source` — restrict ``U`` to a syntactic subset.
* :func:`widen_target` — enlarge ``U'`` to a syntactic superset.

Each rule validates its side conditions and raises
:class:`~repro.errors.ProofError` rather than producing an unsound
statement; the ledger records which rule produced which statement.
"""

from __future__ import annotations

from repro.errors import ProofError
from repro.probability.space import as_fraction
from repro.proofs.statements import ArrowStatement, StateClass


def compose(
    first: ArrowStatement,
    second: ArrowStatement,
    schema_execution_closed: bool = True,
) -> ArrowStatement:
    """Theorem 3.4: chain two arrow statements through a common set.

    Side conditions checked: the statements quantify over the same
    adversary schema, that schema is execution closed (the theorem's
    hypothesis — pass the schema's flag), and the first statement's
    target is exactly the second's source.
    """
    if first.schema_name != second.schema_name:
        raise ProofError(
            "cannot compose statements proved against different schemas: "
            f"{first.schema_name!r} vs {second.schema_name!r}"
        )
    if not schema_execution_closed:
        raise ProofError(
            "Theorem 3.4 requires an execution-closed adversary schema "
            "(Definition 3.3)"
        )
    if first.target != second.source:
        raise ProofError(
            f"cannot compose: intermediate sets differ "
            f"({first.target.name!r} vs {second.source.name!r})"
        )
    return ArrowStatement(
        source=first.source,
        target=second.target,
        time_bound=first.time_bound + second.time_bound,
        probability=first.probability * second.probability,
        schema_name=first.schema_name,
    )


def union_rule(statement: ArrowStatement, extra: StateClass) -> ArrowStatement:
    """Proposition 3.2: add ``U''`` to both sides.

    If the system starts in ``U''`` the target union holds immediately
    (within time 0 <= t), so the derived statement is sound with the
    same ``t`` and ``p``.
    """
    return ArrowStatement(
        source=statement.source | extra,
        target=statement.target | extra,
        time_bound=statement.time_bound,
        probability=statement.probability,
        schema_name=statement.schema_name,
    )


def weaken(
    statement: ArrowStatement,
    probability=None,
    time_bound=None,
) -> ArrowStatement:
    """Relax a statement: lower its probability, raise its deadline.

    Both directions are sound for the reach-within-time event, whose
    probability is monotone in ``t`` and whose guarantee is a lower
    bound in ``p``.
    """
    new_probability = (
        statement.probability if probability is None else as_fraction(probability)
    )
    new_time = (
        statement.time_bound if time_bound is None else as_fraction(time_bound)
    )
    if new_probability > statement.probability:
        raise ProofError(
            f"cannot strengthen probability from {statement.probability} "
            f"to {new_probability}"
        )
    if new_time < statement.time_bound:
        raise ProofError(
            f"cannot tighten time bound from {statement.time_bound} to {new_time}"
        )
    return ArrowStatement(
        source=statement.source,
        target=statement.target,
        time_bound=new_time,
        probability=new_probability,
        schema_name=statement.schema_name,
    )


def strengthen_source(
    statement: ArrowStatement, smaller_source: StateClass
) -> ArrowStatement:
    """Restrict the start set: ``U0 ⊆ U`` gives ``U0 --t-->_p U'``.

    The subset relation is checked syntactically on atoms; use the
    ledger's registered inclusions for semantic subsets.
    """
    if not smaller_source.is_subset_by_atoms(statement.source):
        raise ProofError(
            f"{smaller_source.name!r} is not a syntactic subset of "
            f"{statement.source.name!r}"
        )
    return ArrowStatement(
        source=smaller_source,
        target=statement.target,
        time_bound=statement.time_bound,
        probability=statement.probability,
        schema_name=statement.schema_name,
    )


def widen_target(
    statement: ArrowStatement, larger_target: StateClass
) -> ArrowStatement:
    """Enlarge the goal set: ``U' ⊆ U''`` gives ``U --t-->_p U''``."""
    if not statement.target.is_subset_by_atoms(larger_target):
        raise ProofError(
            f"{statement.target.name!r} is not a syntactic subset of "
            f"{larger_target.name!r}"
        )
    return ArrowStatement(
        source=statement.source,
        target=larger_target,
        time_bound=statement.time_bound,
        probability=statement.probability,
        schema_name=statement.schema_name,
    )


def chain(
    statements: "list[ArrowStatement]",
    schema_execution_closed: bool = True,
) -> ArrowStatement:
    """Fold :func:`compose` over a list of statements, left to right."""
    if not statements:
        raise ProofError("cannot chain an empty list of statements")
    result = statements[0]
    for statement in statements[1:]:
        result = compose(result, statement, schema_execution_closed)
    return result
