"""Registered semantic inclusions between state classes.

The syntactic subset test of :class:`~repro.proofs.statements.StateClass`
(atom containment) cannot see semantic facts like ``G ⊆ RT`` or
``P ⊆ T`` — inclusions the paper uses freely because its sets are
defined by formulas.  An :class:`InclusionRegistry` lets a proof author
declare such inclusions, each with evidence text and an automatic
spot-check (every declared inclusion is validated on caller-supplied
sample states before it is accepted), and then use them to strengthen
sources / widen targets of arrow statements soundly.

Declared inclusions compose: the registry computes the reflexive
transitive closure, so declaring ``G ⊆ RT`` and ``RT ⊆ T`` makes
``G ⊆ T`` available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.errors import ProofError
from repro.proofs.statements import ArrowStatement, StateClass


@dataclass(frozen=True)
class Inclusion:
    """A declared fact ``smaller ⊆ larger`` with its justification."""

    smaller: StateClass
    larger: StateClass
    evidence: str


class InclusionRegistry:
    """A set of declared (and spot-checked) state-class inclusions."""

    def __init__(self):
        self._edges: Dict[StateClass, Set[StateClass]] = {}
        self._records: List[Inclusion] = []

    def declare(
        self,
        smaller: StateClass,
        larger: StateClass,
        evidence: str,
        samples: Iterable = (),
    ) -> Inclusion:
        """Register ``smaller ⊆ larger``.

        ``evidence`` documents why the inclusion holds (a definition,
        a lemma).  Every supplied sample state is checked: a state in
        ``smaller`` but not ``larger`` refutes the declaration and the
        registration is rejected — declarations are trusted, but not
        blindly.
        """
        if not evidence:
            raise ProofError("an inclusion needs nonempty evidence")
        for state in samples:
            if smaller.contains(state) and not larger.contains(state):
                raise ProofError(
                    f"declared inclusion {smaller.name} ⊆ {larger.name} "
                    f"is refuted by sample state {state!r}"
                )
        record = Inclusion(smaller=smaller, larger=larger, evidence=evidence)
        self._records.append(record)
        self._edges.setdefault(smaller, set()).add(larger)
        return record

    @property
    def declarations(self) -> Tuple[Inclusion, ...]:
        """All registered inclusions, in declaration order."""
        return tuple(self._records)

    def entails(self, smaller: StateClass, larger: StateClass) -> bool:
        """Is ``smaller ⊆ larger`` derivable?

        True when it holds syntactically (atom containment), or follows
        from declared inclusions by reflexivity, transitivity, and the
        union rules (``A ⊆ C`` and ``B ⊆ C`` give ``A ∪ B ⊆ C``;
        ``A ⊆ B`` gives ``A ⊆ B ∪ D``).
        """
        if smaller.is_subset_by_atoms(larger):
            return True
        # Decompose the left side into atoms: each atom (as a singleton
        # class, which we can only reach through registered classes)
        # must be below the right side.  We work at the level of
        # registered classes: BFS over declared edges, succeeding when
        # we reach any class syntactically below `larger`.
        frontier = [smaller]
        visited: Set[StateClass] = set()
        while frontier:
            current = frontier.pop()
            if current in visited:
                continue
            visited.add(current)
            if current.is_subset_by_atoms(larger):
                return True
            for above in self._edges.get(current, ()):
                if above.is_subset_by_atoms(larger):
                    return True
                frontier.append(above)
        return False

    # ------------------------------------------------------------------
    # Rules using the registry
    # ------------------------------------------------------------------

    def strengthen_source(
        self, statement: ArrowStatement, smaller_source: StateClass
    ) -> ArrowStatement:
        """``U0 ⊆ U`` (by the registry) gives ``U0 --t-->_p U'``."""
        if not self.entails(smaller_source, statement.source):
            raise ProofError(
                f"{smaller_source.name} ⊆ {statement.source.name} is not "
                "derivable from the registered inclusions"
            )
        return ArrowStatement(
            source=smaller_source,
            target=statement.target,
            time_bound=statement.time_bound,
            probability=statement.probability,
            schema_name=statement.schema_name,
        )

    def widen_target(
        self, statement: ArrowStatement, larger_target: StateClass
    ) -> ArrowStatement:
        """``U' ⊆ U''`` (by the registry) gives ``U --t-->_p U''``."""
        if not self.entails(statement.target, larger_target):
            raise ProofError(
                f"{statement.target.name} ⊆ {larger_target.name} is not "
                "derivable from the registered inclusions"
            )
        return ArrowStatement(
            source=statement.source,
            target=larger_target,
            time_bound=statement.time_bound,
            probability=statement.probability,
            schema_name=statement.schema_name,
        )
