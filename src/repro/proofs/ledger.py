"""A derivation ledger for arrow statements.

The paper's Section 6.2 proof is a small calculus: five leaf statements
(proved in the appendix) combined by Proposition 3.2 and Theorem 3.4.
:class:`ProofLedger` mechanises that calculus — leaves are *assumed*
with a piece of evidence (a citation, or a pointer to a verification
run), rules produce derived statements, and every statement carries its
full provenance, renderable as a proof tree.

The ledger is bound to one adversary schema.  Theorem 3.4's hypothesis
(execution closure) is captured once at construction and enforced on
every composition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro import obs
from repro.errors import ProofError
from repro.proofs import rules
from repro.proofs.statements import ArrowStatement, StateClass

StatementId = int


@dataclass(frozen=True)
class Derivation:
    """How one ledger statement was obtained."""

    statement: ArrowStatement
    rule: str
    premises: Tuple[StatementId, ...]
    evidence: str = ""


class ProofLedger:
    """An append-only log of arrow statements with provenance.

    All statements in a ledger quantify over the same adversary schema
    (by name); ``execution_closed`` is the ledger-level record of the
    Definition 3.3 hypothesis under which compositions are valid.
    """

    def __init__(self, schema_name: str, execution_closed: bool):
        self._schema_name = schema_name
        self._execution_closed = execution_closed
        self._entries: List[Derivation] = []

    @property
    def schema_name(self) -> str:
        """The adversary schema every statement quantifies over."""
        return self._schema_name

    @property
    def execution_closed(self) -> bool:
        """Whether compositions (Theorem 3.4) are permitted."""
        return self._execution_closed

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Leaves
    # ------------------------------------------------------------------

    def assume(self, statement: ArrowStatement, evidence: str) -> StatementId:
        """Record a leaf statement together with its supporting evidence.

        Evidence is free text: a citation ("Proposition A.11"), or a
        reference to a verification artifact.  The ledger does not judge
        evidence; it guarantees only that everything *derived* follows
        from the leaves by sound rules.
        """
        if statement.schema_name != self._schema_name:
            raise ProofError(
                f"statement is about schema {statement.schema_name!r}, "
                f"ledger is bound to {self._schema_name!r}"
            )
        if not evidence:
            raise ProofError("a leaf statement needs nonempty evidence")
        return self._append(
            Derivation(statement=statement, rule="assume", premises=(),
                       evidence=evidence)
        )

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------

    def compose(self, first: StatementId, second: StatementId) -> StatementId:
        """Theorem 3.4 on two ledger statements."""
        derived = rules.compose(
            self.statement(first),
            self.statement(second),
            schema_execution_closed=self._execution_closed,
        )
        return self._append(
            Derivation(derived, rule="compose (Thm 3.4)",
                       premises=(first, second))
        )

    def union(self, premise: StatementId, extra: StateClass) -> StatementId:
        """Proposition 3.2 on a ledger statement."""
        derived = rules.union_rule(self.statement(premise), extra)
        return self._append(
            Derivation(derived, rule=f"union with {extra.name} (Prop 3.2)",
                       premises=(premise,))
        )

    def weaken(
        self,
        premise: StatementId,
        probability=None,
        time_bound=None,
    ) -> StatementId:
        """Lower the probability and/or raise the deadline."""
        derived = rules.weaken(
            self.statement(premise), probability=probability,
            time_bound=time_bound,
        )
        return self._append(
            Derivation(derived, rule="weaken", premises=(premise,))
        )

    def strengthen_source(
        self, premise: StatementId, smaller_source: StateClass
    ) -> StatementId:
        """Restrict the start set to a syntactic subset."""
        derived = rules.strengthen_source(self.statement(premise), smaller_source)
        return self._append(
            Derivation(derived, rule=f"restrict source to {smaller_source.name}",
                       premises=(premise,))
        )

    def widen_target(
        self, premise: StatementId, larger_target: StateClass
    ) -> StatementId:
        """Enlarge the goal set to a syntactic superset."""
        derived = rules.widen_target(self.statement(premise), larger_target)
        return self._append(
            Derivation(derived, rule=f"widen target to {larger_target.name}",
                       premises=(premise,))
        )

    def chain(self, premises: Sequence[StatementId]) -> StatementId:
        """Left fold of :meth:`compose` over several statements."""
        if not premises:
            raise ProofError("cannot chain zero statements")
        current = premises[0]
        for nxt in premises[1:]:
            current = self.compose(current, nxt)
        return current

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def statement(self, statement_id: StatementId) -> ArrowStatement:
        """The statement with the given id."""
        return self._entry(statement_id).statement

    def derivation(self, statement_id: StatementId) -> Derivation:
        """The full derivation record for the given id."""
        return self._entry(statement_id)

    def leaves(self) -> List[Tuple[StatementId, Derivation]]:
        """All assumed (leaf) statements with their ids."""
        return [
            (i, entry)
            for i, entry in enumerate(self._entries)
            if entry.rule == "assume"
        ]

    def supporting_leaves(self, statement_id: StatementId) -> List[StatementId]:
        """The leaf statements a derived statement ultimately rests on."""
        seen: List[StatementId] = []

        def visit(current: StatementId) -> None:
            entry = self._entry(current)
            if entry.rule == "assume":
                if current not in seen:
                    seen.append(current)
                return
            for premise in entry.premises:
                visit(premise)

        visit(statement_id)
        return seen

    def explain(self, statement_id: StatementId) -> str:
        """Render the derivation tree of a statement as indented text."""
        lines: List[str] = []

        def visit(current: StatementId, depth: int) -> None:
            entry = self._entry(current)
            indent = "  " * depth
            suffix = f"  -- {entry.evidence}" if entry.evidence else ""
            lines.append(
                f"{indent}[{current}] {entry.statement!r} "
                f"by {entry.rule}{suffix}"
            )
            for premise in entry.premises:
                visit(premise, depth + 1)

        visit(statement_id, 0)
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _append(self, entry: Derivation) -> StatementId:
        self._entries.append(entry)
        if obs.enabled():
            # "compose (Thm 3.4)" -> "compose"; "union with X" -> "union".
            kind = entry.rule.split(None, 1)[0]
            obs.incr("ledger.applications")
            obs.incr(f"ledger.rule.{kind}")
        return len(self._entries) - 1

    def _entry(self, statement_id: StatementId) -> Derivation:
        if not 0 <= statement_id < len(self._entries):
            raise ProofError(f"no statement with id {statement_id}")
        return self._entries[statement_id]
