"""Expected-time bounds derived from arrow statements (Section 6.2).

The paper turns the composed progress statement into a constant bound on
*expected* time with a retry argument: departing from ``RT``,

* with probability at least 1/8, ``P`` is reached within time 10;
* with probability at most 1/2, time 5 is spent before failing at the
  third arrow (back to ``RT``);
* with probability at most 3/8, time 10 is spent before failing at the
  fourth arrow (back to ``RT``);

giving the recursion ``V = 1/8 * 10 + 1/2 * (5 + V1) + 3/8 * (10 + V2)``
whose expectation solves to ``E[V] = 60``, and an overall bound of 63
from a state of ``T`` (2 to enter ``RT``, 60 to ``P``, 1 to ``C``).

:class:`RetryRecursion` solves the general form
``E = sum_k c_k (t_k + r_k E)`` exactly; :func:`geometric_bound` gives
the cruder ``t/p`` bound obtained by treating the whole window as one
Bernoulli trial.  Both return exact rationals.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence, Tuple

from repro.errors import ProofError
from repro.probability.space import as_fraction
from repro.proofs.statements import ArrowStatement


@dataclass(frozen=True)
class RetryBranch:
    """One branch of a retry recursion.

    ``probability`` — the branch's weight (the paper uses upper bounds
    for failure branches and a lower bound for the success branch; using
    the extremes yields an upper bound on the expectation as long as
    failure branches are no cheaper than success, which
    :class:`RetryRecursion` checks).
    ``time`` — the time spent on this branch before it resolves.
    ``retries`` — whether the branch recurses (failure back to the start
    set) or terminates (success).
    """

    probability: Fraction
    time: Fraction
    retries: bool

    @classmethod
    def of(cls, probability, time, retries: bool) -> "RetryBranch":
        """Build a branch, normalising numeric inputs to fractions."""
        return cls(
            probability=as_fraction(probability),
            time=as_fraction(time),
            retries=retries,
        )


class RetryRecursion:
    """Solve ``E = sum_k c_k (t_k + r_k E)`` exactly.

    Requires the branch probabilities to sum to one and the retrying
    mass to be strictly below one (otherwise the expectation diverges).
    """

    def __init__(self, branches: Sequence[RetryBranch]):
        if not branches:
            raise ProofError("a retry recursion needs at least one branch")
        total = sum((b.probability for b in branches), Fraction(0))
        if total != 1:
            raise ProofError(f"branch probabilities sum to {total}, expected 1")
        retry_mass = sum(
            (b.probability for b in branches if b.retries), Fraction(0)
        )
        if retry_mass >= 1:
            raise ProofError(
                f"retrying probability mass {retry_mass} >= 1; the "
                "expectation diverges"
            )
        if any(b.probability < 0 or b.time < 0 for b in branches):
            raise ProofError("branch probabilities and times must be nonnegative")
        self._branches = tuple(branches)
        self._retry_mass = retry_mass

    @property
    def branches(self) -> Tuple[RetryBranch, ...]:
        """The branches of the recursion."""
        return self._branches

    def solve(self) -> Fraction:
        """The exact solution ``E``.

        ``E = (sum_k c_k t_k) / (1 - sum_{retrying k} c_k)``.
        """
        immediate = sum(
            (b.probability * b.time for b in self._branches), Fraction(0)
        )
        return immediate / (1 - self._retry_mass)


def geometric_bound(statement: ArrowStatement) -> Fraction:
    """The simple bound ``E <= t/p`` from repeating a ``U --t-->_p U'``.

    Each window of length ``t`` independently succeeds with probability
    at least ``p`` (by execution closure the statement re-applies at
    every failure, and failure returns the system to some state — for
    the bound to apply the statement's source must absorb failures,
    e.g. ``U = T`` for the Lehmann-Rabin top-level statement whose
    source is invariant).  The expected number of windows is at most
    ``1/p``.
    """
    if statement.probability == 0:
        raise ProofError("cannot bound expected time from a probability-0 arrow")
    return statement.time_bound / statement.probability


def expected_time_upper_bound(
    prefix_time, recursion: RetryRecursion, suffix_time
) -> Fraction:
    """A total expected-time bound: prefix + recursion solution + suffix.

    The paper's 63 = 2 (``T`` to ``RT``) + 60 (``RT`` to ``P`` via the
    recursion) + 1 (``P`` to ``C``).
    """
    return as_fraction(prefix_time) + recursion.solve() + as_fraction(suffix_time)
