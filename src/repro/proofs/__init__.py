"""The paper's proof method: arrow statements, rules, ledger, verifiers."""

from repro.proofs.expected_time import (
    RetryBranch,
    RetryRecursion,
    expected_time_upper_bound,
    geometric_bound,
)
from repro.proofs.inclusion import Inclusion, InclusionRegistry
from repro.proofs.ledger import Derivation, ProofLedger, StatementId
from repro.proofs.rules import (
    chain,
    compose,
    strengthen_source,
    union_rule,
    weaken,
    widen_target,
)
from repro.proofs.statements import ArrowStatement, StateClass
from repro.proofs.verifier import (
    ArrowCheckReport,
    ExactArrowReport,
    ExactPairCheck,
    PairCheck,
    StartTimeCount,
    TimeToTargetReport,
    check_arrow_by_sampling,
    check_arrow_exactly,
    measure_time_to_target,
)

__all__ = [
    "ArrowCheckReport",
    "ArrowStatement",
    "Derivation",
    "ExactArrowReport",
    "ExactPairCheck",
    "Inclusion",
    "InclusionRegistry",
    "PairCheck",
    "ProofLedger",
    "StartTimeCount",
    "RetryBranch",
    "RetryRecursion",
    "StateClass",
    "StatementId",
    "TimeToTargetReport",
    "chain",
    "check_arrow_by_sampling",
    "check_arrow_exactly",
    "compose",
    "expected_time_upper_bound",
    "geometric_bound",
    "measure_time_to_target",
    "strengthen_source",
    "union_rule",
    "weaken",
    "widen_target",
]
