"""Shared report plumbing for every verifier report type.

Three fragments of plumbing used to be duplicated (or nearly so) across
the sampling, exact, and time-to-target report paths in
:mod:`repro.proofs.verifier`: the checkpoint-scope marker for
outcome-affecting guard settings, root-seed resolution, and the
``to_dict`` row shaping for per-pair entries and quarantine records.
Centralising them here means a report produced by the compiled
state-space engine cannot drift from the tree engine's byte-for-byte —
both go through the same helpers.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.contracts import GuardConfig, QuarantinedPair
from repro.errors import VerificationError


def guard_scope_suffix(config: GuardConfig) -> str:
    """The checkpoint-scope marker for outcome-affecting guard settings.

    Off and warn (without fuel) produce identical outcomes, so they
    share the unmarked scope; strict mode can quarantine pairs and fuel
    budgets can truncate samples, so either segregates its checkpoints.
    The engine choice is deliberately *not* part of the scope: tree and
    compiled evaluation produce byte-identical outcomes, so checkpoints
    written under one engine resume cleanly under the other.
    """
    if not config.strict and not config.fuelled:
        return ""
    return (
        f"|guards={config.mode}"
        f"|fuel={config.fuel_steps},{config.fuel_seconds}"
    )


def resolve_root_seed(
    rng: Optional[random.Random], seed: Optional[int]
) -> int:
    """The root seed all per-task streams derive from.

    An explicit ``seed`` wins; otherwise one 64-bit draw from ``rng``
    becomes the root, so legacy rng-passing callers stay deterministic
    in the rng's state.
    """
    if seed is not None:
        return int(seed)
    if rng is None:
        raise VerificationError("supply an rng or an explicit seed")
    return rng.getrandbits(64)


def pair_row(adversary_name: str, start_state: object, **fields) -> dict:
    """One JSON-ready per-pair row: identity first, then the payload.

    Every report's ``checks`` rows lead with the same two identity keys
    so sinks and diff tools line pairs up across report kinds.
    """
    row = {"adversary": adversary_name, "start_state": repr(start_state)}
    row.update(fields)
    return row


def quarantined_rows(quarantined: Sequence[QuarantinedPair]) -> List[dict]:
    """The JSON-ready quarantine section shared by all report kinds."""
    return [entry.to_dict() for entry in quarantined]


def quarantine_from_violation(
    adversary_name: str, start_state: object, violation: Tuple[str, str]
) -> QuarantinedPair:
    """A quarantine record from a task outcome's ``(kind, message)``."""
    kind, message = violation
    return QuarantinedPair(
        adversary_name=adversary_name,
        start_state=repr(start_state),
        kind=kind,
        message=message,
    )
