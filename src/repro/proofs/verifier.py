"""Checking arrow statements against concrete automata.

An arrow statement quantifies over *all* start states in ``U`` and *all*
adversaries in a schema.  The verifier approximates that quantification
from the hostile side:

* :func:`check_arrow_by_sampling` — Monte-Carlo estimates of the success
  probability for every (adversary, start state) pair in a supplied
  family, with exact Clopper-Pearson bounds.  Truncated samples count as
  failures, so estimated lower bounds remain sound.
* :func:`check_arrow_exactly` — exact tree evaluation via
  :func:`repro.execution.measure.event_probability_bounds` for each pair
  (feasible for short horizons / small branching).

Both return a report whose ``worst`` entry is the empirically most
damaging pair; a statement is *refuted* when some pair's exact upper
confidence bound falls below the claimed probability.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Hashable, List, Sequence, Tuple, TypeVar

from repro import obs
from repro.adversary.base import Adversary
from repro.automaton.automaton import ProbabilisticAutomaton
from repro.automaton.execution import ExecutionFragment
from repro.errors import VerificationError
from repro.events.reach import ReachWithinTime
from repro.execution.automaton import ExecutionAutomaton
from repro.execution.measure import EventBounds, event_probability_bounds
from repro.execution.sampler import sample_event
from repro.probability.stats import (
    BernoulliSummary,
    clopper_pearson_lower,
    clopper_pearson_upper,
)
from repro.proofs.statements import ArrowStatement

State = TypeVar("State", bound=Hashable)


@dataclass(frozen=True)
class PairCheck:
    """Sampling outcome for one (adversary, start state) pair."""

    adversary_name: str
    start_state: object
    summary: BernoulliSummary
    truncated: int

    @property
    def estimate(self) -> float:
        """Point estimate of the success probability for this pair."""
        return self.summary.estimate

    def to_dict(self) -> dict:
        """A stable, JSON-ready summary of this pair's outcome."""
        return {
            "adversary": self.adversary_name,
            "start_state": repr(self.start_state),
            "successes": self.summary.successes,
            "trials": self.summary.trials,
            "estimate": self.estimate,
            "truncated": self.truncated,
        }


@dataclass(frozen=True)
class ArrowCheckReport:
    """The aggregated verdict of a sampling check."""

    statement: ArrowStatement
    checks: Tuple[PairCheck, ...]
    confidence: float

    @property
    def worst(self) -> PairCheck:
        """The pair with the lowest estimated success probability."""
        return min(self.checks, key=lambda c: c.estimate)

    @property
    def min_estimate(self) -> float:
        """The lowest success-probability estimate across pairs."""
        return self.worst.estimate

    @property
    def refuted(self) -> bool:
        """True when some pair statistically refutes the claimed bound.

        Uses the exact upper confidence bound: if even the optimistic
        reading of a pair's data stays below ``p``, no adversary-side
        slack can rescue the statement.
        """
        claimed = float(self.statement.probability)
        return any(
            clopper_pearson_upper(check.summary, self.confidence) < claimed
            for check in self.checks
        )

    @property
    def supported(self) -> bool:
        """True when every pair's lower confidence bound meets ``p``."""
        claimed = float(self.statement.probability)
        return all(
            clopper_pearson_lower(check.summary, self.confidence) >= claimed
            for check in self.checks
        )

    def summary_line(self) -> str:
        """A one-line human-readable digest for reports."""
        worst = self.worst
        verdict = (
            "REFUTED" if self.refuted else
            ("supported" if self.supported else "consistent")
        )
        return (
            f"{self.statement!r}: min estimate {self.min_estimate:.4f} "
            f"(claimed >= {float(self.statement.probability):.4f}) under "
            f"{worst.adversary_name} -- {verdict}"
        )

    def to_dict(self) -> dict:
        """A stable, JSON-ready summary for sinks and report writers."""
        return {
            "kind": "arrow_check",
            "statement": repr(self.statement),
            "claimed": float(self.statement.probability),
            "confidence": self.confidence,
            "min_estimate": self.min_estimate,
            "refuted": self.refuted,
            "supported": self.supported,
            "checks": [check.to_dict() for check in self.checks],
        }


def check_arrow_by_sampling(
    automaton: ProbabilisticAutomaton[State],
    statement: ArrowStatement,
    adversaries: Sequence[Tuple[str, Adversary[State]]],
    start_states: Sequence[State],
    time_of: Callable[[State], Fraction],
    rng: random.Random,
    samples_per_pair: int = 200,
    max_steps: int = 2_000,
    confidence: float = 0.99,
) -> ArrowCheckReport:
    """Monte-Carlo check of ``statement`` over an adversary family.

    Every start state must lie in the statement's source set (checked).
    Truncated runs count as failures, keeping the estimates sound as
    lower bounds on the true success probability.
    """
    if not adversaries:
        raise VerificationError("no adversaries supplied")
    if not start_states:
        raise VerificationError("no start states supplied")
    if samples_per_pair <= 0:
        raise VerificationError("samples_per_pair must be positive")

    checks: List[PairCheck] = []
    with obs.span(
        "verify.arrow_check",
        statement=repr(statement),
        adversaries=len(adversaries),
        starts=len(start_states),
        samples_per_pair=samples_per_pair,
    ) as span:
        for name, adversary in adversaries:
            for start in start_states:
                if not statement.source.contains(start):
                    raise VerificationError(
                        f"start state {start!r} is not in the statement's "
                        f"source set {statement.source.name!r}"
                    )
                schema = ReachWithinTime(
                    target=statement.target.contains,
                    time_bound=statement.time_bound,
                    time_of=time_of,
                )
                fragment = ExecutionFragment.initial(start)
                successes = 0
                truncated = 0
                for _ in range(samples_per_pair):
                    result = sample_event(
                        automaton, adversary, fragment, schema, rng, max_steps
                    )
                    if result.truncated:
                        truncated += 1
                    elif result.verdict:
                        successes += 1
                checks.append(
                    PairCheck(
                        adversary_name=name,
                        start_state=start,
                        summary=BernoulliSummary(successes, samples_per_pair),
                        truncated=truncated,
                    )
                )
                if obs.enabled():
                    obs.incr("verifier.pairs")
                    obs.incr("verifier.samples", samples_per_pair)
                    obs.incr("verifier.successes", successes)
                    obs.incr("verifier.truncated", truncated)
                    obs.observe(
                        "verifier.pair_estimate", successes / samples_per_pair
                    )
        report = ArrowCheckReport(
            statement=statement, checks=tuple(checks), confidence=confidence
        )
        span.annotate(
            min_estimate=report.min_estimate, refuted=report.refuted
        )
    return report


@dataclass(frozen=True)
class ExactPairCheck:
    """Exact bounds for one (adversary, start state) pair."""

    adversary_name: str
    start_state: object
    bounds: EventBounds


@dataclass(frozen=True)
class ExactArrowReport:
    """The aggregated verdict of an exact tree-evaluation check."""

    statement: ArrowStatement
    checks: Tuple[ExactPairCheck, ...]

    @property
    def min_lower_bound(self) -> Fraction:
        """The worst exact lower bound across all pairs."""
        return min(check.bounds.lower for check in self.checks)

    @property
    def holds_for_family(self) -> bool:
        """True when every pair's exact lower bound meets ``p``."""
        return self.min_lower_bound >= self.statement.probability

    @property
    def refuted(self) -> bool:
        """True when some pair's exact *upper* bound falls below ``p``.

        A genuine counterexample: for that adversary and start state the
        event's probability is provably below the claim.
        """
        return any(
            check.bounds.upper < self.statement.probability
            for check in self.checks
        )

    def to_dict(self) -> dict:
        """A stable, JSON-ready summary for sinks and report writers."""
        return {
            "kind": "exact_arrow",
            "statement": repr(self.statement),
            "claimed": float(self.statement.probability),
            "min_lower_bound": float(self.min_lower_bound),
            "holds_for_family": self.holds_for_family,
            "refuted": self.refuted,
            "checks": [
                {
                    "adversary": check.adversary_name,
                    "start_state": repr(check.start_state),
                    "lower": float(check.bounds.lower),
                    "upper": float(check.bounds.upper),
                }
                for check in self.checks
            ],
        }


def check_arrow_exactly(
    automaton: ProbabilisticAutomaton[State],
    statement: ArrowStatement,
    adversaries: Sequence[Tuple[str, Adversary[State]]],
    start_states: Sequence[State],
    time_of: Callable[[State], Fraction],
    max_steps: int = 60,
) -> ExactArrowReport:
    """Exact check of ``statement`` over an adversary family.

    Exponential in ``max_steps`` in the worst case; intended for short
    horizons (the per-phase arrows of the Lehmann-Rabin proof) and for
    small explicit automata in tests.
    """
    if not adversaries:
        raise VerificationError("no adversaries supplied")
    if not start_states:
        raise VerificationError("no start states supplied")
    checks: List[ExactPairCheck] = []
    with obs.span(
        "verify.exact_arrow_check",
        statement=repr(statement),
        adversaries=len(adversaries),
        starts=len(start_states),
    ):
        for name, adversary in adversaries:
            for start in start_states:
                if not statement.source.contains(start):
                    raise VerificationError(
                        f"start state {start!r} is not in the statement's "
                        f"source set {statement.source.name!r}"
                    )
                schema = ReachWithinTime(
                    target=statement.target.contains,
                    time_bound=statement.time_bound,
                    time_of=time_of,
                )
                execution_automaton = ExecutionAutomaton(
                    automaton, adversary, ExecutionFragment.initial(start)
                )
                bounds = event_probability_bounds(
                    execution_automaton, schema, max_steps
                )
                checks.append(ExactPairCheck(name, start, bounds))
                obs.incr("verifier.exact_pairs")
    return ExactArrowReport(statement=statement, checks=tuple(checks))


@dataclass(frozen=True)
class TimeToTargetReport:
    """Sampled time-to-target statistics for one adversary."""

    adversary_name: str
    times: Tuple[Fraction, ...]
    unreached: int

    @property
    def mean(self) -> float:
        """Mean time over the samples that did reach the target."""
        if not self.times:
            raise VerificationError("no sample reached the target")
        return float(sum(self.times) / len(self.times))

    @property
    def maximum(self) -> Fraction:
        """The slowest observed time-to-target."""
        if not self.times:
            raise VerificationError("no sample reached the target")
        return max(self.times)

    def to_dict(self) -> dict:
        """A stable, JSON-ready summary for sinks and report writers."""
        reached = len(self.times)
        return {
            "kind": "time_to_target",
            "adversary": self.adversary_name,
            "samples": reached + self.unreached,
            "reached": reached,
            "unreached": self.unreached,
            "mean": self.mean if self.times else None,
            "max": float(self.maximum) if self.times else None,
        }


def measure_time_to_target(
    automaton: ProbabilisticAutomaton[State],
    adversary_name: str,
    adversary: Adversary[State],
    start_states: Sequence[State],
    target: Callable[[State], bool],
    time_of: Callable[[State], Fraction],
    rng: random.Random,
    samples: int = 200,
    max_steps: int = 20_000,
) -> TimeToTargetReport:
    """Sample the time until ``target`` holds, for expected-time claims.

    Runs that never reach the target within the step budget are counted
    in ``unreached`` and excluded from the mean — report both; a nonzero
    ``unreached`` under a Unit-Time adversary signals either a too-small
    budget or a genuine liveness problem.
    """
    from repro.execution.sampler import sample_time_until

    if samples <= 0:
        raise VerificationError("samples must be positive")
    times: List[Fraction] = []
    unreached = 0
    with obs.span(
        "verify.time_to_target", adversary=adversary_name, samples=samples
    ) as span:
        for index in range(samples):
            start = start_states[index % len(start_states)]
            elapsed = sample_time_until(
                automaton,
                adversary,
                ExecutionFragment.initial(start),
                target,
                time_of,
                rng,
                max_steps,
            )
            if elapsed is None:
                unreached += 1
            else:
                times.append(elapsed)
        report = TimeToTargetReport(
            adversary_name=adversary_name, times=tuple(times),
            unreached=unreached,
        )
        span.annotate(
            unreached=unreached,
            mean=report.mean if times else None,
        )
    return report
