"""Checking arrow statements against concrete automata.

An arrow statement quantifies over *all* start states in ``U`` and *all*
adversaries in a schema.  The verifier approximates that quantification
from the hostile side:

* :func:`check_arrow_by_sampling` — Monte-Carlo estimates of the success
  probability for every (adversary, start state) pair in a supplied
  family, with exact Clopper-Pearson bounds.  Truncated samples count as
  failures, so estimated lower bounds remain sound.
* :func:`check_arrow_exactly` — exact tree evaluation via
  :func:`repro.execution.measure.event_probability_bounds` for each pair
  (feasible for short horizons / small branching).

Both return a report whose ``worst`` entry is the empirically most
damaging pair; a statement is *refuted* when some pair's exact upper
confidence bound falls below the claimed probability.

Sampling checks quantify over independent pairs, so they parallelise:
``workers > 1`` fans pairs out over :mod:`repro.parallel`'s fork pool.
Every pair draws from its own deterministically derived seed
(``root seed + adversary name + start repr + occurrence index``), so
reports are bit-identical for ``workers=1`` and ``workers=N`` and
independent of scheduling order (see ``docs/parallel.md``).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from fractions import Fraction
from typing import (
    Callable,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro import contracts, obs
from repro.adversary.base import Adversary, AdversarySchema
from repro.automaton.automaton import ProbabilisticAutomaton
from repro.contracts import GuardConfig, QuarantinedPair
from repro.errors import VerificationError
from repro.execution.measure import EventBounds
from repro.parallel.backend import (
    DEFAULT_CHUNK_SIZE,
    ArrowPairContext,
    PairTask,
    TimeStartContext,
    TimeStartTask,
    decode_pair_outcome,
    decode_time_outcome,
    encode_pair_outcome,
    encode_time_outcome,
    execute_pair,
    execute_time_start,
    occurrence_indices,
)
from repro.parallel.pool import RunPolicy, run_tasks
from repro.parallel.seeds import derive_seed
from repro.probability.stats import (
    BernoulliSummary,
    clopper_pearson_lower,
    clopper_pearson_upper,
)
from repro.proofs.reporting import (
    guard_scope_suffix,
    pair_row,
    quarantine_from_violation,
    quarantined_rows,
    resolve_root_seed,
)
from repro.proofs.statements import ArrowStatement
from repro.statespace.compile import SpaceSpec
from repro.statespace.engine import build_engine

State = TypeVar("State", bound=Hashable)


@dataclass(frozen=True)
class PairCheck:
    """Sampling outcome for one (adversary, start state) pair."""

    adversary_name: str
    start_state: object
    summary: BernoulliSummary
    truncated: int

    @property
    def estimate(self) -> float:
        """Point estimate of the success probability for this pair."""
        return self.summary.estimate

    def to_dict(self) -> dict:
        """A stable, JSON-ready summary of this pair's outcome."""
        return pair_row(
            self.adversary_name,
            self.start_state,
            successes=self.summary.successes,
            trials=self.summary.trials,
            estimate=self.estimate,
            truncated=self.truncated,
        )


@dataclass(frozen=True)
class ArrowCheckReport:
    """The aggregated verdict of a sampling check.

    ``quarantined`` lists the (adversary, start) pairs a strict-guard
    run skipped because model code broke a contract mid-pair; their
    counts never enter the statistics, and a report with any
    quarantined pair cannot claim ``supported``.
    """

    statement: ArrowStatement
    checks: Tuple[PairCheck, ...]
    confidence: float
    quarantined: Tuple[QuarantinedPair, ...] = field(default=())

    @property
    def worst(self) -> PairCheck:
        """The pair with the lowest estimated success probability.

        Estimate ties break on (adversary name, start repr), not list
        position, so the reported worst pair — and every summary line
        built from it — is stable across backends and pair orderings.
        """
        if not self.checks:
            raise VerificationError(
                "no healthy pairs to rank: every pair was quarantined"
            )
        return min(
            self.checks,
            key=lambda c: (c.estimate, c.adversary_name, repr(c.start_state)),
        )

    @property
    def min_estimate(self) -> float:
        """The lowest success-probability estimate across healthy pairs
        (NaN when every pair was quarantined)."""
        if not self.checks:
            return float("nan")
        return self.worst.estimate

    @property
    def refuted(self) -> bool:
        """True when some pair statistically refutes the claimed bound.

        Uses the exact upper confidence bound: if even the optimistic
        reading of a pair's data stays below ``p``, no adversary-side
        slack can rescue the statement.
        """
        claimed = float(self.statement.probability)
        return any(
            clopper_pearson_upper(check.summary, self.confidence) < claimed
            for check in self.checks
        )

    @property
    def supported(self) -> bool:
        """True when every pair's lower confidence bound meets ``p``.

        Quarantined pairs produced no evidence, so any quarantine
        forfeits support.
        """
        if not self.checks or self.quarantined:
            return False
        claimed = float(self.statement.probability)
        return all(
            clopper_pearson_lower(check.summary, self.confidence) >= claimed
            for check in self.checks
        )

    def summary_line(self) -> str:
        """A one-line human-readable digest for reports."""
        if not self.checks:
            return (
                f"{self.statement!r}: no healthy pairs "
                f"({len(self.quarantined)} quarantined)"
            )
        worst = self.worst
        verdict = (
            "REFUTED" if self.refuted else
            ("supported" if self.supported else "consistent")
        )
        line = (
            f"{self.statement!r}: min estimate {self.min_estimate:.4f} "
            f"(claimed >= {float(self.statement.probability):.4f}) under "
            f"{worst.adversary_name} -- {verdict}"
        )
        if self.quarantined:
            line += f" [{len(self.quarantined)} pair(s) quarantined]"
        return line

    def to_dict(self) -> dict:
        """A stable, JSON-ready summary for sinks and report writers."""
        return {
            "kind": "arrow_check",
            "statement": repr(self.statement),
            "claimed": float(self.statement.probability),
            "confidence": self.confidence,
            "min_estimate": self.min_estimate if self.checks else None,
            "refuted": self.refuted,
            "supported": self.supported,
            "checks": [check.to_dict() for check in self.checks],
            "quarantined": quarantined_rows(self.quarantined),
        }


def check_arrow_by_sampling(
    automaton: ProbabilisticAutomaton[State],
    statement: ArrowStatement,
    adversaries: Sequence[Tuple[str, Adversary[State]]],
    start_states: Sequence[State],
    time_of: Callable[[State], Fraction],
    rng: Optional[random.Random] = None,
    samples_per_pair: int = 200,
    max_steps: int = 2_000,
    confidence: float = 0.99,
    *,
    seed: Optional[int] = None,
    workers: int = 1,
    early_stop: bool = False,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    policy: Optional[RunPolicy] = None,
    schema: Optional[AdversarySchema] = None,
    guards: Optional[GuardConfig] = None,
    engine: str = "tree",
    space_spec: Optional[SpaceSpec] = None,
    state_budget: Optional[int] = None,
) -> ArrowCheckReport:
    """Monte-Carlo check of ``statement`` over an adversary family.

    Every start state must lie in the statement's source set (checked).
    Truncated runs count as failures, keeping the estimates sound as
    lower bounds on the true success probability.

    Each (adversary, start state) pair samples from its own stream,
    seeded by a stable hash of the root seed (``seed``, or one draw
    from ``rng``) and the pair's identity — so the report is
    bit-identical for any ``workers`` count, and adding pairs never
    perturbs existing ones.  With ``early_stop``, a pair stops sampling
    (in ``chunk_size`` increments, ``samples_per_pair`` remaining the
    cap) once its Clopper-Pearson bounds already classify it against
    the claimed probability; ``BernoulliSummary.trials`` records the
    samples actually drawn.

    ``policy`` configures the fault-tolerant runtime (per-task
    timeouts, retries, checkpoint/resume, fault injection); since a
    pair's outcome is a pure function of its derived seed, none of it
    changes the report (see ``docs/robustness.md``).

    ``guards`` selects the contract-check mode (default: the installed
    :func:`repro.contracts.active` config) and ``schema`` names the
    adversary schema the family is declared to range over, enabling
    membership and execution-closure spot checks.  Guard checks consume
    no sample randomness, so warn-mode reports are byte-identical to
    guards-off on healthy models; in strict mode a violating pair is
    quarantined (reported in ``report.quarantined``) while the rest of
    the run completes (see ``docs/contracts.md``).

    ``engine`` selects the evaluation strategy (``tree``, ``compiled``,
    or ``auto``); ``space_spec`` supplies the compile quotient and
    ``state_budget`` the interning cap (see ``docs/statespace.md``).
    Reports are byte-identical across engines.
    """
    if not adversaries:
        raise VerificationError("no adversaries supplied")
    if not start_states:
        raise VerificationError("no start states supplied")
    if samples_per_pair <= 0:
        raise VerificationError("samples_per_pair must be positive")
    if chunk_size <= 0:
        raise VerificationError("chunk_size must be positive")

    guard_config = guards if guards is not None else contracts.active()
    guard_config.validate()
    root_seed = resolve_root_seed(rng, seed)
    pairs: List[Tuple[str, State]] = []
    for name, _ in adversaries:
        for start in start_states:
            if not statement.source.contains(start):
                raise VerificationError(
                    f"start state {start!r} is not in the statement's "
                    f"source set {statement.source.name!r}"
                )
            pairs.append((name, start))
    occurrences = occurrence_indices(
        [(name, repr(start)) for name, start in pairs]
    )
    tasks = [
        PairTask(
            index=index,
            adversary_index=index // len(start_states),
            start_index=index % len(start_states),
            seed=derive_seed(root_seed, name, repr(start), occurrence),
        )
        for index, ((name, start), occurrence) in enumerate(
            zip(pairs, occurrences)
        )
    ]
    engine_obj = build_engine(
        automaton,
        tuple(adversaries),
        tuple(start_states),
        statement.target.contains,
        time_of,
        statement.time_bound,
        max_steps,
        engine=engine,
        spec=space_spec,
        state_budget=state_budget,
        guards=guard_config,
    )
    context = ArrowPairContext(
        automaton=automaton,
        adversaries=tuple(adversaries),
        start_states=tuple(start_states),
        target=statement.target.contains,
        time_bound=statement.time_bound,
        time_of=time_of,
        samples_per_pair=samples_per_pair,
        max_steps=max_steps,
        claimed=float(statement.probability),
        confidence=confidence,
        early_stop=early_stop,
        chunk_size=chunk_size,
        schema=schema,
        guards=guard_config,
        engine=engine_obj,
    )
    # Everything (besides the task seed) a pair's outcome depends on;
    # checkpointed results are only reused within a matching scope.
    # Off and warn produce identical outcomes (guard checks never touch
    # the sample streams), so they share a scope; strict can quarantine,
    # so its checkpoints are segregated.
    scope = (
        f"arrow|{statement!r}|spp={samples_per_pair}|steps={max_steps}"
        f"|conf={confidence}|early={int(early_stop)}|chunk={chunk_size}"
    )
    scope += guard_scope_suffix(guard_config)
    with obs.span(
        "verify.arrow_check",
        statement=repr(statement),
        adversaries=len(adversaries),
        starts=len(start_states),
        samples_per_pair=samples_per_pair,
        workers=workers,
    ) as span:
        outcomes = run_tasks(
            execute_pair, context, tasks, workers,
            policy=policy, scope=scope,
            encode=encode_pair_outcome, decode=decode_pair_outcome,
        )
        checks: List[PairCheck] = []
        quarantined: List[QuarantinedPair] = []
        for (name, start), outcome in zip(pairs, outcomes):
            if outcome.violation is not None:
                quarantined.append(
                    quarantine_from_violation(name, start, outcome.violation)
                )
            else:
                checks.append(
                    PairCheck(
                        adversary_name=name,
                        start_state=start,
                        summary=BernoulliSummary(
                            outcome.successes, outcome.trials
                        ),
                        truncated=outcome.truncated,
                    )
                )
        report = ArrowCheckReport(
            statement=statement, checks=tuple(checks), confidence=confidence,
            quarantined=tuple(quarantined),
        )
        span.annotate(
            min_estimate=report.min_estimate if checks else None,
            refuted=report.refuted,
            quarantined=len(quarantined),
        )
    return report


@dataclass(frozen=True)
class ExactPairCheck:
    """Exact bounds for one (adversary, start state) pair."""

    adversary_name: str
    start_state: object
    bounds: EventBounds


@dataclass(frozen=True)
class ExactArrowReport:
    """The aggregated verdict of an exact tree-evaluation check."""

    statement: ArrowStatement
    checks: Tuple[ExactPairCheck, ...]

    @property
    def min_lower_bound(self) -> Fraction:
        """The worst exact lower bound across all pairs."""
        return min(check.bounds.lower for check in self.checks)

    @property
    def holds_for_family(self) -> bool:
        """True when every pair's exact lower bound meets ``p``."""
        return self.min_lower_bound >= self.statement.probability

    @property
    def refuted(self) -> bool:
        """True when some pair's exact *upper* bound falls below ``p``.

        A genuine counterexample: for that adversary and start state the
        event's probability is provably below the claim.
        """
        return any(
            check.bounds.upper < self.statement.probability
            for check in self.checks
        )

    def to_dict(self) -> dict:
        """A stable, JSON-ready summary for sinks and report writers."""
        return {
            "kind": "exact_arrow",
            "statement": repr(self.statement),
            "claimed": float(self.statement.probability),
            "min_lower_bound": float(self.min_lower_bound),
            "holds_for_family": self.holds_for_family,
            "refuted": self.refuted,
            "checks": [
                pair_row(
                    check.adversary_name,
                    check.start_state,
                    lower=float(check.bounds.lower),
                    upper=float(check.bounds.upper),
                )
                for check in self.checks
            ],
        }


def check_arrow_exactly(
    automaton: ProbabilisticAutomaton[State],
    statement: ArrowStatement,
    adversaries: Sequence[Tuple[str, Adversary[State]]],
    start_states: Sequence[State],
    time_of: Callable[[State], Fraction],
    max_steps: int = 60,
    *,
    guards: Optional[GuardConfig] = None,
    engine: str = "tree",
    space_spec: Optional[SpaceSpec] = None,
    state_budget: Optional[int] = None,
) -> ExactArrowReport:
    """Exact check of ``statement`` over an adversary family.

    Exponential in ``max_steps`` in the worst case under the tree
    engine; intended for short horizons (the per-phase arrows of the
    Lehmann-Rabin proof) and for small explicit automata in tests.  The
    compiled engine shares subtrees through the interned space, so it
    handles far deeper horizons at the same exact answers.  ``guards``
    reroutes adversary validation through the contracts layer; with the
    default ``None`` the historical ``checked_choose`` behaviour is
    kept.  ``engine``/``space_spec``/``state_budget`` select and
    configure the evaluation strategy (see ``docs/statespace.md``).
    """
    if not adversaries:
        raise VerificationError("no adversaries supplied")
    if not start_states:
        raise VerificationError("no start states supplied")
    for start in start_states:
        if not statement.source.contains(start):
            raise VerificationError(
                f"start state {start!r} is not in the statement's "
                f"source set {statement.source.name!r}"
            )
    engine_obj = build_engine(
        automaton,
        tuple(adversaries),
        tuple(start_states),
        statement.target.contains,
        time_of,
        statement.time_bound,
        max_steps,
        engine=engine,
        spec=space_spec,
        state_budget=state_budget,
        guards=guards,
    )
    checks: List[ExactPairCheck] = []
    with obs.span(
        "verify.exact_arrow_check",
        statement=repr(statement),
        adversaries=len(adversaries),
        starts=len(start_states),
    ):
        for adversary_index, (name, _) in enumerate(adversaries):
            for start_index, start in enumerate(start_states):
                bounds = engine_obj.exact_reach(
                    adversary_index, start_index, max_steps
                )
                checks.append(ExactPairCheck(name, start, bounds))
                obs.incr("verifier.exact_pairs")
    return ExactArrowReport(statement=statement, checks=tuple(checks))


@dataclass(frozen=True)
class StartTimeCount:
    """Per-start sample accounting for a time-to-target measurement."""

    start_state: object
    samples: int
    reached: int

    def to_dict(self) -> dict:
        """A stable, JSON-ready summary of this start's share."""
        return {
            "start_state": repr(self.start_state),
            "samples": self.samples,
            "reached": self.reached,
            "unreached": self.samples - self.reached,
        }


@dataclass(frozen=True)
class TimeToTargetReport:
    """Sampled time-to-target statistics for one adversary."""

    adversary_name: str
    times: Tuple[Fraction, ...]
    unreached: int
    per_start: Tuple[StartTimeCount, ...] = field(default=())
    #: Starts a strict-guard run skipped; their replicates are excluded
    #: from ``times``/``unreached`` and from the per-start table.
    quarantined: Tuple[QuarantinedPair, ...] = field(default=())

    @property
    def mean(self) -> float:
        """Mean time over the samples that did reach the target."""
        if not self.times:
            raise VerificationError("no sample reached the target")
        return float(sum(self.times) / len(self.times))

    @property
    def maximum(self) -> Fraction:
        """The slowest observed time-to-target."""
        if not self.times:
            raise VerificationError("no sample reached the target")
        return max(self.times)

    def to_dict(self) -> dict:
        """A stable, JSON-ready summary for sinks and report writers."""
        reached = len(self.times)
        return {
            "kind": "time_to_target",
            "adversary": self.adversary_name,
            "samples": reached + self.unreached,
            "reached": reached,
            "unreached": self.unreached,
            "mean": self.mean if self.times else None,
            "max": float(self.maximum) if self.times else None,
            "per_start": [count.to_dict() for count in self.per_start],
            "quarantined": quarantined_rows(self.quarantined),
        }


def measure_time_to_target(
    automaton: ProbabilisticAutomaton[State],
    adversary_name: str,
    adversary: Adversary[State],
    start_states: Sequence[State],
    target: Callable[[State], bool],
    time_of: Callable[[State], Fraction],
    rng: Optional[random.Random] = None,
    samples: int = 200,
    max_steps: int = 20_000,
    *,
    seed: Optional[int] = None,
    workers: int = 1,
    policy: Optional[RunPolicy] = None,
    schema: Optional[AdversarySchema] = None,
    guards: Optional[GuardConfig] = None,
    engine: str = "tree",
    space_spec: Optional[SpaceSpec] = None,
    state_budget: Optional[int] = None,
) -> TimeToTargetReport:
    """Sample the time until ``target`` holds, for expected-time claims.

    Every start state receives the *same* number of runs —
    ``ceil(samples / len(start_states))`` — so no start is silently
    over-weighted in the mean when ``samples`` is not a multiple of the
    start count (``samples`` is a floor on the total; the per-start
    share is reported in ``to_dict()['per_start']``).  Each start
    samples from its own derived stream, so reports are bit-identical
    for any ``workers`` count.

    Runs that never reach the target within the step budget are counted
    in ``unreached`` and excluded from the mean — report both; a nonzero
    ``unreached`` under a Unit-Time adversary signals either a too-small
    budget or a genuine liveness problem.
    """
    if samples <= 0:
        raise VerificationError("samples must be positive")
    if not start_states:
        raise VerificationError("no start states supplied")
    guard_config = guards if guards is not None else contracts.active()
    guard_config.validate()
    root_seed = resolve_root_seed(rng, seed)
    samples_per_start = math.ceil(samples / len(start_states))
    occurrences = occurrence_indices(
        [repr(start) for start in start_states]
    )
    tasks = [
        TimeStartTask(
            index=index,
            start_index=index,
            seed=derive_seed(
                root_seed, adversary_name, repr(start), occurrence
            ),
        )
        for index, (start, occurrence) in enumerate(
            zip(start_states, occurrences)
        )
    ]
    engine_obj = build_engine(
        automaton,
        ((adversary_name, adversary),),
        tuple(start_states),
        target,
        time_of,
        None,
        max_steps,
        engine=engine,
        spec=space_spec,
        state_budget=state_budget,
        guards=guard_config,
    )
    context = TimeStartContext(
        automaton=automaton,
        adversary=adversary,
        start_states=tuple(start_states),
        target=target,
        time_of=time_of,
        samples_per_start=samples_per_start,
        max_steps=max_steps,
        adversary_name=adversary_name,
        schema=schema,
        guards=guard_config,
        engine=engine_obj,
    )
    total = samples_per_start * len(start_states)
    scope = (
        f"time|{adversary_name}|sps={samples_per_start}|steps={max_steps}"
    ) + guard_scope_suffix(guard_config)
    with obs.span(
        "verify.time_to_target", adversary=adversary_name, samples=total,
        workers=workers,
    ) as span:
        outcomes = run_tasks(
            execute_time_start, context, tasks, workers,
            policy=policy, scope=scope,
            encode=encode_time_outcome, decode=decode_time_outcome,
        )
        times: List[Fraction] = []
        per_start: List[StartTimeCount] = []
        quarantined: List[QuarantinedPair] = []
        unreached = 0
        for start, outcome in zip(start_states, outcomes):
            if outcome.violation is not None:
                quarantined.append(
                    quarantine_from_violation(
                        adversary_name, start, outcome.violation
                    )
                )
                continue
            times.extend(outcome.times)
            unreached += outcome.unreached
            per_start.append(
                StartTimeCount(
                    start_state=start,
                    samples=samples_per_start,
                    reached=len(outcome.times),
                )
            )
        report = TimeToTargetReport(
            adversary_name=adversary_name, times=tuple(times),
            unreached=unreached, per_start=tuple(per_start),
            quarantined=tuple(quarantined),
        )
        span.annotate(
            unreached=unreached,
            mean=report.mean if times else None,
            quarantined=len(quarantined),
        )
    return report
