"""Arrow statements ``U --t-->_p U'`` (Definition 3.1).

An arrow statement asserts: starting from any state of ``U`` and under
any adversary of the schema ``Advs``, the probability that a state of
``U'`` is reached within time ``t`` is at least ``p``.  This module
makes the statement a first-class value so that the proof rules of
:mod:`repro.proofs.rules` can manipulate it mechanically.

State sets are represented by :class:`StateClass`: a union of named
atoms, each with a predicate.  Statement composition (Theorem 3.4)
requires the intermediate sets of two statements to be *the same set*;
comparing predicates is undecidable, so equality is by the atom names —
``(G | P) | (G | P) == G | P`` holds definitionally, which is exactly
the algebra the paper's Section 6.2 chain needs.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, FrozenSet, Hashable, TypeVar

from repro.errors import ProofError
from repro.probability.space import as_fraction

State = TypeVar("State", bound=Hashable)


class StateClass:
    """A named union of state-set atoms, each backed by a predicate.

    ``StateClass("G", is_good) | StateClass("P", in_pre)`` denotes the
    union ``G ∪ P``.  Two classes are equal when their atom-name sets
    are equal; the predicates let verifiers test membership of concrete
    states.  Reusing an atom name for a different predicate is rejected
    on union, since it would silently conflate different sets.
    """

    __slots__ = ("_predicates",)

    def __init__(self, name: str, predicate: Callable[[State], bool]):
        if not name:
            raise ProofError("a state class needs a nonempty name")
        if "|" in name:
            raise ProofError("atom names may not contain '|' (reserved for unions)")
        self._predicates: Dict[str, Callable[[State], bool]] = {name: predicate}

    @classmethod
    def _from_predicates(
        cls, predicates: Dict[str, Callable[[State], bool]]
    ) -> "StateClass":
        instance = cls.__new__(cls)
        instance._predicates = dict(predicates)
        return instance

    @property
    def atoms(self) -> FrozenSet[str]:
        """The atom names making up this union."""
        return frozenset(self._predicates)

    @property
    def name(self) -> str:
        """Canonical display name, e.g. ``"F | G | P"``."""
        return " | ".join(sorted(self._predicates))

    def contains(self, state: State) -> bool:
        """Membership test: does ``state`` belong to this set?"""
        return any(predicate(state) for predicate in self._predicates.values())

    def __call__(self, state: State) -> bool:
        return self.contains(state)

    def union(self, other: "StateClass") -> "StateClass":
        """The union of two classes (Proposition 3.2's ``U ∪ U''``)."""
        merged = dict(self._predicates)
        for atom, predicate in other._predicates.items():
            existing = merged.get(atom)
            if existing is not None and existing is not predicate:
                raise ProofError(
                    f"atom {atom!r} bound to two different predicates; "
                    "reuse the same StateClass object for the same set"
                )
            merged[atom] = predicate
        return StateClass._from_predicates(merged)

    def __or__(self, other: "StateClass") -> "StateClass":
        return self.union(other)

    def is_subset_by_atoms(self, other: "StateClass") -> bool:
        """Syntactic subset: every atom of self is an atom of other.

        Sound (atom sets denote unions) but incomplete — semantic
        inclusions between differently-named sets must be registered
        explicitly with the ledger's ``add_inclusion``.
        """
        return self.atoms <= other.atoms

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StateClass):
            return NotImplemented
        return self.atoms == other.atoms

    def __hash__(self) -> int:
        return hash(self.atoms)

    def __repr__(self) -> str:
        return f"StateClass({self.name})"


class ArrowStatement:
    """``U --t-->_p U'`` relative to a named adversary schema.

    Immutable.  ``schema_name`` ties the statement to the adversary
    schema it was proved against; the composition rule refuses to mix
    statements proved against different schemas.
    """

    __slots__ = ("_source", "_target", "_time", "_probability", "_schema_name")

    def __init__(
        self,
        source: StateClass,
        target: StateClass,
        time_bound,
        probability,
        schema_name: str,
    ):
        time_bound = as_fraction(time_bound)
        probability = as_fraction(probability)
        if time_bound < 0:
            raise ProofError(f"time bound must be nonnegative, got {time_bound}")
        if not 0 <= probability <= 1:
            raise ProofError(f"probability must be in [0, 1], got {probability}")
        self._source = source
        self._target = target
        self._time = time_bound
        self._probability = probability
        self._schema_name = schema_name

    @property
    def source(self) -> StateClass:
        """The set ``U`` the system starts in."""
        return self._source

    @property
    def target(self) -> StateClass:
        """The set ``U'`` to be reached."""
        return self._target

    @property
    def time_bound(self) -> Fraction:
        """The deadline ``t``."""
        return self._time

    @property
    def probability(self) -> Fraction:
        """The guaranteed probability ``p``."""
        return self._probability

    @property
    def schema_name(self) -> str:
        """The adversary schema the statement quantifies over."""
        return self._schema_name

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArrowStatement):
            return NotImplemented
        return (
            self._source == other._source
            and self._target == other._target
            and self._time == other._time
            and self._probability == other._probability
            and self._schema_name == other._schema_name
        )

    def __hash__(self) -> int:
        return hash(
            (self._source, self._target, self._time, self._probability,
             self._schema_name)
        )

    def __repr__(self) -> str:
        return (
            f"{self._source.name} --{self._time}-->_{self._probability} "
            f"{self._target.name}  [{self._schema_name}]"
        )
