"""Statistical estimators and confidence bounds for Monte-Carlo runs.

The paper's statements ``U --t-->_p U'`` are *lower bounds* on a success
probability, universally quantified over an adversary schema.  When we
test such a statement by sampling executions under a concrete adversary,
we need one-sided confidence bounds on the underlying Bernoulli
parameter: a statement survives the test when the *lower* confidence
bound under the most damaging adversary we tried still reaches ``p`` (or
at least does not refute it, see :func:`refutes_lower_bound`).

Three interval constructions are provided — Hoeffding, Wilson, and exact
Clopper-Pearson — because they trade tightness against assumptions and
the benchmarks report all three.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

from repro.errors import VerificationError


@dataclass(frozen=True)
class BernoulliSummary:
    """Summary of ``trials`` independent success/failure observations."""

    successes: int
    trials: int

    def __post_init__(self) -> None:
        if self.trials <= 0:
            raise VerificationError("a Bernoulli summary needs at least one trial")
        if not 0 <= self.successes <= self.trials:
            raise VerificationError(
                f"successes {self.successes} out of range for {self.trials} trials"
            )

    @property
    def estimate(self) -> float:
        """The maximum-likelihood point estimate of the success rate."""
        return self.successes / self.trials

    @classmethod
    def from_outcomes(cls, outcomes: Iterable[bool]) -> "BernoulliSummary":
        """Summarise an iterable of boolean trial outcomes."""
        successes = 0
        trials = 0
        for outcome in outcomes:
            trials += 1
            if outcome:
                successes += 1
        return cls(successes=successes, trials=trials)


def hoeffding_lower_bound(summary: BernoulliSummary, confidence: float = 0.99) -> float:
    """A one-sided lower bound from Hoeffding's inequality.

    With probability at least ``confidence`` over the sampling, the true
    success probability is at least the returned value.  Distribution
    free, and therefore the most conservative of the three bounds.
    """
    _check_confidence(confidence)
    slack = math.sqrt(math.log(1.0 / (1.0 - confidence)) / (2.0 * summary.trials))
    return max(0.0, summary.estimate - slack)


def hoeffding_upper_bound(summary: BernoulliSummary, confidence: float = 0.99) -> float:
    """The symmetric one-sided upper bound from Hoeffding's inequality."""
    _check_confidence(confidence)
    slack = math.sqrt(math.log(1.0 / (1.0 - confidence)) / (2.0 * summary.trials))
    return min(1.0, summary.estimate + slack)


def wilson_interval(
    summary: BernoulliSummary, confidence: float = 0.99
) -> Tuple[float, float]:
    """The two-sided Wilson score interval.

    Tighter than Hoeffding for moderate sample sizes and well behaved at
    the boundary rates 0 and 1.
    """
    _check_confidence(confidence)
    z = _normal_quantile(0.5 + confidence / 2.0)
    n = summary.trials
    p_hat = summary.estimate
    denominator = 1.0 + z * z / n
    centre = (p_hat + z * z / (2.0 * n)) / denominator
    half_width = (
        z * math.sqrt(p_hat * (1.0 - p_hat) / n + z * z / (4.0 * n * n)) / denominator
    )
    return max(0.0, centre - half_width), min(1.0, centre + half_width)


def clopper_pearson_lower(
    summary: BernoulliSummary, confidence: float = 0.99
) -> float:
    """The exact (Clopper-Pearson) one-sided lower confidence bound.

    Computed by bisection on the binomial tail, so it needs no normal
    approximation and is valid for every sample size.
    """
    _check_confidence(confidence)
    if summary.successes == 0:
        return 0.0
    alpha = 1.0 - confidence

    def tail_at_least_k(p: float) -> float:
        """P[Bin(n, p) >= successes]."""
        return 1.0 - _binomial_cdf(summary.successes - 1, summary.trials, p)

    # The lower bound is the p solving tail_at_least_k(p) = alpha.
    low, high = 0.0, summary.estimate if summary.estimate > 0 else 1.0
    high = max(high, 1e-12)
    for _ in range(200):
        mid = (low + high) / 2.0
        if tail_at_least_k(mid) < alpha:
            low = mid
        else:
            high = mid
    return low


def clopper_pearson_upper(
    summary: BernoulliSummary, confidence: float = 0.99
) -> float:
    """The exact one-sided upper confidence bound."""
    _check_confidence(confidence)
    if summary.successes == summary.trials:
        return 1.0
    alpha = 1.0 - confidence

    def tail_at_most_k(p: float) -> float:
        """P[Bin(n, p) <= successes]."""
        return _binomial_cdf(summary.successes, summary.trials, p)

    low, high = summary.estimate, 1.0
    for _ in range(200):
        mid = (low + high) / 2.0
        if tail_at_most_k(mid) < alpha:
            high = mid
        else:
            low = mid
    return high


def refutes_lower_bound(
    summary: BernoulliSummary, claimed: float, confidence: float = 0.999
) -> bool:
    """True when the sample statistically refutes ``P[success] >= claimed``.

    A claimed arrow statement is refuted only when the exact *upper*
    confidence bound falls strictly below the claimed probability — the
    sound direction for testing a universally quantified lower bound
    with a concrete adversary.
    """
    return clopper_pearson_upper(summary, confidence) < claimed


def supports_lower_bound(
    summary: BernoulliSummary, claimed: float, confidence: float = 0.99
) -> bool:
    """True when the lower confidence bound meets the claimed probability.

    Stronger than merely "not refuted": the observed data alone certify
    the bound for this adversary at the given confidence.
    """
    return clopper_pearson_lower(summary, confidence) >= claimed


@dataclass(frozen=True)
class MeanSummary:
    """Summary statistics for a sample of bounded real observations."""

    count: int
    mean: float
    variance: float
    minimum: float
    maximum: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "MeanSummary":
        """Summarise a nonempty sequence of observations."""
        if not values:
            raise VerificationError("cannot summarise an empty sample")
        n = len(values)
        mean = sum(values) / n
        if n > 1:
            variance = sum((v - mean) ** 2 for v in values) / (n - 1)
        else:
            variance = 0.0
        return cls(
            count=n,
            mean=mean,
            variance=variance,
            minimum=min(values),
            maximum=max(values),
        )

    def hoeffding_mean_upper(
        self, value_range: float, confidence: float = 0.99
    ) -> float:
        """One-sided Hoeffding upper bound on the true mean.

        ``value_range`` must bound the support width of each
        observation (for a time-to-goal capped at ``T`` it is ``T``).
        Used to check the paper's expected-time bound of 63.
        """
        _check_confidence(confidence)
        if value_range <= 0:
            raise VerificationError("value_range must be positive")
        slack = value_range * math.sqrt(
            math.log(1.0 / (1.0 - confidence)) / (2.0 * self.count)
        )
        return self.mean + slack


# ----------------------------------------------------------------------
# Numerical helpers (no scipy dependency in the hot path)
# ----------------------------------------------------------------------


def _check_confidence(confidence: float) -> None:
    if not 0.0 < confidence < 1.0:
        raise VerificationError(f"confidence must be in (0, 1), got {confidence}")


def _normal_quantile(q: float) -> float:
    """Inverse standard-normal CDF via the Acklam rational approximation."""
    if not 0.0 < q < 1.0:
        raise VerificationError(f"quantile argument must be in (0, 1), got {q}")
    # Coefficients for the central and tail regions.
    a = (
        -3.969683028665376e01,
        2.209460984245205e02,
        -2.759285104469687e02,
        1.383577518672690e02,
        -3.066479806614716e01,
        2.506628277459239e00,
    )
    b = (
        -5.447609879822406e01,
        1.615858368580409e02,
        -1.556989798598866e02,
        6.680131188771972e01,
        -1.328068155288572e01,
    )
    c = (
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e00,
        -2.549732539343734e00,
        4.374664141464968e00,
        2.938163982698783e00,
    )
    d = (
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e00,
        3.754408661907416e00,
    )
    p_low = 0.02425
    if q < p_low:
        r = math.sqrt(-2.0 * math.log(q))
        return (
            ((((c[0] * r + c[1]) * r + c[2]) * r + c[3]) * r + c[4]) * r + c[5]
        ) / ((((d[0] * r + d[1]) * r + d[2]) * r + d[3]) * r + 1.0)
    if q > 1.0 - p_low:
        r = math.sqrt(-2.0 * math.log(1.0 - q))
        return -(
            ((((c[0] * r + c[1]) * r + c[2]) * r + c[3]) * r + c[4]) * r + c[5]
        ) / ((((d[0] * r + d[1]) * r + d[2]) * r + d[3]) * r + 1.0)
    r = q - 0.5
    s = r * r
    return (
        (((((a[0] * s + a[1]) * s + a[2]) * s + a[3]) * s + a[4]) * s + a[5]) * r
    ) / (((((b[0] * s + b[1]) * s + b[2]) * s + b[3]) * s + b[4]) * s + 1.0)


def _binomial_cdf(k: int, n: int, p: float) -> float:
    """P[Bin(n, p) <= k], computed stably in log space."""
    if k < 0:
        return 0.0
    if k >= n:
        return 1.0
    if p <= 0.0:
        return 1.0
    if p >= 1.0:
        return 0.0
    total = 0.0
    log_p = math.log(p)
    log_q = math.log(1.0 - p)
    for i in range(k + 1):
        log_term = (
            math.lgamma(n + 1)
            - math.lgamma(i + 1)
            - math.lgamma(n - i + 1)
            + i * log_p
            + (n - i) * log_q
        )
        total += math.exp(log_term)
    return min(1.0, total)
