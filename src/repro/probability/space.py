"""Finite probability spaces ``(Omega, 2^Omega, P)``.

Definition 2.1 of the paper requires every transition target to be a
probability space ``(Omega, F, P)`` with ``Omega`` a subset of the state
set and ``F = 2^Omega``.  Because ``F`` is the full power set, a finite
probability space is determined by a weight function on its sample
points; this module implements exactly that, with exact
:class:`fractions.Fraction` arithmetic so that the proof machinery in
:mod:`repro.proofs` never accumulates floating-point error.

The canonical class is :class:`FiniteDistribution`.  The alias
:class:`ProbabilitySpace` is provided because the paper speaks of
"probability spaces"; they are the same object here.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import (
    Callable,
    Dict,
    Generic,
    Hashable,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Tuple,
    TypeVar,
    Union,
)

from repro.errors import ProbabilityError

T = TypeVar("T", bound=Hashable)
S = TypeVar("S", bound=Hashable)

#: Values accepted wherever a probability is expected.  They are
#: normalised to :class:`fractions.Fraction` on construction.
ProbabilityLike = Union[int, float, Fraction, str]


def as_fraction(value: ProbabilityLike) -> Fraction:
    """Convert a user-supplied probability value to an exact fraction.

    Floats are converted via :meth:`Fraction.limit_denominator` with a
    large bound so that common literals like ``0.5`` or ``0.25`` map to
    the exact rational the author intended, while still accepting
    arbitrary floats.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, str):
        return Fraction(value)
    if isinstance(value, float):
        return Fraction(value).limit_denominator(10**12)
    raise ProbabilityError(f"cannot interpret {value!r} as a probability")


class FiniteDistribution(Generic[T]):
    """An immutable finite probability space ``(Omega, 2^Omega, P)``.

    ``Omega`` is the support: every sample point stored has strictly
    positive probability, and the probabilities sum exactly to one.

    Instances are hashable and comparable by value, so distributions can
    be used as dictionary keys (the execution-automaton construction
    relies on this).
    """

    __slots__ = ("_weights", "_hash")

    def __init__(self, weights: Mapping[T, ProbabilityLike]):
        cleaned: Dict[T, Fraction] = {}
        for point, raw in weights.items():
            weight = as_fraction(raw)
            if weight < 0:
                raise ProbabilityError(
                    f"negative probability {weight} for sample point {point!r}"
                )
            if weight == 0:
                continue
            cleaned[point] = cleaned.get(point, Fraction(0)) + weight
        if not cleaned:
            raise ProbabilityError("a probability space needs a nonempty support")
        total = sum(cleaned.values())
        if total != 1:
            raise ProbabilityError(f"probabilities sum to {total}, expected 1")
        self._weights: Dict[T, Fraction] = cleaned
        self._hash: Optional[int] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def dirac(cls, point: T) -> "FiniteDistribution[T]":
        """The point mass (Dirac) distribution at ``point``.

        Non-probabilistic steps of an automaton are modelled as Dirac
        distributions; the paper's time-passage steps are an example.
        """
        return cls({point: Fraction(1)})

    @classmethod
    def uniform(cls, points: Iterable[T]) -> "FiniteDistribution[T]":
        """The uniform distribution over ``points`` (duplicates merge)."""
        points = list(points)
        if not points:
            raise ProbabilityError("uniform distribution over an empty set")
        weight = Fraction(1, len(points))
        weights: Dict[T, Fraction] = {}
        for point in points:
            weights[point] = weights.get(point, Fraction(0)) + weight
        return cls(weights)

    @classmethod
    def bernoulli(
        cls, success: T, failure: T, p: ProbabilityLike = Fraction(1, 2)
    ) -> "FiniteDistribution[T]":
        """A two-point distribution: ``success`` with probability ``p``.

        The fair-coin flips of the Lehmann-Rabin algorithm are
        ``bernoulli(LEFT, RIGHT)``.
        """
        p = as_fraction(p)
        return cls({success: p, failure: 1 - p})

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[Tuple[T, ProbabilityLike]]
    ) -> "FiniteDistribution[T]":
        """Build a distribution from ``(point, weight)`` pairs."""
        weights: Dict[T, Fraction] = {}
        for point, raw in pairs:
            weight = as_fraction(raw)
            weights[point] = weights.get(point, Fraction(0)) + weight
        return cls(weights)

    # ------------------------------------------------------------------
    # The probability measure
    # ------------------------------------------------------------------

    @property
    def support(self) -> frozenset:
        """``Omega``: the set of sample points with positive probability."""
        return frozenset(self._weights)

    def probability(self, event: Union[T, Iterable[T], Callable[[T], bool]]) -> Fraction:
        """``P[event]`` for a point, a set of points, or a predicate.

        Because ``F = 2^Omega``, every subset of the support is
        measurable; a predicate denotes the subset of points satisfying
        it.
        """
        if callable(event) and not isinstance(event, Hashable):
            return sum(
                (w for point, w in self._weights.items() if event(point)),
                Fraction(0),
            )
        if callable(event):
            # A hashable callable could in principle also be a sample
            # point; prefer the point interpretation when it is in the
            # support, mirroring how states (often tuples) are queried.
            if event in self._weights:
                return self._weights[event]
            return sum(
                (w for point, w in self._weights.items() if event(point)),
                Fraction(0),
            )
        if isinstance(event, Hashable) and event in self._weights:
            return self._weights[event]
        if isinstance(event, (set, frozenset, list, tuple)):
            unique = set(event)
            return sum(
                (w for point, w in self._weights.items() if point in unique),
                Fraction(0),
            )
        return Fraction(0)

    def __getitem__(self, point: T) -> Fraction:
        return self._weights.get(point, Fraction(0))

    def __contains__(self, point: T) -> bool:
        return point in self._weights

    def __iter__(self) -> Iterator[T]:
        return iter(self._weights)

    def __len__(self) -> int:
        return len(self._weights)

    def items(self) -> Iterator[Tuple[T, Fraction]]:
        """Iterate over ``(point, probability)`` pairs."""
        return iter(self._weights.items())

    def is_dirac(self) -> bool:
        """True if this distribution is a point mass."""
        return len(self._weights) == 1

    def the_point(self) -> T:
        """The unique sample point of a Dirac distribution."""
        if not self.is_dirac():
            raise ProbabilityError("the_point() on a non-Dirac distribution")
        return next(iter(self._weights))

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def map(self, f: Callable[[T], S]) -> "FiniteDistribution[S]":
        """Push-forward along ``f`` (image measure).

        Used by the execution-automaton construction, where a step of
        ``M`` from ``lstate(alpha)`` is lifted to a step of ``H`` whose
        sample points are the extended fragments ``alpha a s``
        (Definition 2.3, condition 2).
        """
        weights: Dict[S, Fraction] = {}
        for point, weight in self._weights.items():
            image = f(point)
            weights[image] = weights.get(image, Fraction(0)) + weight
        return FiniteDistribution(weights)

    def product(
        self, other: "FiniteDistribution[S]"
    ) -> "FiniteDistribution[Tuple[T, S]]":
        """The independent product measure on ``Omega1 x Omega2``."""
        weights: Dict[Tuple[T, S], Fraction] = {}
        for p1, w1 in self._weights.items():
            for p2, w2 in other._weights.items():
                weights[(p1, p2)] = w1 * w2
        return FiniteDistribution(weights)

    def condition(
        self, event: Union[Iterable[T], Callable[[T], bool]]
    ) -> "FiniteDistribution[T]":
        """The conditional distribution ``P[. | event]``.

        Raises :class:`ProbabilityError` when the event has probability
        zero, as conditioning is then undefined.
        """
        if callable(event):
            selected = {p: w for p, w in self._weights.items() if event(p)}
        else:
            unique = set(event)
            selected = {p: w for p, w in self._weights.items() if p in unique}
        total = sum(selected.values(), Fraction(0))
        if total == 0:
            raise ProbabilityError("conditioning on a null event")
        return FiniteDistribution({p: w / total for p, w in selected.items()})

    def expectation(self, f: Callable[[T], ProbabilityLike]) -> Fraction:
        """``E[f]`` with exact rational arithmetic."""
        return sum(
            (as_fraction(f(point)) * weight for point, weight in self._weights.items()),
            Fraction(0),
        )

    @staticmethod
    def convex(
        parts: Iterable[Tuple["FiniteDistribution[T]", ProbabilityLike]]
    ) -> "FiniteDistribution[T]":
        """The convex combination ``sum_i c_i * mu_i``.

        The coefficients must sum to one; this is how the measure over a
        two-stage experiment (choose a branch, then sample) flattens.
        """
        weights: Dict[T, Fraction] = {}
        total = Fraction(0)
        for dist, raw in parts:
            coefficient = as_fraction(raw)
            if coefficient < 0:
                raise ProbabilityError("negative convex coefficient")
            total += coefficient
            for point, weight in dist._weights.items():
                weights[point] = weights.get(point, Fraction(0)) + coefficient * weight
        if total != 1:
            raise ProbabilityError(f"convex coefficients sum to {total}, expected 1")
        return FiniteDistribution(weights)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def sample(self, rng: random.Random) -> T:
        """Draw one sample point using ``rng``.

        The Monte-Carlo verifier threads an explicit
        :class:`random.Random` through every draw so that experiments
        are reproducible from a seed.
        """
        threshold = rng.random()
        cumulative = 0.0
        last = None
        for point, weight in self._weights.items():
            cumulative += float(weight)
            last = point
            if threshold < cumulative:
                return point
        # Floating point may leave a sliver below 1.0; the final point
        # absorbs it.
        return last  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FiniteDistribution):
            return NotImplemented
        return self._weights == other._weights

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._weights.items()))
        return self._hash

    def __repr__(self) -> str:
        inside = ", ".join(
            f"{point!r}: {weight}" for point, weight in sorted(
                self._weights.items(), key=lambda kv: repr(kv[0])
            )
        )
        return f"FiniteDistribution({{{inside}}})"


#: The paper's name for the same object.
ProbabilitySpace = FiniteDistribution
