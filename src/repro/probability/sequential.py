"""Sequential probability ratio tests (SPRT) for arrow statements.

Fixed-sample Monte-Carlo checks waste samples when a statement is far
from its bound (the common case here: the paper's bounds are loose).
Wald's SPRT decides between

    H0: success probability <= p0   (the claim is violated)
    H1: success probability >= p1   (the claim holds with margin)

with prescribed error rates, consuming samples only until the evidence
is strong enough.  For checking ``U --t-->_p U'`` one takes
``p0 = p`` (or slightly below) and ``p1 = p + margin``; acceptance of
H1 supports the claim, acceptance of H0 is sound statistical evidence
against it.

This is the standard statistical-model-checking primitive (Younes &
Simmons style) adapted to the library's conventions: exact log-domain
arithmetic on floats, explicit indifference region, and an
``UNDECIDED`` verdict when a sample budget runs out first.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.errors import VerificationError


class SprtVerdict(enum.Enum):
    """Outcome of a sequential test."""

    ACCEPT_H1 = "accept-h1"      # probability >= p1 (claim supported)
    ACCEPT_H0 = "accept-h0"      # probability <= p0 (claim refuted)
    UNDECIDED = "undecided"      # budget exhausted first


@dataclass(frozen=True)
class SprtResult:
    """Verdict plus the evidence trail."""

    verdict: SprtVerdict
    samples_used: int
    successes: int
    log_likelihood_ratio: float


class SequentialProbabilityRatioTest:
    """Wald's SPRT for a Bernoulli parameter.

    ``alpha`` bounds the probability of wrongly accepting H1 when H0 is
    true; ``beta`` the reverse.  ``p0 < p1`` delimit the indifference
    region; behaviour for true parameters inside it is unspecified (the
    test still terminates almost surely).
    """

    def __init__(
        self,
        p0: float,
        p1: float,
        alpha: float = 0.01,
        beta: float = 0.01,
    ):
        if not 0.0 < p0 < p1 < 1.0:
            raise VerificationError(
                f"need 0 < p0 < p1 < 1, got p0={p0}, p1={p1}"
            )
        if not (0.0 < alpha < 1.0 and 0.0 < beta < 1.0):
            raise VerificationError("error rates must be in (0, 1)")
        self._p0, self._p1 = p0, p1
        # Acceptance thresholds on the log likelihood ratio.
        self._upper = math.log((1.0 - beta) / alpha)
        self._lower = math.log(beta / (1.0 - alpha))
        self._log_success = math.log(p1 / p0)
        self._log_failure = math.log((1.0 - p1) / (1.0 - p0))

    @property
    def p0(self) -> float:
        """The null (claim-violated) success probability."""
        return self._p0

    @property
    def p1(self) -> float:
        """The alternative (claim-holds) success probability."""
        return self._p1

    def run(
        self,
        sample: Callable[[], bool],
        max_samples: int = 100_000,
    ) -> SprtResult:
        """Draw samples until a hypothesis is accepted (or budget ends)."""
        if max_samples <= 0:
            raise VerificationError("max_samples must be positive")
        ratio = 0.0
        successes = 0
        for count in range(1, max_samples + 1):
            if sample():
                successes += 1
                ratio += self._log_success
            else:
                ratio += self._log_failure
            if ratio >= self._upper:
                return SprtResult(
                    SprtVerdict.ACCEPT_H1, count, successes, ratio
                )
            if ratio <= self._lower:
                return SprtResult(
                    SprtVerdict.ACCEPT_H0, count, successes, ratio
                )
        return SprtResult(
            SprtVerdict.UNDECIDED, max_samples, successes, ratio
        )

    def run_on(self, outcomes: Iterable[bool]) -> SprtResult:
        """Run the test over a pre-drawn outcome stream."""
        iterator = iter(outcomes)

        def sample() -> bool:
            try:
                return next(iterator)
            except StopIteration:
                raise VerificationError(
                    "outcome stream exhausted before the test decided"
                )

        # A stream caller wants the stream's own length as the budget;
        # use a large cap and translate exhaustion into UNDECIDED.
        try:
            return self.run(sample, max_samples=10**9)
        except VerificationError:
            return SprtResult(SprtVerdict.UNDECIDED, 0, 0, 0.0)


def sprt_for_claim(
    claimed: float,
    margin: float = 0.05,
    alpha: float = 0.001,
    beta: float = 0.01,
) -> SequentialProbabilityRatioTest:
    """A test tuned for checking ``P[success] >= claimed``.

    ``p0 = claimed`` and ``p1 = claimed + margin``: accepting H0 is
    then evidence (at level ``alpha``) that the claim fails, while
    accepting H1 certifies the claim with margin.  The asymmetric
    default error rates make false refutations (the serious error when
    hunting counterexamples to a published bound) rarer than false
    supports.
    """
    if not 0.0 < claimed < 1.0:
        raise VerificationError(
            f"claimed probability must be in (0, 1), got {claimed}"
        )
    p1 = min(claimed + margin, 1.0 - 1e-9)
    if p1 <= claimed:
        raise VerificationError("margin too small")
    return SequentialProbabilityRatioTest(
        p0=claimed, p1=p1, alpha=alpha, beta=beta
    )
