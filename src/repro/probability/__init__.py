"""Finite probability substrate: spaces, distributions, and statistics.

The paper's model (Definition 2.1) uses finite probability spaces
``(Omega, 2^Omega, P)`` as transition targets; :mod:`repro.probability`
implements them with exact rational arithmetic, together with the
one-sided confidence machinery used when arrow statements are tested by
sampling.
"""

from repro.probability.sequential import (
    SequentialProbabilityRatioTest,
    SprtResult,
    SprtVerdict,
    sprt_for_claim,
)
from repro.probability.space import (
    FiniteDistribution,
    ProbabilitySpace,
    as_fraction,
)
from repro.probability.stats import (
    BernoulliSummary,
    MeanSummary,
    clopper_pearson_lower,
    clopper_pearson_upper,
    hoeffding_lower_bound,
    hoeffding_upper_bound,
    refutes_lower_bound,
    supports_lower_bound,
    wilson_interval,
)

__all__ = [
    "FiniteDistribution",
    "ProbabilitySpace",
    "as_fraction",
    "BernoulliSummary",
    "MeanSummary",
    "SequentialProbabilityRatioTest",
    "SprtResult",
    "SprtVerdict",
    "sprt_for_claim",
    "clopper_pearson_lower",
    "clopper_pearson_upper",
    "hoeffding_lower_bound",
    "hoeffding_upper_bound",
    "refutes_lower_bound",
    "supports_lower_bound",
    "wilson_interval",
]
