"""The patient construction (Section 2).

"The idea is to add a time component to the states of a probabilistic
automaton, to assume that the time at a start state is 0, to add a
special non-visible action nu modeling the passage of time, and to add
arbitrary time passage steps to each state.  A time passage step should
be non-probabilistic and should change only the time component of a
state."

The paper allows time-passage steps of *every* positive amount; an
executable model must restrict to an enumerable menu of increments.
:func:`patient` therefore takes the increments as a parameter — the
choice among them remains with the adversary, which is where the paper
puts it too.  Adversary schemas like Unit-Time further constrain how
much time an adversary may let pass; that logic lives in
:mod:`repro.adversary.unit_time`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Generic, Hashable, Iterable, List, Tuple, TypeVar

from repro.automaton.automaton import (
    FunctionalAutomaton,
    ProbabilisticAutomaton,
)
from repro.automaton.signature import TIME_PASSAGE, ActionSignature
from repro.automaton.transition import Transition
from repro.errors import AutomatonError
from repro.probability.space import FiniteDistribution, as_fraction

State = TypeVar("State", bound=Hashable)


@dataclass(frozen=True)
class TimedState(Generic[State]):
    """A state of the patient automaton: a base state plus current time."""

    base: State
    now: Fraction

    def advanced(self, amount: Fraction) -> "TimedState[State]":
        """The state after ``amount`` time units pass (base unchanged)."""
        return TimedState(self.base, self.now + amount)


def patient(
    automaton: ProbabilisticAutomaton[State],
    increments: Iterable = (Fraction(1, 2), Fraction(1)),
) -> FunctionalAutomaton[TimedState[State]]:
    """The patient (timed) version of ``automaton``.

    Every discrete step of ``automaton`` is lifted to leave time
    unchanged; in addition, from every state a time-passage step labelled
    :data:`TIME_PASSAGE` is enabled for each allowed increment.  Start
    states carry time 0.  The result is a probabilistic *timed* automaton
    in the paper's sense.
    """
    increment_menu: Tuple[Fraction, ...] = tuple(
        as_fraction(i) for i in increments
    )
    if not increment_menu:
        raise AutomatonError("the patient construction needs at least one increment")
    if any(i <= 0 for i in increment_menu):
        raise AutomatonError("time-passage increments must be positive")

    base_signature = automaton.signature
    if TIME_PASSAGE in base_signature:
        raise AutomatonError(
            f"the base automaton already uses the reserved action {TIME_PASSAGE!r}"
        )
    signature = ActionSignature(
        external=base_signature.external,
        internal=base_signature.internal | {TIME_PASSAGE},
    )

    def lift(timed: TimedState[State]) -> List[Transition[TimedState[State]]]:
        now = timed.now
        steps: List[Transition[TimedState[State]]] = []
        for transition in automaton.transitions(timed.base):
            steps.append(
                Transition(
                    timed,
                    transition.action,
                    transition.target.map(lambda s, t=now: TimedState(s, t)),
                )
            )
        for amount in increment_menu:
            steps.append(
                Transition(
                    timed,
                    TIME_PASSAGE,
                    FiniteDistribution.dirac(timed.advanced(amount)),
                )
            )
        return steps

    starts = tuple(TimedState(s, Fraction(0)) for s in automaton.start_states)
    return FunctionalAutomaton(
        start_states=starts, signature=signature, transition_fn=lift
    )


def elapsed_time(actions: Iterable, state_times: Iterable[Fraction]) -> Fraction:
    """Total time elapsed along a timed execution's state sequence.

    For patient automata the time component is monotone, so the elapsed
    time is the difference between the final and initial clocks.
    """
    times = list(state_times)
    if not times:
        raise AutomatonError("no states supplied")
    return times[-1] - times[0]
