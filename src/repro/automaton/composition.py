"""Parallel composition and renaming of probabilistic automata.

The paper's framework is based on models with a CSP-style parallel
composition (the Segala-Lynch simple probabilistic automata); the
composition below follows that definition.  Components synchronise on
shared external actions (the joint target is the product measure, so
the two probabilistic choices are independent) and interleave on all
other actions.

Composition is provided for :class:`ExplicitAutomaton`; the large
case-study models build their global automaton directly for efficiency,
but composition is exercised by tests and available to library users
building systems from small components (e.g. process || user).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple, TypeVar

from repro.automaton.automaton import ExplicitAutomaton
from repro.automaton.signature import Action, ActionSignature
from repro.automaton.transition import Transition

S = TypeVar("S", bound=Hashable)
T = TypeVar("T", bound=Hashable)


def parallel_compose(
    left: ExplicitAutomaton[S], right: ExplicitAutomaton[T]
) -> ExplicitAutomaton[Tuple[S, T]]:
    """The parallel composition ``left || right``.

    States are pairs.  A shared external action requires both
    components to step (their targets combine as an independent
    product); a private action steps one component and leaves the other
    in place.  The signatures must be compatible: internal actions may
    not be shared (checked by :meth:`ActionSignature.merge`).
    """
    signature = left.signature.merge(right.signature)
    shared = left.signature.actions & right.signature.actions

    states: List[Tuple[S, T]] = [
        (ls, rs) for ls in left.states for rs in right.states
    ]
    starts: List[Tuple[S, T]] = [
        (ls, rs) for ls in left.start_states for rs in right.start_states
    ]

    steps: List[Transition[Tuple[S, T]]] = []
    for ls, rs in states:
        left_steps = left.transitions(ls)
        right_steps = right.transitions(rs)
        for lt in left_steps:
            if lt.action in shared:
                for rt in right_steps:
                    if rt.action == lt.action:
                        joint = lt.target.product(rt.target)
                        steps.append(
                            Transition((ls, rs), lt.action, joint)
                        )
            else:
                fixed_rs = rs
                steps.append(
                    Transition(
                        (ls, rs),
                        lt.action,
                        lt.target.map(lambda s, r=fixed_rs: (s, r)),
                    )
                )
        for rt in right_steps:
            if rt.action in shared:
                continue  # handled (or blocked) above via the left component
            fixed_ls = ls
            steps.append(
                Transition(
                    (ls, rs),
                    rt.action,
                    rt.target.map(lambda s, l=fixed_ls: (l, s)),
                )
            )

    return ExplicitAutomaton(
        states=states, start_states=starts, signature=signature, steps=steps
    )


def rename_actions(
    automaton: ExplicitAutomaton[S], mapping: Dict[Action, Action]
) -> ExplicitAutomaton[S]:
    """Rename actions via ``mapping`` (identity where unmapped).

    Useful for instantiating a generic process automaton at index ``i``
    (``flip -> flip_i`` and so on) before composing a ring.
    """
    def rename(action: Action) -> Action:
        return mapping.get(action, action)

    signature = ActionSignature(
        external=frozenset(rename(a) for a in automaton.signature.external),
        internal=frozenset(rename(a) for a in automaton.signature.internal),
    )
    steps = [
        Transition(step.source, rename(step.action), step.target)
        for step in automaton.steps
    ]
    return ExplicitAutomaton(
        states=automaton.states,
        start_states=automaton.start_states,
        signature=signature,
        steps=steps,
    )


def relabel_states(
    automaton: ExplicitAutomaton[S], label: "callable"
) -> ExplicitAutomaton:
    """Apply an injective relabelling to every state.

    The relabelling must be injective on ``states(M)``; collisions would
    silently merge states, so they are rejected.
    """
    relabelled = [label(s) for s in automaton.states]
    if len(set(relabelled)) != len(relabelled):
        from repro.errors import AutomatonError

        raise AutomatonError("state relabelling is not injective")
    steps = [
        Transition(
            label(step.source),
            step.action,
            step.target.map(label),
        )
        for step in automaton.steps
    ]
    return ExplicitAutomaton(
        states=relabelled,
        start_states=[label(s) for s in automaton.start_states],
        signature=automaton.signature,
        steps=steps,
    )
