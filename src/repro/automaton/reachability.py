"""Reachability analysis and invariant checking.

The paper defines ``rstates(M)`` as the states reachable by some finite
execution, and proves Lemma 6.1 as "a standard proof of invariants".
This module supplies both pieces: breadth-first enumeration of reachable
states (for explicit or boundedly explorable automata) and an inductive
invariant checker that verifies a predicate holds at start states and is
preserved by every step.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    Callable,
    Deque,
    Dict,
    Generic,
    Hashable,
    List,
    Optional,
    Set,
    Tuple,
    TypeVar,
)

from repro.automaton.automaton import ProbabilisticAutomaton
from repro.automaton.execution import ExecutionFragment
from repro.errors import StateBudgetExceeded

State = TypeVar("State", bound=Hashable)


def reachable_states(
    automaton: ProbabilisticAutomaton[State],
    max_states: Optional[int] = None,
) -> Set[State]:
    """``rstates(M)`` by breadth-first search from the start states.

    ``max_states`` bounds exploration for automata with large or
    unbounded state spaces; exceeding the bound raises
    :class:`StateBudgetExceeded` (a :class:`VerificationError`) rather
    than silently truncating, because a truncated reachable set would
    make downstream invariant checks unsound.
    """
    visited: Set[State] = set(automaton.start_states)
    frontier: Deque[State] = deque(automaton.start_states)
    while frontier:
        state = frontier.popleft()
        for transition in automaton.transitions(state):
            for target in transition.target.support:
                if target not in visited:
                    visited.add(target)
                    if max_states is not None and len(visited) > max_states:
                        raise StateBudgetExceeded(
                            f"reachable-state exploration exceeded "
                            f"{max_states} states",
                            budget=max_states,
                            explored=len(visited),
                        )
                    frontier.append(target)
    return visited


@dataclass(frozen=True)
class InvariantViolation(Generic[State]):
    """A witness that an invariant fails: where, and how we got there."""

    state: State
    witness: ExecutionFragment[State]

    def __str__(self) -> str:
        return f"invariant violated at {self.state!r} via {self.witness!r}"


def check_invariant(
    automaton: ProbabilisticAutomaton[State],
    invariant: Callable[[State], bool],
    max_states: Optional[int] = None,
) -> Optional[InvariantViolation[State]]:
    """Exhaustively check ``invariant`` over all reachable states.

    Returns ``None`` when the invariant holds everywhere reachable, or
    an :class:`InvariantViolation` carrying a shortest witness execution
    otherwise.  This is the "standard proof of invariants" the paper
    appeals to for Lemma 6.1, mechanised.
    """
    parents: Dict[State, Optional[Tuple[State, object]]] = {
        s: None for s in automaton.start_states
    }
    frontier: Deque[State] = deque(automaton.start_states)
    for start in automaton.start_states:
        if not invariant(start):
            return InvariantViolation(start, ExecutionFragment.initial(start))
    while frontier:
        state = frontier.popleft()
        for transition in automaton.transitions(state):
            for target in transition.target.support:
                if target in parents:
                    continue
                parents[target] = (state, transition.action)
                if max_states is not None and len(parents) > max_states:
                    raise StateBudgetExceeded(
                        f"invariant exploration exceeded {max_states} states",
                        budget=max_states,
                        explored=len(parents),
                    )
                if not invariant(target):
                    return InvariantViolation(target, _trace_back(parents, target))
                frontier.append(target)
    return None


def check_inductive_invariant(
    automaton: ProbabilisticAutomaton[State],
    invariant: Callable[[State], bool],
    states: Set[State],
) -> List[Tuple[State, object, State]]:
    """Check that ``invariant`` is *inductive* over the given state set.

    Returns the list of violating steps ``(source, action, target)``:
    steps from an invariant-satisfying source to an invariant-violating
    target.  An empty list plus the invariant holding at start states
    constitutes an inductive proof in the classical sense — stronger
    evidence than reachable-state checking because it does not depend on
    reachability being computed correctly.
    """
    violations: List[Tuple[State, object, State]] = []
    for state in states:
        if not invariant(state):
            continue
        for transition in automaton.transitions(state):
            for target in transition.target.support:
                if not invariant(target):
                    violations.append((state, transition.action, target))
    return violations


def _trace_back(
    parents: Dict[State, Optional[Tuple[State, object]]], state: State
) -> ExecutionFragment[State]:
    """Rebuild the BFS witness execution ending in ``state``."""
    states: List[State] = [state]
    actions: List[object] = []
    current = state
    while parents[current] is not None:
        parent, action = parents[current]  # type: ignore[misc]
        states.append(parent)
        actions.append(action)
        current = parent
    states.reverse()
    actions.reverse()
    return ExecutionFragment(states, actions)
