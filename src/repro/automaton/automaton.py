"""Probabilistic automata (Definition 2.1).

Two concrete representations are provided:

* :class:`ExplicitAutomaton` — states and steps stored in dictionaries.
  Suitable for small hand-built models, the patient construction, and
  exhaustive reachability analysis.
* :class:`FunctionalAutomaton` — the transition relation given as a
  Python function from state to enabled transitions, computed on demand.
  The Lehmann-Rabin model uses this representation because its timed
  state space is unbounded.

Both share the abstract interface :class:`ProbabilisticAutomaton`, which
is all the rest of the library depends on.
"""

from __future__ import annotations

import abc
from typing import (
    Callable,
    Dict,
    Generic,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TypeVar,
)

from repro.automaton.signature import Action, ActionSignature
from repro.automaton.transition import Transition
from repro.errors import AutomatonError

State = TypeVar("State", bound=Hashable)


class ProbabilisticAutomaton(Generic[State], abc.ABC):
    """The abstract interface of Definition 2.1.

    A probabilistic automaton consists of a state set (possibly
    enumerable only lazily), a nonempty set of start states, an action
    signature, and a transition relation mapping each state to the steps
    enabled there.
    """

    @property
    @abc.abstractmethod
    def start_states(self) -> Tuple[State, ...]:
        """``start(M)``: the nonempty tuple of start states."""

    @property
    @abc.abstractmethod
    def signature(self) -> ActionSignature:
        """``sig(M)``: the action signature."""

    @abc.abstractmethod
    def transitions(self, state: State) -> Tuple[Transition[State], ...]:
        """The steps of ``steps(M)`` whose source is ``state``.

        The returned tuple order is deterministic so that adversaries
        that select "the k-th enabled step" are well defined.
        """

    # ------------------------------------------------------------------
    # Derived queries
    # ------------------------------------------------------------------

    def is_enabled(self, state: State, action: Action) -> bool:
        """True when some step labelled ``action`` is enabled in ``state``."""
        return any(t.action == action for t in self.transitions(state))

    def enabled_actions(self, state: State) -> Tuple[Action, ...]:
        """The distinct actions enabled in ``state``, in transition order."""
        seen: List[Action] = []
        for transition in self.transitions(state):
            if transition.action not in seen:
                seen.append(transition.action)
        return tuple(seen)

    def transitions_for(
        self, state: State, action: Action
    ) -> Tuple[Transition[State], ...]:
        """The steps enabled in ``state`` with the given label."""
        return tuple(t for t in self.transitions(state) if t.action == action)

    def fully_probabilistic_status(self, horizon: int = 10_000) -> str:
        """Definition 2.1's *fully probabilistic* condition, tri-state.

        Returns ``"yes"`` when the automaton has a unique start state
        and every state reachable from it — *all* of them explored —
        has at most one enabled step; ``"no"`` on a definite
        counterexample (multiple start states, or a reachable state
        with several steps); and ``"unknown"`` when ``horizon``
        expansions ran out before the frontier did, in which case no
        definite answer exists.  Explicit automata always resolve to a
        definite answer when ``horizon`` covers their state count;
        functional automata over unbounded spaces typically end
        ``"unknown"``.
        """
        if len(self.start_states) != 1:
            return "no"
        frontier: List[State] = [self.start_states[0]]
        visited: Set[State] = set(frontier)
        expansions = 0
        while frontier:
            if expansions >= horizon:
                return "unknown"
            state = frontier.pop()
            expansions += 1
            steps = self.transitions(state)
            if len(steps) > 1:
                return "no"
            for step in steps:
                for target in step.target.support:
                    if target not in visited:
                        visited.add(target)
                        frontier.append(target)
        return "yes"

    def is_fully_probabilistic(self, horizon: int = 10_000) -> bool:
        """True only on a definite ``"yes"``.

        Historically this method conflated "explored everything, saw no
        branching" with "ran out of horizon before seeing branching".
        It now delegates to :meth:`fully_probabilistic_status`, and an
        ``"unknown"`` answer is reported as ``False`` — use the
        tri-state method (or ``repro audit``) when the distinction
        matters.
        """
        return self.fully_probabilistic_status(horizon) == "yes"

    def validate_state(self, state: State) -> None:
        """Hook for representation-specific sanity checks (no-op here)."""


class ExplicitAutomaton(ProbabilisticAutomaton[State]):
    """A probabilistic automaton with explicitly enumerated components."""

    def __init__(
        self,
        states: Iterable[State],
        start_states: Iterable[State],
        signature: ActionSignature,
        steps: Iterable[Transition[State]],
    ):
        self._states: Tuple[State, ...] = tuple(dict.fromkeys(states))
        state_set = set(self._states)
        if not state_set:
            raise AutomatonError("an automaton needs at least one state")

        starts = tuple(dict.fromkeys(start_states))
        if not starts:
            raise AutomatonError("start(M) must be nonempty (Definition 2.1)")
        stray_starts = [s for s in starts if s not in state_set]
        if stray_starts:
            raise AutomatonError(f"start states outside states(M): {stray_starts!r}")
        self._start_states = starts
        self._signature = signature

        by_source: Dict[State, List[Transition[State]]] = {}
        for step in steps:
            if step.source not in state_set:
                raise AutomatonError(
                    f"step source {step.source!r} is not a state of the automaton"
                )
            if step.action not in signature:
                raise AutomatonError(
                    f"step action {step.action!r} is not in the action signature"
                )
            stray_targets = [t for t in step.target.support if t not in state_set]
            if stray_targets:
                raise AutomatonError(
                    f"step target support leaves states(M): {stray_targets!r}"
                )
            by_source.setdefault(step.source, []).append(step)
        self._steps_by_source: Dict[State, Tuple[Transition[State], ...]] = {
            source: tuple(enabled) for source, enabled in by_source.items()
        }

    @property
    def states(self) -> Tuple[State, ...]:
        """``states(M)`` in insertion order."""
        return self._states

    @property
    def start_states(self) -> Tuple[State, ...]:
        return self._start_states

    @property
    def signature(self) -> ActionSignature:
        return self._signature

    @property
    def steps(self) -> Tuple[Transition[State], ...]:
        """All steps of the automaton, grouped by source state."""
        return tuple(
            step
            for source in self._states
            for step in self._steps_by_source.get(source, ())
        )

    def transitions(self, state: State) -> Tuple[Transition[State], ...]:
        if state not in self._steps_by_source and state not in set(self._states):
            raise AutomatonError(f"{state!r} is not a state of this automaton")
        return self._steps_by_source.get(state, ())

    def validate_state(self, state: State) -> None:
        if state not in set(self._states):
            raise AutomatonError(f"{state!r} is not a state of this automaton")


class FunctionalAutomaton(ProbabilisticAutomaton[State]):
    """A probabilistic automaton whose steps are computed on demand.

    ``transition_fn`` maps a state to the sequence of transitions enabled
    there; results are memoised because adversaries and verifiers query
    the same states repeatedly.
    """

    def __init__(
        self,
        start_states: Iterable[State],
        signature: ActionSignature,
        transition_fn: Callable[[State], Sequence[Transition[State]]],
        state_validator: Optional[Callable[[State], None]] = None,
    ):
        starts = tuple(dict.fromkeys(start_states))
        if not starts:
            raise AutomatonError("start(M) must be nonempty (Definition 2.1)")
        self._start_states = starts
        self._signature = signature
        self._transition_fn = transition_fn
        self._state_validator = state_validator
        self._cache: Dict[State, Tuple[Transition[State], ...]] = {}

    @property
    def start_states(self) -> Tuple[State, ...]:
        return self._start_states

    @property
    def signature(self) -> ActionSignature:
        return self._signature

    def transitions(self, state: State) -> Tuple[Transition[State], ...]:
        cached = self._cache.get(state)
        if cached is not None:
            return cached
        computed = tuple(self._transition_fn(state))
        for step in computed:
            if step.source != state:
                raise AutomatonError(
                    f"transition function returned a step from {step.source!r} "
                    f"when queried at {state!r}"
                )
            if step.action not in self._signature:
                raise AutomatonError(
                    f"step action {step.action!r} is not in the action signature"
                )
        self._cache[state] = computed
        return computed

    def validate_state(self, state: State) -> None:
        if self._state_validator is not None:
            self._state_validator(state)
