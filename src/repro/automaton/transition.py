"""Transitions (the elements of ``steps(M)``).

Definition 2.1 makes ``steps(M)`` a subset of
``states(M) x acts(M) x Probs(states(M))``.  A :class:`Transition`
packages one such triple: a source state, an action label, and a finite
probability space over target states.
"""

from __future__ import annotations

from typing import Generic, Hashable, Optional, TypeVar

from repro.automaton.signature import Action
from repro.probability.space import FiniteDistribution

State = TypeVar("State", bound=Hashable)


class Transition(Generic[State]):
    """One element ``(source, action, (Omega, 2^Omega, P))`` of ``steps(M)``.

    Immutable and hashable, so transitions can serve as adversary
    outputs, dictionary keys in the execution automaton, and members of
    explicit step sets.
    """

    __slots__ = ("_source", "_action", "_target", "_hash")

    def __init__(
        self,
        source: State,
        action: Action,
        target: FiniteDistribution,
    ):
        self._source = source
        self._action = action
        self._target = target
        self._hash: Optional[int] = None

    @property
    def source(self) -> State:
        """The state from which this step is enabled."""
        return self._source

    @property
    def action(self) -> Action:
        """The label of this step."""
        return self._action

    @property
    def target(self) -> FiniteDistribution:
        """The probability space over next states."""
        return self._target

    def is_deterministic(self) -> bool:
        """True when the step has a unique outcome (Dirac target)."""
        return self._target.is_dirac()

    @classmethod
    def deterministic(
        cls, source: State, action: Action, target_state: State
    ) -> "Transition[State]":
        """A non-probabilistic step ``source --action--> target_state``."""
        return cls(source, action, FiniteDistribution.dirac(target_state))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Transition):
            return NotImplemented
        return (
            self._source == other._source
            and self._action == other._action
            and self._target == other._target
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._source, self._action, self._target))
        return self._hash

    def __repr__(self) -> str:
        return (
            f"Transition(source={self._source!r}, action={self._action!r}, "
            f"target={self._target!r})"
        )
