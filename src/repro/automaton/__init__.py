"""The probabilistic automaton model (Section 2 of the paper).

Exports the abstract automaton interface and its two concrete
representations, execution fragments, action signatures, transitions,
reachability/invariant analysis, parallel composition, and the patient
(timed) construction.
"""

from repro.automaton.automaton import (
    ExplicitAutomaton,
    FunctionalAutomaton,
    ProbabilisticAutomaton,
)
from repro.automaton.composition import (
    parallel_compose,
    relabel_states,
    rename_actions,
)
from repro.automaton.execution import ExecutionFragment
from repro.automaton.patient import TimedState, patient
from repro.automaton.reachability import (
    InvariantViolation,
    check_inductive_invariant,
    check_invariant,
    reachable_states,
)
from repro.automaton.signature import TIME_PASSAGE, Action, ActionSignature
from repro.automaton.traces import (
    TimedEvent,
    count_kind,
    first_occurrence_time,
    mutex_interface_well_formed,
    project_process,
    timed_trace_of,
    trace_of,
)
from repro.automaton.transition import Transition

__all__ = [
    "Action",
    "ActionSignature",
    "ExecutionFragment",
    "ExplicitAutomaton",
    "FunctionalAutomaton",
    "InvariantViolation",
    "ProbabilisticAutomaton",
    "TIME_PASSAGE",
    "TimedEvent",
    "TimedState",
    "Transition",
    "check_inductive_invariant",
    "check_invariant",
    "count_kind",
    "first_occurrence_time",
    "mutex_interface_well_formed",
    "parallel_compose",
    "patient",
    "project_process",
    "reachable_states",
    "relabel_states",
    "rename_actions",
    "timed_trace_of",
    "trace_of",
]
