"""Action signatures (Definition 2.1, third component).

An action signature partitions the actions of an automaton into
*external* actions, visible to the environment (``try_i``, ``crit_i``,
``exit_i``, ``rem_i`` in the Lehmann-Rabin automaton), and *internal*
actions (everything else, e.g. ``flip_i``).  The special time-passage
action :data:`TIME_PASSAGE` introduced by the patient construction is
internal ("a special non-visible action nu modeling the passage of
time", Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Hashable, Iterable

from repro.errors import AutomatonError

Action = Hashable

#: The paper's special non-visible time-passage action (written ``nu``).
TIME_PASSAGE: str = "nu"


@dataclass(frozen=True)
class ActionSignature:
    """The pair ``sig(M) = (ext(M), int(M))`` of disjoint action sets."""

    external: FrozenSet[Action] = field(default_factory=frozenset)
    internal: FrozenSet[Action] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        object.__setattr__(self, "external", frozenset(self.external))
        object.__setattr__(self, "internal", frozenset(self.internal))
        overlap = self.external & self.internal
        if overlap:
            raise AutomatonError(
                f"external and internal action sets overlap: {sorted(map(repr, overlap))}"
            )

    @property
    def actions(self) -> FrozenSet[Action]:
        """``acts(M)``: all actions of the signature."""
        return self.external | self.internal

    def is_external(self, action: Action) -> bool:
        """True when ``action`` is visible to the environment."""
        return action in self.external

    def is_internal(self, action: Action) -> bool:
        """True when ``action`` is hidden from the environment."""
        return action in self.internal

    def __contains__(self, action: Action) -> bool:
        return action in self.external or action in self.internal

    def hide(self, actions: Iterable[Action]) -> "ActionSignature":
        """Reclassify the given external actions as internal.

        The standard hiding operator of I/O-automata theory; useful when
        composing an automaton with a user/environment automaton whose
        interface actions should no longer be observable.
        """
        to_hide = frozenset(actions)
        missing = to_hide - self.external
        if missing:
            raise AutomatonError(
                f"cannot hide non-external actions: {sorted(map(repr, missing))}"
            )
        return ActionSignature(
            external=self.external - to_hide,
            internal=self.internal | to_hide,
        )

    def merge(self, other: "ActionSignature") -> "ActionSignature":
        """The signature of a parallel composition.

        Internal actions must be private to one component (the standard
        compatibility requirement); shared external actions synchronise.
        """
        clash = (self.internal & other.actions) | (other.internal & self.actions)
        if clash:
            raise AutomatonError(
                "incompatible signatures: internal actions shared with the "
                f"other component: {sorted(map(repr, clash))}"
            )
        return ActionSignature(
            external=self.external | other.external,
            internal=self.internal | other.internal,
        )
