"""Execution fragments (Section 2).

An execution fragment of ``M`` is an alternating sequence
``s0 a1 s1 a2 s2 ...`` of states and actions, beginning with a state
and, if finite, ending in one, where each ``(s_i, a_{i+1}, s_{i+1})``
instantiates a step of ``M``.  This module implements finite fragments
(infinite executions arise only as limits in the measure-theoretic
construction of :mod:`repro.execution.measure` and are never
materialised), together with the concatenation and prefix operations the
paper defines.
"""

from __future__ import annotations

from typing import (
    Generic,
    Hashable,
    Iterator,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro import obs
from repro.automaton.automaton import ProbabilisticAutomaton
from repro.automaton.signature import Action
from repro.errors import ExecutionError

State = TypeVar("State", bound=Hashable)


class ExecutionFragment(Generic[State]):
    """A finite execution fragment ``s0 a1 s1 ... an sn``.

    Immutable and hashable; used directly as the *states* of execution
    automata (Definition 2.3, condition 1).
    """

    __slots__ = ("_states", "_actions", "_hash")

    def __init__(self, states: Sequence[State], actions: Sequence[Action]):
        if not states:
            raise ExecutionError("an execution fragment needs at least one state")
        if len(actions) != len(states) - 1:
            raise ExecutionError(
                f"an alternating sequence with {len(states)} states needs "
                f"{len(states) - 1} actions, got {len(actions)}"
            )
        self._states: Tuple[State, ...] = tuple(states)
        self._actions: Tuple[Action, ...] = tuple(actions)
        self._hash: Optional[int] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def initial(cls, state: State) -> "ExecutionFragment[State]":
        """The length-zero fragment consisting of a single state."""
        return cls((state,), ())

    def extend(self, action: Action, state: State) -> "ExecutionFragment[State]":
        """The fragment ``self . a . s`` (one more step appended)."""
        obs.incr("fragment.extensions")
        return ExecutionFragment(self._states + (state,), self._actions + (action,))

    # ------------------------------------------------------------------
    # The paper's accessors
    # ------------------------------------------------------------------

    @property
    def fstate(self) -> State:
        """``fstate(alpha)``: the first state."""
        return self._states[0]

    @property
    def lstate(self) -> State:
        """``lstate(alpha)``: the last state."""
        return self._states[-1]

    @property
    def states(self) -> Tuple[State, ...]:
        """All states, in order (length = number of steps + 1)."""
        return self._states

    @property
    def actions(self) -> Tuple[Action, ...]:
        """All actions, in order."""
        return self._actions

    def __len__(self) -> int:
        """The number of steps (actions) in the fragment."""
        return len(self._actions)

    def steps(self) -> Iterator[Tuple[State, Action, State]]:
        """Iterate over ``(s_i, a_{i+1}, s_{i+1})`` triples."""
        for i, action in enumerate(self._actions):
            yield self._states[i], action, self._states[i + 1]

    # ------------------------------------------------------------------
    # Concatenation and prefix (Section 2)
    # ------------------------------------------------------------------

    def concat(
        self, other: "ExecutionFragment[State]"
    ) -> "ExecutionFragment[State]":
        """The concatenation ``alpha1 ^ alpha2``.

        Defined only when ``lstate(alpha1) == fstate(alpha2)``; the shared
        state appears once in the result, exactly as in the paper.
        """
        if self.lstate != other.fstate:
            raise ExecutionError(
                f"cannot concatenate: lstate {self.lstate!r} differs from "
                f"fstate {other.fstate!r}"
            )
        return ExecutionFragment(
            self._states + other._states[1:], self._actions + other._actions
        )

    def is_prefix_of(self, other: "ExecutionFragment[State]") -> bool:
        """``alpha1 <= alpha2``: prefix in the paper's sense."""
        if len(self._actions) > len(other._actions):
            return False
        return (
            other._states[: len(self._states)] == self._states
            and other._actions[: len(self._actions)] == self._actions
        )

    def suffix_after(
        self, prefix: "ExecutionFragment[State]"
    ) -> "ExecutionFragment[State]":
        """The unique ``alpha'`` with ``self == prefix ^ alpha'``.

        The inverse of :meth:`concat`; raises when ``prefix`` is not a
        prefix of this fragment.
        """
        if not prefix.is_prefix_of(self):
            raise ExecutionError(f"{prefix!r} is not a prefix of {self!r}")
        return ExecutionFragment(
            self._states[len(prefix._states) - 1 :],
            self._actions[len(prefix._actions) :],
        )

    def prefix_of_length(self, steps: int) -> "ExecutionFragment[State]":
        """The prefix with the given number of steps."""
        if not 0 <= steps <= len(self._actions):
            raise ExecutionError(
                f"no prefix with {steps} steps in a fragment of length "
                f"{len(self._actions)}"
            )
        return ExecutionFragment(
            self._states[: steps + 1], self._actions[:steps]
        )

    # ------------------------------------------------------------------
    # Validity
    # ------------------------------------------------------------------

    def is_valid_in(self, automaton: ProbabilisticAutomaton[State]) -> bool:
        """Check each step instantiates some step of ``automaton``.

        A triple ``(s, a, s')`` is justified when ``M`` has a step
        ``(s, a, (Omega, F, P))`` with ``s'`` in ``Omega``.
        """
        for source, action, target in self.steps():
            justified = any(
                transition.action == action and target in transition.target
                for transition in automaton.transitions(source)
            )
            if not justified:
                return False
        return True

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExecutionFragment):
            return NotImplemented
        return self._states == other._states and self._actions == other._actions

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._states, self._actions))
        return self._hash

    def __repr__(self) -> str:
        if not self._actions:
            return f"ExecutionFragment({self._states[0]!r})"
        parts = [repr(self._states[0])]
        for i, action in enumerate(self._actions):
            parts.append(repr(action))
            parts.append(repr(self._states[i + 1]))
        return "ExecutionFragment(" + " . ".join(parts) + ")"
