"""External behaviour: traces of execution fragments.

The model distinguishes external from internal actions (Definition 2.1)
precisely so that systems can be compared by their visible behaviour.
For Lehmann-Rabin the externals are the user-interface actions
``try_i``/``crit_i``/``exit_i``/``rem_i``; a trace records, e.g., the
order in which processes announce their critical sections — which is
what a user of the mutual-exclusion service can observe.

This module extracts traces (optionally timestamped) and provides the
small utilities the tests and analysis code need: projection onto a
process, counting occurrences, and well-formedness checks of the
mutual-exclusion interface (``try`` before ``crit`` before ``exit``
before ``rem``, cyclically, per process).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Hashable, List, Optional, Sequence, Tuple, TypeVar

from repro.automaton.execution import ExecutionFragment
from repro.automaton.signature import Action, ActionSignature

State = TypeVar("State", bound=Hashable)


def trace_of(
    fragment: ExecutionFragment[State], signature: ActionSignature
) -> Tuple[Action, ...]:
    """The trace: the fragment's external actions, in order."""
    return tuple(
        action for action in fragment.actions if signature.is_external(action)
    )


@dataclass(frozen=True)
class TimedEvent:
    """One external action with the time at which it occurred."""

    action: Action
    time: Fraction


def timed_trace_of(
    fragment: ExecutionFragment[State],
    signature: ActionSignature,
    time_of: Callable[[State], Fraction],
) -> Tuple[TimedEvent, ...]:
    """The trace with per-event timestamps (time of the source state)."""
    events: List[TimedEvent] = []
    for source, action, _ in fragment.steps():
        if signature.is_external(action):
            events.append(TimedEvent(action=action, time=time_of(source)))
    return tuple(events)


def project_process(
    trace: Sequence[Action], process: Hashable
) -> Tuple[Action, ...]:
    """The subsequence of a trace belonging to one process.

    Assumes the ``(kind, index)`` action convention used by all the
    case studies in this library.
    """
    return tuple(
        action
        for action in trace
        if isinstance(action, tuple) and len(action) == 2
        and action[1] == process
    )


def count_kind(trace: Sequence[Action], kind: str) -> int:
    """How many trace actions have the given kind."""
    return sum(
        1
        for action in trace
        if isinstance(action, tuple) and len(action) == 2
        and action[0] == kind
    )


#: The cyclic user-interface protocol of the mutual-exclusion service.
_MUTEX_CYCLE = ("try", "crit", "exit", "rem")


def mutex_interface_well_formed(trace: Sequence[Action]) -> bool:
    """Does the trace respect the try/crit/exit/rem cycle per process?

    Every process's projection must be a prefix of
    ``try crit exit rem try crit ...``.  This is the *external*
    correctness condition of the Dining Philosophers interface — an
    observation-level complement to the state-level invariants of
    Lemma 6.1.
    """
    positions: dict = {}
    for action in trace:
        if not (isinstance(action, tuple) and len(action) == 2):
            return False
        kind, process = action
        if kind not in _MUTEX_CYCLE:
            continue
        expected = _MUTEX_CYCLE[positions.get(process, 0) % 4]
        if kind != expected:
            return False
        positions[process] = positions.get(process, 0) + 1
    return True


def first_occurrence_time(
    timed_trace: Sequence[TimedEvent], kind: str
) -> Optional[Fraction]:
    """The time of the first event of the given kind, if any."""
    for event in timed_trace:
        action = event.action
        if isinstance(action, tuple) and len(action) == 2 and action[0] == kind:
            return event.time
    return None
