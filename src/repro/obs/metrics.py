"""Counters, gauges, and histograms with summary statistics.

Three instrument kinds, named by dotted lowercase strings
(``layer.component.metric``, see ``docs/observability.md``):

* :class:`Counter` — a monotone total (samples drawn, rules applied);
* :class:`Gauge` — a last-write-wins value (states in a sweep);
* :class:`Histogram` — a value distribution summarised as
  count/mean/min/p50/p95/max (steps per sample, residual per sweep).

A :class:`Metrics` registry hands out instruments by name, creating
them on first use; one name is permanently bound to one kind.  The
no-op twin :class:`NoopMetrics` returns shared instruments whose
recording methods do nothing, so disabled call sites cost a method call
and no allocation.

Percentiles use the nearest-rank method on the sorted observations:
``p`` maps to the value at one-based rank ``ceil(p/100 * count)``.
Exact, simple, and correct for the modest sample counts the
reproduction produces (it never interpolates values that were not
observed).
"""

from __future__ import annotations

import math
from typing import Dict, List, Union

from repro.errors import ObservabilityError

Number = Union[int, float]


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (nonnegative) to the total."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (got {amount!r})"
            )
        self.value += amount


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        """Record the current value, replacing the previous one."""
        self.value = value


class Histogram:
    """A distribution of observed values.

    Observations are kept verbatim (the reproduction's workloads record
    thousands of values, not millions), so every summary statistic is
    exact rather than bucketed.
    """

    __slots__ = ("name", "_values", "_sorted")

    def __init__(self, name: str):
        self.name = name
        self._values: List[float] = []
        self._sorted = True

    def observe(self, value: Number) -> None:
        """Record one observation."""
        value = float(value)
        if self._values and value < self._values[-1]:
            self._sorted = False
        self._values.append(value)

    @property
    def count(self) -> int:
        """The number of observations."""
        return len(self._values)

    @property
    def values(self) -> List[float]:
        """The raw observations, in recording order when unsorted."""
        return list(self._values)

    def _ordered(self) -> List[float]:
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        return self._values

    def percentile(self, p: float) -> float:
        """The nearest-rank ``p``-th percentile, ``0 < p <= 100``."""
        if not self._values:
            raise ObservabilityError(
                f"histogram {self.name!r} has no observations"
            )
        if not 0 < p <= 100:
            raise ObservabilityError(f"percentile {p!r} outside (0, 100]")
        ordered = self._ordered()
        rank = math.ceil(p / 100 * len(ordered))
        return ordered[rank - 1]

    @property
    def mean(self) -> float:
        """The arithmetic mean of the observations."""
        if not self._values:
            raise ObservabilityError(
                f"histogram {self.name!r} has no observations"
            )
        return sum(self._values) / len(self._values)

    def summary(self) -> Dict[str, float]:
        """count/mean/min/p50/p95/max as a plain dict (empty: count 0)."""
        if not self._values:
            return {"count": 0}
        ordered = self._ordered()
        return {
            "count": len(ordered),
            "mean": self.mean,
            "min": ordered[0],
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "max": ordered[-1],
        }


class Metrics:
    """A name-indexed registry of instruments, created on first use."""

    __slots__ = ("_instruments",)

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, kind: type) -> object:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name)
            self._instruments[name] = instrument
        elif type(instrument) is not kind:
            raise ObservabilityError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name``."""
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name``."""
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name``."""
        return self._get(name, Histogram)  # type: ignore[return-value]

    @property
    def counters(self) -> Dict[str, Counter]:
        """All counters, keyed by name."""
        return {
            name: inst for name, inst in self._instruments.items()
            if isinstance(inst, Counter)
        }

    @property
    def gauges(self) -> Dict[str, Gauge]:
        """All gauges, keyed by name."""
        return {
            name: inst for name, inst in self._instruments.items()
            if isinstance(inst, Gauge)
        }

    @property
    def histograms(self) -> Dict[str, Histogram]:
        """All histograms, keyed by name."""
        return {
            name: inst for name, inst in self._instruments.items()
            if isinstance(inst, Histogram)
        }

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All instrument values as plain dicts (for sinks and tests)."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self.histograms.items())
            },
        }


class _NoopInstrument:
    """Shared stand-in for every instrument kind when metrics are off."""

    __slots__ = ()
    name = "noop"

    def inc(self, amount: Number = 1) -> None:
        pass

    def set(self, value: Number) -> None:
        pass

    def observe(self, value: Number) -> None:
        pass


class NoopMetrics:
    """A metrics registry that records nothing and allocates nothing."""

    __slots__ = ()

    def counter(self, name: str) -> _NoopInstrument:
        return NOOP_INSTRUMENT

    def gauge(self, name: str) -> _NoopInstrument:
        return NOOP_INSTRUMENT

    def histogram(self, name: str) -> _NoopInstrument:
        return NOOP_INSTRUMENT

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NOOP_INSTRUMENT = _NoopInstrument()
