"""The canonical catalog of observability metric names.

Every metric the library records is declared here, once, with its kind
and a one-line description.  Three consumers rely on that:

* ``tools/lint.py`` rejects ``obs.incr``/``obs.gauge``/``obs.observe``
  call sites under ``src/`` whose literal name is not declared here —
  a typo'd metric name would otherwise record into a dead counter that
  no table, manifest, or dashboard ever reads;
* ``docs/observability.md`` carries the catalog rendered as a table
  (``python -m repro.obs.names`` prints it; a test pins the doc and
  this module against each other);
* ``repro runs diff`` and the manifest layer treat any name declared
  here as comparable across runs.

A handful of metric *families* are named dynamically (one counter per
ledger rule, one per contract-violation kind).  Those are declared by
prefix in :data:`DYNAMIC_PREFIXES`; the lint pass accepts any literal
that extends a declared prefix, and the docs list the family once.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: name -> (kind, description).  Kinds: ``counter`` | ``gauge`` |
#: ``histogram``.  Keep the table sorted by name.
METRICS: Dict[str, Tuple[str, str]] = {
    "adversary.decisions": (
        "counter", "scheduling decisions an adversary made"),
    "adversary.halts": (
        "counter", "decisions where the adversary halted the execution"),
    "checkpoint.records_dropped": (
        "counter", "undecodable checkpoint lines skipped on load"),
    "checkpoint.tasks_recorded": (
        "counter", "completed task results appended to a checkpoint"),
    "checkpoint.tasks_skipped": (
        "counter", "tasks satisfied from a checkpoint on --resume"),
    "contracts.quarantined": (
        "counter", "(adversary, start) pairs a strict run skipped"),
    "contracts.violations": (
        "counter", "every contract violation detected (any kind)"),
    "corpus.cells": (
        "counter", "matrix cells (mode x engine x workers) classified"),
    "corpus.entries": (
        "counter", "defect-corpus entries replayed"),
    "corpus.mismatches": (
        "counter", "corpus problems: divergent or unexpected cells"),
    "execution.automata_built": (
        "counter", "execution automata constructed"),
    "execution.step_cache_hits": (
        "counter", "execution-automaton step-cache hits"),
    "execution.step_cache_misses": (
        "counter", "execution-automaton step-cache misses"),
    "fragment.extensions": (
        "counter", "execution-fragment extension steps"),
    "fuzz.cases": (
        "counter", "differential fuzz cases generated and diffed"),
    "fuzz.divergences": (
        "counter", "fuzz cases on which engines disagreed"),
    "fuzz.shrink_steps": (
        "counter", "simplifying rewrites adopted while shrinking"),
    "ledger.applications": (
        "counter", "proof-rule applications recorded in the ledger"),
    "measure.evaluations": (
        "counter", "exact event-probability evaluations"),
    "measure.tree_nodes": (
        "counter", "nodes expanded by exact tree evaluation"),
    "mdp.bounded.calls": (
        "counter", "bounded-reachability evaluations"),
    "mdp.bounded.states_evaluated": (
        "counter", "memoised states touched by bounded reachability"),
    "mdp.bounded_rounds.calls": (
        "counter", "round-bounded reachability evaluations"),
    "mdp.bounded_rounds.states_evaluated": (
        "counter", "memoised states touched by round-bounded reachability"),
    "mdp.expected_time.nodes": (
        "gauge", "nodes in the expected-time MDP"),
    "mdp.expected_time.residual": (
        "histogram", "per-sweep residual of expected-time iteration"),
    "mdp.expected_time.states_touched": (
        "counter", "state updates across expected-time sweeps"),
    "mdp.expected_time.sweeps": (
        "counter", "expected-time value-iteration sweeps"),
    "mdp.value_iteration.residual": (
        "histogram", "per-sweep residual of value iteration"),
    "mdp.value_iteration.states": (
        "gauge", "states in the value-iteration space"),
    "mdp.value_iteration.states_touched": (
        "counter", "state updates across value-iteration sweeps"),
    "mdp.value_iteration.sweeps": (
        "counter", "value-iteration sweeps"),
    "pool.corrupted": (
        "counter", "pooled results rejected by the integrity digest"),
    "pool.crashes": (
        "counter", "worker processes that died without delivering"),
    "pool.degraded": (
        "gauge", "1 when the pool degraded to inline execution"),
    "pool.retries": (
        "counter", "pooled task attempts retried after a worker loss"),
    "pool.timeouts": (
        "counter", "pooled tasks that exceeded their wall-clock timeout"),
    "sampler.accepted": (
        "counter", "samples that satisfied the target event"),
    "sampler.rejected": (
        "counter", "samples that completed without satisfying the event"),
    "sampler.samples": (
        "counter", "execution samples drawn"),
    "sampler.steps": (
        "counter", "execution steps simulated"),
    "sampler.steps_per_sample": (
        "histogram", "steps taken by each execution sample"),
    "sampler.time_samples": (
        "counter", "time-to-target samples drawn"),
    "sampler.time_to_target": (
        "histogram", "observed time until the target region"),
    "sampler.truncated": (
        "counter", "samples cut off by the step budget"),
    "sampler.unreached": (
        "counter", "time samples that never reached the target"),
    "service.cache.corrupt": (
        "counter", "cache entries that failed sha256 verification"),
    "service.cache.hits": (
        "counter", "jobs served from the content-addressed result cache"),
    "service.cache.misses": (
        "counter", "cache lookups that found no verified entry"),
    "service.jobs.cancelled": (
        "counter", "jobs cancelled before completion"),
    "service.jobs.completed": (
        "counter", "jobs completed by a serve run"),
    "service.jobs.failed": (
        "counter", "job attempts recorded as failures"),
    "service.jobs.submitted": (
        "counter", "jobs appended to the durable queue"),
    "service.leases.expired": (
        "counter", "operations rejected because the lease was lost"),
    "service.leases.reclaimed": (
        "counter", "expired running leases returned to pending"),
    "service.store.records_dropped": (
        "counter", "undecodable job-store lines skipped on load"),
    "service.workers.restarted": (
        "counter", "supervised workers restarted after unclean exits"),
    "statespace.compile_ms": (
        "histogram", "wall-clock milliseconds per state-space compile"),
    "statespace.compiled_adversaries": (
        "gauge", "adversaries tabulated into compiled decision tables"),
    "statespace.flat_nodes": (
        "gauge", "product nodes flattened into batched CSR arrays"),
    "statespace.states": (
        "gauge", "interned states in the compiled space"),
    "statespace.transitions": (
        "gauge", "tabulated transitions in the compiled space"),
    "verifier.exact_pairs": (
        "counter", "(adversary, start) pairs checked exactly"),
    "verifier.pair_estimate": (
        "histogram", "per-pair success-probability estimates"),
    "verifier.pairs": (
        "counter", "(adversary, start) pairs sampled"),
    "verifier.samples": (
        "counter", "Monte-Carlo samples drawn across all pairs"),
    "verifier.successes": (
        "counter", "samples that satisfied the checked statement"),
    "verifier.truncated": (
        "counter", "verifier samples cut off by the step budget"),
}

#: Dynamically named metric families, declared by prefix.  A literal
#: call-site name extending one of these prefixes is considered
#: declared; the family is documented once.
DYNAMIC_PREFIXES: Dict[str, Tuple[str, str]] = {
    "contracts.": (
        "counter",
        "per-kind violation counters: contracts.distribution, "
        "contracts.adversary, contracts.closure, contracts.fuel, "
        "contracts.quotient"),
    "ledger.rule.": (
        "counter",
        "per-rule application counters: ledger.rule.assume, "
        "ledger.rule.compose, ..."),
}


def declared(name: str) -> bool:
    """True when ``name`` is a declared metric or extends a declared
    dynamic-family prefix."""
    if name in METRICS:
        return True
    return any(name.startswith(prefix) for prefix in DYNAMIC_PREFIXES)


def catalog_markdown() -> str:
    """The full metric catalog as a markdown table (for the docs)."""
    lines = ["| name | kind | description |", "| --- | --- | --- |"]
    for name, (kind, description) in sorted(METRICS.items()):
        lines.append(f"| `{name}` | {kind} | {description} |")
    for prefix, (kind, description) in sorted(DYNAMIC_PREFIXES.items()):
        lines.append(f"| `{prefix}*` | {kind} | {description} |")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - doc helper
    print(catalog_markdown())
