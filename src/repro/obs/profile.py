"""Span profiling: fold tracer output into a per-phase profile.

The tracer records a forest of timed spans; this module folds that
forest into an aggregate keyed by *stack* — the ``;``-joined path of
span names from root to node, the same shape flamegraph tooling eats.
Each stack carries call count, cumulative seconds (time inside the
span, children included), and self seconds (cumulative minus the
children's cumulative — the time the phase itself burned).

Input can be a live :class:`~repro.obs.trace.Tracer`, the span records
of a ``--trace-out`` JSONL file, or the ``profile`` rows stored in a
run manifest — :func:`aggregate_spans` and :func:`merge_profiles`
normalise all three to the same row shape, so ``repro profile`` renders
any of them:

    repro profile trace.jsonl --top 15
    repro profile trace.jsonl --folded > out.folded
    repro profile --run a1b2c3

Folded output is one line per stack, ``a;b;c <self_microseconds>`` —
feed it straight to ``flamegraph.pl`` or speedscope.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.obs.sinks import _table, span_records
from repro.obs.trace import Tracer

#: One profile row: {"stack": "a;b", "calls": int, "cum_s": float,
#: "self_s": float}.
ProfileRow = Dict[str, object]


def aggregate_spans(
    records: Iterable[Dict[str, object]],
) -> List[ProfileRow]:
    """Fold span records (``sinks.span_records`` shape) into profile rows.

    Records whose ``type`` is not ``span`` are ignored, so a whole
    ``--trace-out`` JSONL file (spans + metrics + reports) can be passed
    verbatim.  Open spans (``duration_s`` is ``None``) count as zero
    seconds but still contribute a call.
    """
    spans = [
        record for record in records if record.get("type") == "span"
    ]
    by_id: Dict[object, Dict[str, object]] = {
        span["id"]: span for span in spans
    }

    def stack_of(span: Dict[str, object]) -> str:
        names: List[str] = []
        node: Optional[Dict[str, object]] = span
        while node is not None:
            names.append(str(node["name"]))
            parent = node.get("parent")
            node = by_id.get(parent) if parent is not None else None
        return ";".join(reversed(names))

    totals: Dict[str, ProfileRow] = {}
    for span in spans:
        stack = stack_of(span)
        duration = span.get("duration_s") or 0.0
        children_s = sum(
            (child.get("duration_s") or 0.0)
            for child in spans
            if child.get("parent") == span["id"]
        )
        row = totals.setdefault(
            stack,
            {"stack": stack, "calls": 0, "cum_s": 0.0, "self_s": 0.0},
        )
        row["calls"] += 1
        row["cum_s"] += float(duration)
        row["self_s"] += max(float(duration) - children_s, 0.0)
    return sorted(totals.values(), key=lambda row: str(row["stack"]))


def profile_tracer(tracer: Tracer) -> List[ProfileRow]:
    """Profile rows for a live tracer's recorded spans."""
    return aggregate_spans(span_records(tracer))


def merge_profiles(
    groups: Iterable[Sequence[ProfileRow]],
) -> List[ProfileRow]:
    """Sum several row sets stack-wise (e.g. rows from many manifests)."""
    totals: Dict[str, ProfileRow] = {}
    for rows in groups:
        for source in rows:
            stack = str(source["stack"])
            row = totals.setdefault(
                stack,
                {"stack": stack, "calls": 0, "cum_s": 0.0, "self_s": 0.0},
            )
            row["calls"] += int(source.get("calls", 0))
            row["cum_s"] += float(source.get("cum_s", 0.0))
            row["self_s"] += float(source.get("self_s", 0.0))
    return sorted(totals.values(), key=lambda row: str(row["stack"]))


def render_profile(rows: Sequence[ProfileRow], top: int = 20) -> str:
    """The top-N hotspots by self time, as a fixed-width table."""
    if not rows:
        return "(no spans recorded)"
    hottest = sorted(
        rows, key=lambda row: float(row["self_s"]), reverse=True
    )[:top]
    table_rows = [
        (
            str(row["stack"]),
            row["calls"],
            f"{float(row['self_s']):.4f}",
            f"{float(row['cum_s']):.4f}",
        )
        for row in hottest
    ]
    return _table(("stack", "calls", "self_s", "cum_s"), table_rows)


def render_folded(rows: Sequence[ProfileRow]) -> str:
    """Folded flamegraph lines: ``a;b;c <self_microseconds>``."""
    lines = [
        f"{row['stack']} {int(round(float(row['self_s']) * 1_000_000))}"
        for row in sorted(rows, key=lambda row: str(row["stack"]))
    ]
    return "\n".join(lines)
