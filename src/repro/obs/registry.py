"""The process-wide instrumentation registry.

One :class:`Registry` bundles a tracer and a metrics store; exactly one
is *active* per process at a time.  The default is :data:`NOOP_REGISTRY`
— its tracer and metrics discard everything, so instrumented call sites
cost a function call and an attribute check when observability is off.

Recording is enabled by installing a recording registry, usually via
the :func:`recording` context manager::

    with recording() as registry:
        run_experiment()
    print(render_span_tree(registry.tracer))

Installation is process-global by design: the hot paths (samplers,
value-iteration sweeps, adversary decisions) must not thread a registry
argument through every signature, and the reproduction's experiments
are single-threaded.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

from repro.obs.metrics import Metrics, NoopMetrics
from repro.obs.trace import NoopTracer, Tracer


class Registry:
    """A tracer/metrics pair with an ``enabled`` fast-path flag."""

    __slots__ = ("tracer", "metrics", "enabled")

    def __init__(self, tracer, metrics, enabled: bool = True):
        self.tracer = tracer
        self.metrics = metrics
        self.enabled = enabled


NOOP_REGISTRY = Registry(NoopTracer(), NoopMetrics(), enabled=False)

_active: Registry = NOOP_REGISTRY


def get_registry() -> Registry:
    """The currently active registry (the no-op one by default)."""
    return _active


def install(registry: Registry) -> Registry:
    """Make ``registry`` active; returns the previously active one."""
    global _active
    previous = _active
    _active = registry
    return previous


def reset() -> None:
    """Restore the no-op default registry."""
    install(NOOP_REGISTRY)


def recording_registry(
    clock: Optional[Callable[[], float]] = None
) -> Registry:
    """A fresh registry that records spans and metrics."""
    tracer = Tracer(clock) if clock is not None else Tracer(time.perf_counter)
    return Registry(tracer, Metrics(), enabled=True)


@contextmanager
def recording(
    clock: Optional[Callable[[], float]] = None
) -> Iterator[Registry]:
    """Install a fresh recording registry for the duration of a block.

    The previously active registry is restored on exit, so nested
    recordings and test isolation both work.
    """
    registry = recording_registry(clock)
    previous = install(registry)
    try:
        yield registry
    finally:
        install(previous)
