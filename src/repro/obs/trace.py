"""Hierarchical tracing: spans with wall-clock timings.

A *span* is one timed region of work ("check statement A.11", "value
iteration sweep") with free-form attributes and child spans.  A
:class:`Tracer` maintains the current span stack so nested
``with tracer.span(...)`` blocks build the tree; finished roots are kept
for rendering and for the JSONL sink.

The clock is injectable (``perf_counter`` by default) so tests can
assert exact durations.  Nothing here imports the rest of ``repro`` —
the observability layer sits below every other package.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import ObservabilityError


class Span:
    """One timed region of work, with attributes and child spans.

    ``duration`` is ``None`` while the span is still open and a float
    number of seconds once it has finished.
    """

    __slots__ = ("name", "attributes", "started", "duration", "children")

    def __init__(self, name: str, attributes: Dict[str, object], started: float):
        self.name = name
        self.attributes = attributes
        self.started = started
        self.duration: Optional[float] = None
        self.children: List["Span"] = []

    def annotate(self, **attributes: object) -> None:
        """Attach (or overwrite) attributes on an open or closed span."""
        self.attributes.update(attributes)

    def walk(self, depth: int = 0) -> Iterator[Tuple["Span", int]]:
        """Yield this span and all descendants with their depths."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def __repr__(self) -> str:
        timing = "open" if self.duration is None else f"{self.duration:.6f}s"
        return f"Span({self.name!r}, {timing}, {len(self.children)} children)"


class Tracer:
    """Builds span trees from nested ``with span(...)`` blocks."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._stack: List[Span] = []
        self.roots: List[Span] = []

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Span]:
        """Open a child span of the current span (or a new root)."""
        started = self._clock()
        span = Span(name, dict(attributes), started)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.duration = self._clock() - started
            popped = self._stack.pop()
            if popped is not span:  # pragma: no cover - defensive
                raise ObservabilityError("span stack corrupted")

    def walk(self) -> Iterator[Tuple[Span, int]]:
        """Yield every recorded span with its depth, roots first."""
        for root in self.roots:
            yield from root.walk()


class _NoopSpan:
    """The shared do-nothing span handed out when tracing is off."""

    __slots__ = ()

    def annotate(self, **attributes: object) -> None:
        pass


class _NoopSpanContext:
    """A reusable, stateless context manager yielding the no-op span."""

    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return NOOP_SPAN

    def __exit__(self, *exc_info: object) -> bool:
        return False


class NoopTracer:
    """A tracer whose spans cost one attribute lookup and nothing else."""

    __slots__ = ()
    roots: List[Span] = []

    def span(self, name: str, **attributes: object) -> _NoopSpanContext:
        return NOOP_SPAN_CONTEXT

    def walk(self) -> Iterator[Tuple[Span, int]]:
        return iter(())


NOOP_SPAN = _NoopSpan()
NOOP_SPAN_CONTEXT = _NoopSpanContext()
