"""Live progress for pooled verification runs, on stderr only.

``--progress`` installs a :class:`ProgressReporter` for the duration of
a CLI run.  The pool (and the inline fast path of
:func:`repro.parallel.pool.run_tasks`) notifies it through the
module-level hook functions below; the reporter renders a single
rewriting status line — completed/total tasks, tasks/sec, an ETA, and
the retry / quarantine / degradation counters — to **stderr**.  Stdout
is never touched, so every report stays byte-identical with progress on
or off; that invariant is pinned by ``tests/test_progress.py``.

The hooks are the only coupling the pool has to this module.  With no
reporter installed each hook is one module-attribute read and an
``is None`` branch — the same disabled-path discipline as the
:mod:`repro.obs` metric helpers, and bounded by the same benchmark
(``benchmarks/bench_observability.py``).

A verification command may call :func:`repro.parallel.pool.run_tasks`
several times (chained statements, parameter sweeps); totals accumulate
across batches so the rendered line covers the whole run, not just the
current batch.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Optional, TextIO


class ProgressReporter:
    """Accumulates task events and renders one rewriting stderr line.

    ``min_interval`` throttles rendering (terminal writes are slow
    compared to sampling tasks); the final :meth:`close` always renders
    once more and terminates the line so subsequent stderr output
    starts clean.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        *,
        label: str = "progress",
        min_interval: float = 0.1,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.stream = stream if stream is not None else sys.stderr
        self.label = label
        self.min_interval = min_interval
        self._clock = clock
        self.total = 0
        self.done = 0
        self.retries = 0
        self.quarantined = 0
        self.degraded = False
        self._started = self._clock()
        self._last_render = float("-inf")
        self._dirty = False

    # -- event intake --------------------------------------------------

    def add_total(self, count: int) -> None:
        """Announce ``count`` more tasks (a new batch entering the pool)."""
        self.total += count
        self.render()

    def task_done(self, result: object = None) -> None:
        """One task finished; counts its quarantined pairs when exposed."""
        self.done += 1
        violation = getattr(result, "violation", None)
        if violation is not None:
            self.quarantined += 1
        self.render()

    def task_retried(self) -> None:
        """One task attempt was lost (crash/timeout/corruption)."""
        self.retries += 1
        self.render(force=True)

    def pool_degraded(self) -> None:
        """The pool abandoned its workers for inline execution."""
        self.degraded = True
        self.render(force=True)

    # -- rendering -----------------------------------------------------

    def _line(self) -> str:
        elapsed = max(self._clock() - self._started, 1e-9)
        rate = self.done / elapsed
        if self.done and self.done < self.total and rate > 0:
            remaining = (self.total - self.done) / rate
            eta = f"eta {remaining:.0f}s"
        else:
            eta = "eta --"
        parts = [
            f"{self.label}: {self.done}/{self.total} tasks",
            f"{rate:.1f}/s",
            eta,
        ]
        if self.retries:
            parts.append(f"retries {self.retries}")
        if self.quarantined:
            parts.append(f"quarantined {self.quarantined}")
        if self.degraded:
            parts.append("DEGRADED")
        return "  ".join(parts)

    def render(self, force: bool = False) -> None:
        """Rewrite the status line, honouring the throttle interval."""
        now = self._clock()
        if not force and now - self._last_render < self.min_interval:
            self._dirty = True
            return
        self._last_render = now
        self._dirty = False
        self.stream.write(f"\r\x1b[2K{self._line()}")
        self.stream.flush()

    def close(self) -> None:
        """Render the final state and terminate the status line."""
        self.stream.write(f"\r\x1b[2K{self._line()}\n")
        self.stream.flush()


# ----------------------------------------------------------------------
# Module-level hooks (the pool's only coupling to progress reporting)
# ----------------------------------------------------------------------

_active: Optional[ProgressReporter] = None


def install(reporter: Optional[ProgressReporter]) -> Optional[ProgressReporter]:
    """Install ``reporter`` as the active one; returns the previous."""
    global _active
    previous = _active
    _active = reporter
    return previous


def active() -> Optional[ProgressReporter]:
    """The currently installed reporter, if any."""
    return _active


class reporting:
    """Context manager installing a reporter for one CLI run."""

    def __init__(self, reporter: ProgressReporter):
        self.reporter = reporter
        self._previous: Optional[ProgressReporter] = None

    def __enter__(self) -> ProgressReporter:
        self._previous = install(self.reporter)
        return self.reporter

    def __exit__(self, *exc_info: object) -> bool:
        install(self._previous)
        self.reporter.close()
        return False


def add_total(count: int) -> None:
    if _active is not None:
        _active.add_total(count)


def task_done(result: object = None) -> None:
    if _active is not None:
        _active.task_done(result)


def task_retried() -> None:
    if _active is not None:
        _active.task_retried()


def pool_degraded() -> None:
    if _active is not None:
        _active.pool_degraded()
