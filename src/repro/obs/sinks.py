"""Sinks: JSONL run records and human-readable renderings.

Two consumers of a finished recording:

* :class:`JsonlSink` — one JSON object per line, types ``span``,
  ``counter``, ``gauge``, ``histogram``, and ``report`` (the
  ``to_dict()`` of a verifier report).  Machine-readable, append-only,
  diffable; :func:`read_jsonl` round-trips it.
* :func:`render_span_tree` / :func:`render_metric_tables` — fixed-width
  text for terminals, used by ``repro trace`` and ``repro stats``.

This module deliberately renders its own tables instead of importing
:mod:`repro.analysis.reporting`: the analysis package sits *above* the
instrumented layers, so importing it here would close a cycle.
"""

from __future__ import annotations

import json
from fractions import Fraction
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

from repro import durable_io
from repro.obs.metrics import Metrics
from repro.obs.registry import Registry
from repro.obs.trace import Span, Tracer


def jsonable(value: object) -> object:
    """Coerce a value to something ``json.dumps`` accepts.

    Fractions render as ``"num/den"`` strings (exactness survives the
    round trip as text); containers recurse; anything else falls back
    to ``repr`` so domain states stay identifiable in trace files.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Fraction):
        return f"{value.numerator}/{value.denominator}"
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(item) for item in value]
    return repr(value)


def span_records(tracer: Tracer) -> List[Dict[str, object]]:
    """Flatten a tracer's span trees into JSONL-ready dicts.

    Spans get depth-first integer ids; ``parent`` is ``None`` for
    roots.  Durations are seconds (``None`` for spans still open).
    """
    records: List[Dict[str, object]] = []
    ids: Dict[int, int] = {}

    def visit(span: Span, parent: object) -> None:
        span_id = len(records)
        ids[id(span)] = span_id
        records.append(
            {
                "type": "span",
                "id": span_id,
                "parent": parent,
                "name": span.name,
                "duration_s": span.duration,
                "attributes": jsonable(span.attributes),
            }
        )
        for child in span.children:
            visit(child, span_id)

    for root in tracer.roots:
        visit(root, None)
    return records


def metric_records(metrics: Metrics) -> List[Dict[str, object]]:
    """One JSONL-ready dict per instrument, sorted by name."""
    records: List[Dict[str, object]] = []
    for name, counter in sorted(metrics.counters.items()):
        records.append({"type": "counter", "name": name,
                        "value": counter.value})
    for name, gauge in sorted(metrics.gauges.items()):
        records.append({"type": "gauge", "name": name, "value": gauge.value})
    for name, histogram in sorted(metrics.histograms.items()):
        records.append({"type": "histogram", "name": name,
                        "summary": histogram.summary()})
    return records


class JsonlSink:
    """Writes run records to a JSONL file."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    def write(self, records: Iterable[Dict[str, object]]) -> int:
        """Append records to the file; returns the number written.

        Routed through :class:`repro.durable_io.DurableAppender` (one
        fsynced write per record) so a crash mid-dump tears at most
        the final line, which :func:`read_jsonl` tolerates.
        """
        count = 0
        with durable_io.DurableAppender(str(self.path)) as appender:
            for record in records:
                appender.append_line(
                    json.dumps(jsonable(record), sort_keys=True)
                )
                count += 1
        return count

    def write_run(
        self,
        registry: Registry,
        reports: Sequence[Dict[str, object]] = (),
    ) -> int:
        """Write a recording's spans, metrics, and report dicts."""
        records: List[Dict[str, object]] = []
        records.extend(span_records(registry.tracer))
        records.extend(metric_records(registry.metrics))
        for report in reports:
            records.append({"type": "report", **report})
        return self.write(records)


def read_jsonl(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Parse a JSONL trace file back into dicts.

    Blank lines are skipped, and a truncated *final* line (the torn
    tail a killed writer leaves) is dropped; undecodable interior
    lines still raise — a trace file damaged anywhere else was not
    produced by a crash of a correct writer.
    """
    if not Path(path).exists():
        raise FileNotFoundError(f"no such trace file: {path}")
    records, _dropped = durable_io.load_jsonl(str(path), tolerate="tail")
    return [record for _lineno, record in records]


# ----------------------------------------------------------------------
# Human-readable rendering
# ----------------------------------------------------------------------


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A minimal fixed-width table (no dependency on the analysis layer)."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    parts = [line(list(headers)), line(["-" * width for width in widths])]
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)


def _format_duration(seconds: object) -> str:
    if seconds is None:
        return "open"
    value = float(seconds)  # type: ignore[arg-type]
    if value >= 1.0:
        return f"{value:.2f}s"
    return f"{value * 1000:.2f}ms"


def render_span_tree(tracer: Tracer) -> str:
    """The span forest as an indented text tree with durations."""
    lines: List[str] = []
    for span, depth in tracer.walk():
        attrs = " ".join(
            f"{key}={jsonable(value)}"
            for key, value in sorted(span.attributes.items())
        )
        suffix = f"  [{attrs}]" if attrs else ""
        lines.append(
            f"{'  ' * depth}{span.name}  "
            f"{_format_duration(span.duration)}{suffix}"
        )
    if not lines:
        return "(no spans recorded)"
    return "\n".join(lines)


def render_metric_tables(metrics: Metrics) -> str:
    """Counters, gauges, and histograms as stacked text tables."""
    sections: List[str] = []
    counters = sorted(metrics.counters.items())
    if counters:
        sections.append("counters\n" + _table(
            ("name", "value"),
            [(name, counter.value) for name, counter in counters],
        ))
    gauges = sorted(metrics.gauges.items())
    if gauges:
        sections.append("gauges\n" + _table(
            ("name", "value"),
            [(name, gauge.value) for name, gauge in gauges],
        ))
    histograms = sorted(metrics.histograms.items())
    if histograms:
        rows = []
        for name, histogram in histograms:
            summary = histogram.summary()
            rows.append(
                (
                    name,
                    summary["count"],
                    *(
                        f"{summary[key]:.4g}" if summary.get(key) is not None
                        else "n/a"
                        for key in ("mean", "p50", "p95", "max")
                    ),
                )
            )
        sections.append("histograms\n" + _table(
            ("name", "count", "mean", "p50", "p95", "max"), rows
        ))
    if not sections:
        return "(no metrics recorded)"
    return "\n\n".join(sections)
