"""Run manifests: provenance records for every CLI invocation.

Each ``repro`` run (opt-out: ``--no-manifest``) appends one JSON record
to ``<runs_dir>/manifests.jsonl`` describing what ran and what came
out: argv, the resolved result-affecting configuration, a
content-addressed *scope fingerprint* over that configuration, the git
revision, wall time, exit status, a final metrics snapshot, and an
aggregated span profile.  ``repro runs list|show|diff`` renders and
compares the store; ``runs diff`` only makes sense between two runs of
the same scope, so the fingerprint is the join key.

The scope fingerprint hashes the canonical JSON of the command name
plus every argument that affects the *result* — statement, samples,
seed, steps, guard mode, fault spec.  Arguments that are
byte-identical-by-construction (``--workers``, ``--engine``,
checkpoint/resume plumbing, output/progress flags) are excluded by the
CLI before calling :func:`scope_fingerprint`, mirroring the checkpoint
scope discipline in :mod:`repro.proofs.verifier`: two runs with the
same fingerprint must produce the same report bytes.

The store location resolves as: explicit ``--runs-dir`` flag, then the
``REPRO_RUNS_DIR`` environment variable, then ``.repro/runs`` under the
current directory.  Writing is fail-soft — a read-only filesystem must
never break a verification run — and never touches stdout.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro import durable_io
from repro.obs.sinks import _table, jsonable

#: Environment variable overriding the default manifest store location.
RUNS_DIR_ENV = "REPRO_RUNS_DIR"

#: Default store: ``.repro/runs`` under the working directory.
DEFAULT_RUNS_DIR = Path(".repro") / "runs"

#: The JSONL file inside the runs dir that records accumulate in.
MANIFEST_FILE = "manifests.jsonl"

Manifest = Dict[str, object]


def resolve_runs_dir(explicit: Union[str, Path, None] = None) -> Path:
    """The manifest store directory: flag > env var > ``.repro/runs``."""
    if explicit is not None:
        return Path(explicit)
    env = os.environ.get(RUNS_DIR_ENV)
    if env:
        return Path(env)
    return DEFAULT_RUNS_DIR


def scope_fingerprint(command: str, config: Dict[str, object]) -> str:
    """A content-addressed fingerprint of a run's result-affecting scope.

    Canonical JSON (sorted keys, no whitespace variance) hashed with
    SHA-256; two runs share a fingerprint exactly when the same command
    ran with the same result-affecting configuration.
    """
    canonical = json.dumps(
        {"command": command, "config": jsonable(config)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# Cached git revision: one subprocess per process, not per manifest
# (CLI-heavy test suites invoke main() hundreds of times).
_git_revision_cache: List[Optional[str]] = []


def git_revision() -> Optional[str]:
    """The current git commit hash, or ``None`` outside a checkout.

    Cached per process — the working tree's HEAD cannot change under a
    single run.
    """
    if _git_revision_cache:
        return _git_revision_cache[0]
    revision = _git_revision_uncached()
    _git_revision_cache.append(revision)
    return revision


def _git_revision_uncached() -> Optional[str]:
    try:
        process = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if process.returncode != 0:
        return None
    return process.stdout.strip() or None


def new_manifest(
    command: str,
    argv: Sequence[str],
    config: Dict[str, object],
    *,
    started_at: str,
    wall_s: float,
    exit_status: int,
    metrics: Optional[List[Dict[str, object]]] = None,
    profile: Optional[List[Dict[str, object]]] = None,
    git_rev: Optional[str] = None,
) -> Manifest:
    """Assemble one manifest record (pure; nothing touches disk)."""
    scope = scope_fingerprint(command, config)
    seed = f"{scope}|{started_at}|{os.getpid()}|{list(argv)!r}"
    run_id = hashlib.sha256(seed.encode("utf-8")).hexdigest()[:12]
    return {
        "id": run_id,
        "scope": scope,
        "command": command,
        "argv": list(argv),
        "config": jsonable(config),
        "git_rev": git_rev,
        "python": sys.version.split()[0],
        "started_at": started_at,
        "wall_s": round(wall_s, 6),
        "exit_status": exit_status,
        "metrics": metrics or [],
        "profile": profile or [],
    }


def append_manifest(
    manifest: Manifest, runs_dir: Union[str, Path, None] = None
) -> Optional[Path]:
    """Append one record to the store; fail-soft on filesystem errors.

    Returns the path written, or ``None`` when the write failed (a
    warning goes to stderr — provenance must never break the run it
    documents).
    """
    directory = resolve_runs_dir(runs_dir)
    path = directory / MANIFEST_FILE
    try:
        directory.mkdir(parents=True, exist_ok=True)
        durable_io.append_json_line(str(path), jsonable(manifest))
    except OSError as error:
        print(
            f"repro: warning: could not write run manifest to {path}: "
            f"{error}",
            file=sys.stderr,
        )
        return None
    return path


def load_manifests(
    runs_dir: Union[str, Path, None] = None,
) -> List[Manifest]:
    """Every record in the store, oldest first (corrupt lines skipped)."""
    path = resolve_runs_dir(runs_dir) / MANIFEST_FILE
    records, _dropped = durable_io.load_jsonl(str(path), tolerate="all")
    return [
        record
        for _lineno, record in records
        if isinstance(record, dict) and "id" in record
    ]


def find_manifest(
    run_id: str, runs_dir: Union[str, Path, None] = None
) -> Optional[Manifest]:
    """The newest record whose id starts with ``run_id``, if any."""
    matches = [
        manifest
        for manifest in load_manifests(runs_dir)
        if str(manifest.get("id", "")).startswith(run_id)
    ]
    return matches[-1] if matches else None


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------


def _metric_values(manifest: Manifest) -> Dict[str, object]:
    """Flatten a manifest's metric records to comparable name -> value.

    Counters and gauges compare by value; histograms by observation
    count (the summary's ``count`` field).
    """
    values: Dict[str, object] = {}
    for record in manifest.get("metrics", []) or []:
        name = str(record.get("name"))
        kind = record.get("type")
        if kind == "histogram":
            summary = record.get("summary") or {}
            values[f"{name}.count"] = summary.get("count")
        else:
            values[name] = record.get("value")
    return values


def diff_manifests(old: Manifest, new: Manifest) -> Dict[str, object]:
    """A structured comparison of two manifests.

    Meaningful between runs of the same scope (``same_scope`` flags
    it); metric rows cover the union of names, with ``delta`` set when
    both sides are numeric.
    """
    old_values = _metric_values(old)
    new_values = _metric_values(new)
    rows: List[Dict[str, object]] = []
    for name in sorted(set(old_values) | set(new_values)):
        before = old_values.get(name)
        after = new_values.get(name)
        if before == after:
            continue
        delta: Optional[float] = None
        if isinstance(before, (int, float)) and isinstance(
            after, (int, float)
        ):
            delta = after - before
        rows.append(
            {"name": name, "old": before, "new": after, "delta": delta}
        )
    wall_old = float(old.get("wall_s", 0.0))
    wall_new = float(new.get("wall_s", 0.0))
    return {
        "old": old.get("id"),
        "new": new.get("id"),
        "same_scope": old.get("scope") == new.get("scope"),
        "scope": {"old": old.get("scope"), "new": new.get("scope")},
        "wall_s": {
            "old": wall_old,
            "new": wall_new,
            "delta": round(wall_new - wall_old, 6),
        },
        "exit_status": {
            "old": old.get("exit_status"),
            "new": new.get("exit_status"),
        },
        "metrics": rows,
    }


# ----------------------------------------------------------------------
# Rendering (``repro runs``)
# ----------------------------------------------------------------------


def render_runs_table(manifests: Sequence[Manifest]) -> str:
    """The store as one row per run, newest last."""
    if not manifests:
        return "(no runs recorded)"
    rows = [
        (
            manifest.get("id", "?"),
            str(manifest.get("scope", ""))[:12],
            manifest.get("command", "?"),
            manifest.get("started_at", "?"),
            f"{float(manifest.get('wall_s', 0.0)):.2f}s",
            manifest.get("exit_status", "?"),
        )
        for manifest in manifests
    ]
    return _table(
        ("id", "scope", "command", "started", "wall", "exit"), rows
    )


def render_manifest(manifest: Manifest) -> str:
    """One record, fully expanded, for ``repro runs show``."""
    lines = [
        f"id           {manifest.get('id')}",
        f"scope        {manifest.get('scope')}",
        f"command      {manifest.get('command')}",
        f"argv         {' '.join(map(str, manifest.get('argv', [])))}",
        f"git_rev      {manifest.get('git_rev')}",
        f"python       {manifest.get('python')}",
        f"started_at   {manifest.get('started_at')}",
        f"wall_s       {manifest.get('wall_s')}",
        f"exit_status  {manifest.get('exit_status')}",
    ]
    config = manifest.get("config") or {}
    if config:
        lines.append("config")
        for key in sorted(config):
            lines.append(f"  {key} = {config[key]!r}")
    metrics = manifest.get("metrics") or []
    if metrics:
        lines.append("metrics")
        for record in metrics:
            if record.get("type") == "histogram":
                summary = record.get("summary") or {}
                lines.append(
                    f"  {record.get('name')}  "
                    f"count={summary.get('count')}"
                )
            else:
                lines.append(
                    f"  {record.get('name')} = {record.get('value')}"
                )
    profile = manifest.get("profile") or []
    if profile:
        lines.append(f"profile      {len(profile)} stack(s) recorded")
    return "\n".join(lines)


def render_diff(diff: Dict[str, object]) -> str:
    """A ``runs diff`` comparison as fixed-width text."""
    lines = [f"diff {diff.get('old')} -> {diff.get('new')}"]
    if not diff.get("same_scope"):
        lines.append(
            "warning: runs have different scopes — metric deltas may "
            "not be comparable"
        )
    wall = diff.get("wall_s", {})
    lines.append(
        f"wall_s  {wall.get('old'):.3f} -> {wall.get('new'):.3f}  "
        f"(delta {wall.get('delta'):+.3f})"
    )
    exit_status = diff.get("exit_status", {})
    lines.append(
        f"exit    {exit_status.get('old')} -> {exit_status.get('new')}"
    )
    rows = diff.get("metrics", [])
    if rows:
        table_rows = [
            (
                row["name"],
                row["old"],
                row["new"],
                "n/a" if row["delta"] is None else f"{row['delta']:+g}",
            )
            for row in rows
        ]
        lines.append(_table(("metric", "old", "new", "delta"), table_rows))
    else:
        lines.append("(no metric differences)")
    return "\n".join(lines)
