"""Observability: structured tracing, metrics, and run reports.

Instrumented code calls the module-level helpers below; they delegate
to the active :class:`~repro.obs.registry.Registry`.  With the default
no-op registry installed each helper is a function call, one module
attribute read, and a branch — cheap enough to leave in the hot paths
of the samplers and value-iteration sweeps (see
``benchmarks/bench_observability.py`` for the measured bound).

Typical instrumented call site::

    from repro import obs

    with obs.span("verify.arrow_check", statement=repr(statement)):
        ...
        obs.incr("verifier.samples", samples)
        obs.observe("sampler.steps_per_sample", steps)

Typical consumer::

    from repro import obs
    from repro.obs.sinks import render_metric_tables, render_span_tree

    with obs.recording() as registry:
        run_experiment()
    print(render_span_tree(registry.tracer))
    print(render_metric_tables(registry.metrics))

Naming convention for metrics: dotted lowercase
``layer.component.metric`` (``sampler.steps``, ``mdp.value_iteration.
residual``).  Every name is declared in :mod:`repro.obs.names` —
``tools/lint.py`` rejects call sites whose literal name is not in that
catalog; see ``docs/observability.md``.

The contract-guard layer (``docs/contracts.md``) reports through the
``contracts.*`` counters: ``contracts.violations`` (every detected
violation) plus one per-kind counter (``contracts.distribution``,
``contracts.adversary``, ``contracts.closure``, ``contracts.fuel``)
and ``contracts.quarantined`` (pairs a strict run skipped).  They are
incremented only when a violation is actually detected, so healthy
runs render identical metric tables whatever the guard mode.
"""

from __future__ import annotations

from typing import Union

from repro.obs import manifest, names, profile, progress
from repro.obs import registry as _registry
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Metrics,
    NoopMetrics,
)
from repro.obs.registry import (
    NOOP_REGISTRY,
    Registry,
    get_registry,
    install,
    recording,
    recording_registry,
    reset,
)
from repro.obs.trace import NoopTracer, Span, Tracer

Number = Union[int, float]


def enabled() -> bool:
    """True when a recording registry is active."""
    return _registry._active.enabled


def span(name: str, **attributes: object):
    """A context manager timing one region of work (no-op when off)."""
    active = _registry._active
    return active.tracer.span(name, **attributes)


def incr(name: str, amount: Number = 1) -> None:
    """Add to the counter ``name`` (no-op when off)."""
    active = _registry._active
    if active.enabled:
        active.metrics.counter(name).inc(amount)


def gauge(name: str, value: Number) -> None:
    """Set the gauge ``name`` (no-op when off)."""
    active = _registry._active
    if active.enabled:
        active.metrics.gauge(name).set(value)


def observe(name: str, value: Number) -> None:
    """Record one observation in the histogram ``name`` (no-op when off)."""
    active = _registry._active
    if active.enabled:
        active.metrics.histogram(name).observe(value)


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "NOOP_REGISTRY",
    "NoopMetrics",
    "NoopTracer",
    "Registry",
    "Span",
    "Tracer",
    "enabled",
    "gauge",
    "get_registry",
    "incr",
    "install",
    "manifest",
    "names",
    "observe",
    "profile",
    "progress",
    "recording",
    "recording_registry",
    "reset",
    "span",
]
