"""Derandomised "random" policies and policy enumeration helpers.

The paper's adversaries are deterministic functions of the history
(footnote 1 excludes randomised adversaries).  To explore the adversary
space broadly we still want arbitrary-looking strategies; the trick is
to *derandomise*: a :class:`HashedRandomRoundPolicy` derives every
choice from a cryptographic digest of the seed and the full history, so
it is a legitimate deterministic adversary, yet a family indexed by
seeds behaves like a random sample of scheduling strategies.

Because the statements under test are universally quantified lower
bounds, searching over many such adversaries and keeping the *minimum*
observed success probability is the empirical analogue of the paper's
"for all adversaries in the schema".
"""

from __future__ import annotations

import hashlib
from typing import Hashable, Iterator, Tuple, TypeVar

from repro.adversary.unit_time import (
    ADVANCE_TIME,
    Move,
    ProcessView,
    RoundPolicy,
    steps_of_process,
)
from repro.automaton.automaton import ProbabilisticAutomaton
from repro.automaton.execution import ExecutionFragment
from repro.errors import AdversaryError

State = TypeVar("State", bound=Hashable)


def fragment_digest(seed: int, fragment: ExecutionFragment, extra: str = "") -> int:
    """A stable pseudo-random integer derived from ``(seed, fragment)``.

    Uses blake2b over the fragment's repr, so the value is a pure
    deterministic function of the history — independent of Python hash
    randomisation and stable across processes, which keeps experiments
    reproducible from their seeds.
    """
    digest = hashlib.blake2b(digest_size=8)
    digest.update(str(seed).encode())
    digest.update(repr(fragment).encode())
    digest.update(extra.encode())
    return int.from_bytes(digest.digest(), "big")


class HashedRandomRoundPolicy(RoundPolicy[State]):
    """A deterministic policy whose choices look random.

    At each decision point the pending process and (when a process has
    several enabled steps, e.g. the nondeterministic exit choice of
    Lehmann-Rabin) the step index are selected by hashing the seed with
    the entire history.  Distinct seeds give effectively independent
    scheduling strategies; every one of them is a valid Unit-Time
    adversary because only pending processes are scheduled and time
    advances only when no obligation remains.
    """

    def __init__(self, seed: int):
        self._seed = seed

    @property
    def seed(self) -> int:
        """The seed identifying this policy within the family."""
        return self._seed

    def next_move(
        self,
        automaton: ProbabilisticAutomaton[State],
        fragment: ExecutionFragment[State],
        pending: Tuple[Hashable, ...],
        view: ProcessView[State],
    ) -> Move:
        if not pending:
            return ADVANCE_TIME
        pick = fragment_digest(self._seed, fragment, extra="process")
        process = pending[pick % len(pending)]
        steps = steps_of_process(automaton, fragment.lstate, view, process)
        if not steps:
            raise AdversaryError(
                f"process {process!r} is pending but has no enabled steps"
            )
        which = fragment_digest(self._seed, fragment, extra="step")
        return steps[which % len(steps)]

    def __repr__(self) -> str:
        return f"HashedRandomRoundPolicy(seed={self._seed})"


def seeded_policies(
    count: int, first_seed: int = 0
) -> Iterator[HashedRandomRoundPolicy]:
    """A family of ``count`` derandomised policies with distinct seeds."""
    for offset in range(count):
        yield HashedRandomRoundPolicy(first_seed + offset)
