"""Concrete deterministic adversaries.

These are the workhorse schedulers used in tests, examples, and the
verification harness: simple strategies whose behaviour is easy to
predict, plus combinators (stopping, sequencing) for building richer
ones.
"""

from __future__ import annotations

from typing import (
    Callable,
    Hashable,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.adversary.base import Adversary
from repro.automaton.automaton import ProbabilisticAutomaton
from repro.automaton.execution import ExecutionFragment
from repro.automaton.transition import Transition
from repro.errors import AdversaryError

State = TypeVar("State", bound=Hashable)


class FirstEnabledAdversary(Adversary[State]):
    """Always schedules the first enabled step (a fixed priority rule).

    Deterministic and history free, hence oblivious in the paper's
    sense.
    """

    def choose(
        self,
        automaton: ProbabilisticAutomaton[State],
        fragment: ExecutionFragment[State],
    ) -> Optional[Transition[State]]:
        steps = automaton.transitions(fragment.lstate)
        return steps[0] if steps else None

    def __repr__(self) -> str:
        return "FirstEnabledAdversary()"


class RoundRobinAdversary(Adversary[State]):
    """Cycles through enabled-step indices based on history length.

    At a fragment with ``k`` steps taken so far, schedules enabled step
    ``k mod (number enabled)``.  History dependent only through the step
    count, so it is oblivious to states and coin outcomes.
    """

    def choose(
        self,
        automaton: ProbabilisticAutomaton[State],
        fragment: ExecutionFragment[State],
    ) -> Optional[Transition[State]]:
        steps = automaton.transitions(fragment.lstate)
        if not steps:
            return None
        return steps[len(fragment) % len(steps)]

    def __repr__(self) -> str:
        return "RoundRobinAdversary()"


class StoppingAdversary(Adversary[State]):
    """Runs a base adversary for at most ``max_steps`` steps, then halts.

    The paper's adversaries may return "nothing"; this combinator makes
    any adversary do so after a bounded number of steps, which keeps
    execution automata finite for exact analysis.
    """

    def __init__(self, base: Adversary[State], max_steps: int):
        if max_steps < 0:
            raise AdversaryError("max_steps must be nonnegative")
        self._base = base
        self._max_steps = max_steps

    @property
    def max_steps(self) -> int:
        """Number of steps after which this adversary halts."""
        return self._max_steps

    def choose(
        self,
        automaton: ProbabilisticAutomaton[State],
        fragment: ExecutionFragment[State],
    ) -> Optional[Transition[State]]:
        if len(fragment) >= self._max_steps:
            return None
        return self._base.choose(automaton, fragment)

    def __repr__(self) -> str:
        return f"StoppingAdversary({self._base!r}, max_steps={self._max_steps})"


class SequenceAdversary(Adversary[State]):
    """Plays a fixed sequence of enabled-step indices, then halts.

    The classic *oblivious* adversary: its whole strategy is committed
    in advance, independent of the execution (choice ``i`` selects the
    enabled step with index ``sequence[i] mod count``).
    """

    def __init__(self, sequence: Sequence[int]):
        self._sequence: Tuple[int, ...] = tuple(sequence)
        if any(i < 0 for i in self._sequence):
            raise AdversaryError("choice indices must be nonnegative")

    def choose(
        self,
        automaton: ProbabilisticAutomaton[State],
        fragment: ExecutionFragment[State],
    ) -> Optional[Transition[State]]:
        position = len(fragment)
        if position >= len(self._sequence):
            return None
        steps = automaton.transitions(fragment.lstate)
        if not steps:
            return None
        return steps[self._sequence[position] % len(steps)]

    def __repr__(self) -> str:
        return f"SequenceAdversary({list(self._sequence)!r})"


class StatePolicyAdversary(Adversary[State]):
    """A memoryless (positional) adversary: choice depends on lstate only.

    ``policy`` maps a state to the index of the enabled step to take, or
    ``None`` to halt.  Memoryless adversaries suffice for many extremal
    questions on finite MDPs, which is why the exact checker in
    :mod:`repro.mdp` enumerates them implicitly.
    """

    def __init__(
        self,
        policy: Callable[[State], Optional[int]],
        name: str = "state-policy",
    ):
        self._policy = policy
        self.name = name

    def choose(
        self,
        automaton: ProbabilisticAutomaton[State],
        fragment: ExecutionFragment[State],
    ) -> Optional[Transition[State]]:
        steps = automaton.transitions(fragment.lstate)
        if not steps:
            return None
        index = self._policy(fragment.lstate)
        if index is None:
            return None
        if not 0 <= index < len(steps):
            raise AdversaryError(
                f"policy index {index} out of range for {len(steps)} enabled steps"
            )
        return steps[index]

    def __repr__(self) -> str:
        return f"StatePolicyAdversary({self.name})"
