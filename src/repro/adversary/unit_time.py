"""The Unit-Time adversary schema (Section 6.2).

The paper restricts attention to adversaries under which (1) time grows
without bound and (2) every *ready* process takes a step within time 1,
where a process is ready when it enables an action other than its
user-controlled ones (``try_i``/``exit_i`` for Lehmann-Rabin).  The
schema is execution closed: knowing that a prefix occurred only
reinforces the scheduling obligation.

This module realises Unit-Time adversaries generically through:

* :class:`ProcessView` — how to read processes, readiness, and time out
  of an automaton's states and actions; each case study supplies one.
* :class:`RoundBasedAdversary` — a scheduler that works in rounds of
  duration 1: within a round every pending obligated process takes
  exactly one step (order and step choices decided by a
  :class:`RoundPolicy`, which sees the entire history, including past
  coin outcomes), then a time-passage step of one unit closes the round.

Every round-based adversary satisfies the Unit-Time obligation by
construction: a process ready at the start of a round steps during it,
so no ready process ever waits more than one time unit.
"""

from __future__ import annotations

import abc
import math
from fractions import Fraction
from typing import (
    FrozenSet,
    Generic,
    Hashable,
    List,
    Optional,
    Tuple,
    TypeVar,
    Union,
)

from repro.adversary.base import Adversary, AdversarySchema, ShiftedAdversary
from repro.automaton.automaton import ProbabilisticAutomaton
from repro.automaton.execution import ExecutionFragment
from repro.automaton.signature import TIME_PASSAGE, Action
from repro.automaton.transition import Transition
from repro.errors import AdversaryError

State = TypeVar("State", bound=Hashable)
ProcessId = Hashable


class ProcessView(Generic[State], abc.ABC):
    """How an automaton's states and actions decompose into processes."""

    @property
    @abc.abstractmethod
    def processes(self) -> Tuple[ProcessId, ...]:
        """All process identifiers, in canonical order."""

    @abc.abstractmethod
    def ready(self, state: State) -> FrozenSet[ProcessId]:
        """Processes with a scheduling obligation in ``state``.

        Per the paper: processes enabling an action different from their
        user-controlled actions.
        """

    @abc.abstractmethod
    def process_of(self, action: Action) -> Optional[ProcessId]:
        """The process an action belongs to (``None`` for time passage)."""

    @abc.abstractmethod
    def time_of(self, state: State) -> Fraction:
        """The current time component of ``state``."""


class _Sentinel:
    """A named sentinel for policy decisions."""

    __slots__ = ("_name",)

    def __init__(self, name: str):
        self._name = name

    def __repr__(self) -> str:
        return self._name


#: Policy decision: close the round with a one-unit time-passage step.
ADVANCE_TIME = _Sentinel("ADVANCE_TIME")
#: Policy decision: halt the system (the adversary returns "nothing").
HALT = _Sentinel("HALT")

Move = Union[Transition, _Sentinel]


class RoundPolicy(Generic[State], abc.ABC):
    """Decides the next move within a round.

    ``pending`` lists the obligated processes that have not yet stepped
    in the current round, in canonical order.  A policy may return:

    * a :class:`Transition` enabled in ``fragment.lstate`` — schedule it
      (typically a step of a pending process, but optional user actions
      like ``try_i`` are also allowed);
    * :data:`ADVANCE_TIME` — close the round; rejected by the scheduler
      while obligated processes are still pending;
    * :data:`HALT` — stop scheduling (leaves Unit-Time, used only by
      bounded exploration wrappers).
    """

    @abc.abstractmethod
    def next_move(
        self,
        automaton: ProbabilisticAutomaton[State],
        fragment: ExecutionFragment[State],
        pending: Tuple[ProcessId, ...],
        view: ProcessView[State],
    ) -> Move:
        """The policy's decision at this point of the round."""


class MarkovRoundPolicy(RoundPolicy[State]):
    """A round policy whose decision depends on bounded, local context.

    Concretely: the move is a pure function of the fragment's *last*
    state (up to the clock value), the pending list, and — when
    :attr:`rounds_sensitive` — the number of completed rounds.  Such
    policies can be tabulated ahead of time by the compiled state-space
    engine (:mod:`repro.statespace`): the product of the automaton with
    the adversary's finite memory ``(stepped, rounds)`` is explored once
    and every later sample walks integer index tables.

    History-dependent policies (e.g. coin-peeking ones hashing the whole
    fragment) must stay plain :class:`RoundPolicy` subclasses; the
    compiler detects them by type and the engine falls back to the tree
    walk for those adversaries only.
    """

    #: True when the decision also reads the completed-round count.
    rounds_sensitive: bool = False

    @abc.abstractmethod
    def markov_move(
        self,
        automaton: ProbabilisticAutomaton[State],
        state: State,
        pending: Tuple[ProcessId, ...],
        view: ProcessView[State],
        rounds: int,
    ) -> Move:
        """The decision at ``state`` with ``rounds`` rounds completed."""

    def next_move(
        self,
        automaton: ProbabilisticAutomaton[State],
        fragment: ExecutionFragment[State],
        pending: Tuple[ProcessId, ...],
        view: ProcessView[State],
    ) -> Move:
        rounds = 0
        if self.rounds_sensitive:
            rounds = sum(1 for a in fragment.actions if a == TIME_PASSAGE)
        return self.markov_move(automaton, fragment.lstate, pending, view, rounds)

    def rounds_period(self, view: ProcessView[State]) -> int:
        """A modulus under which the round count may be tracked.

        The policy's decision must be unchanged by replacing ``rounds``
        with ``rounds % period``.  Rounds-insensitive policies return 1;
        :class:`RotatingRoundPolicy` returns ``lcm(1..n)`` because its
        rotation index ``rounds % len(pending)`` is invariant for every
        possible pending length.
        """
        return 1


def steps_of_process(
    automaton: ProbabilisticAutomaton[State],
    state: State,
    view: ProcessView[State],
    process: ProcessId,
) -> Tuple[Transition[State], ...]:
    """The steps of ``process`` enabled in ``state``."""
    return tuple(
        step
        for step in automaton.transitions(state)
        if view.process_of(step.action) == process
    )


class RoundBasedAdversary(Adversary[State]):
    """A Unit-Time adversary operating in rounds of duration one.

    The adversary replays deterministically from the fragment alone:
    round boundaries are the :data:`TIME_PASSAGE` actions in the
    history, and the set of processes that already stepped this round is
    read off the actions since the last boundary.  The policy is
    consulted for each move and sees the whole fragment, so
    history-dependent (coin-peeking) strategies are expressible.

    ``max_rounds`` optionally halts the adversary after that many
    completed rounds — used by verifiers to keep execution automata
    finite.  (Halting leaves the literal Unit-Time schema, whose
    adversaries run forever; for the *monotone* reachability events the
    proof method uses, truncation only lowers success probabilities, so
    bounds verified under truncation are sound for the full schema.)
    """

    def __init__(
        self,
        view: ProcessView[State],
        policy: RoundPolicy[State],
        max_rounds: Optional[int] = None,
    ):
        self._view = view
        self._policy = policy
        self._max_rounds = max_rounds

    @property
    def view(self) -> ProcessView[State]:
        """The process view this adversary schedules against."""
        return self._view

    @property
    def policy(self) -> RoundPolicy[State]:
        """The decision policy driving this adversary."""
        return self._policy

    @property
    def max_rounds(self) -> Optional[int]:
        """The round cap, or ``None`` when the adversary runs forever."""
        return self._max_rounds

    def choose(
        self,
        automaton: ProbabilisticAutomaton[State],
        fragment: ExecutionFragment[State],
    ) -> Optional[Transition[State]]:
        state = fragment.lstate
        rounds_done, stepped = self._round_bookkeeping(fragment)
        if self._max_rounds is not None and rounds_done >= self._max_rounds:
            return None

        ready = self._view.ready(state)
        pending = tuple(
            p for p in self._view.processes if p in ready and p not in stepped
        )
        move = self._policy.next_move(automaton, fragment, pending, self._view)

        if move is HALT:
            return None
        if move is ADVANCE_TIME:
            if pending:
                raise AdversaryError(
                    f"policy tried to advance time with obligated processes "
                    f"pending: {pending!r}"
                )
            return self._time_passage_step(automaton, state)
        if isinstance(move, Transition):
            if move.action == TIME_PASSAGE:
                raise AdversaryError(
                    "policies must request time passage via ADVANCE_TIME"
                )
            return move
        raise AdversaryError(f"policy returned an invalid move: {move!r}")

    def _round_bookkeeping(
        self, fragment: ExecutionFragment[State]
    ) -> Tuple[int, FrozenSet[ProcessId]]:
        """Completed rounds, and processes that stepped this round."""
        rounds = 0
        stepped: List[ProcessId] = []
        for action in fragment.actions:
            if action == TIME_PASSAGE:
                rounds += 1
                stepped.clear()
            else:
                process = self._view.process_of(action)
                if process is not None:
                    stepped.append(process)
        return rounds, frozenset(stepped)

    def _time_passage_step(
        self, automaton: ProbabilisticAutomaton[State], state: State
    ) -> Transition[State]:
        for step in automaton.transitions(state):
            if step.action == TIME_PASSAGE:
                return step
        raise AdversaryError(
            f"no time-passage step enabled in {state!r}; is this a timed automaton?"
        )

    def __repr__(self) -> str:
        return (
            f"RoundBasedAdversary(policy={self._policy!r}, "
            f"max_rounds={self._max_rounds})"
        )


class FifoRoundPolicy(MarkovRoundPolicy[State]):
    """Schedule pending processes in canonical order; never fire optionals.

    The simplest Unit-Time policy: in each round every obligated process
    takes exactly one step, lowest process id first, choosing the first
    enabled step of that process; then time advances.
    """

    def markov_move(
        self,
        automaton: ProbabilisticAutomaton[State],
        state: State,
        pending: Tuple[ProcessId, ...],
        view: ProcessView[State],
        rounds: int,
    ) -> Move:
        if not pending:
            return ADVANCE_TIME
        process = pending[0]
        steps = steps_of_process(automaton, state, view, process)
        if not steps:
            raise AdversaryError(
                f"process {process!r} is pending but has no enabled steps"
            )
        return steps[0]

    def __repr__(self) -> str:
        return "FifoRoundPolicy()"


class ReversedRoundPolicy(MarkovRoundPolicy[State]):
    """Like FIFO but schedules pending processes in reverse order."""

    def markov_move(
        self,
        automaton: ProbabilisticAutomaton[State],
        state: State,
        pending: Tuple[ProcessId, ...],
        view: ProcessView[State],
        rounds: int,
    ) -> Move:
        if not pending:
            return ADVANCE_TIME
        process = pending[-1]
        steps = steps_of_process(automaton, state, view, process)
        if not steps:
            raise AdversaryError(
                f"process {process!r} is pending but has no enabled steps"
            )
        return steps[-1]

    def __repr__(self) -> str:
        return "ReversedRoundPolicy()"


class RotatingRoundPolicy(MarkovRoundPolicy[State]):
    """Rotates which pending process goes first, round by round.

    Breaks the bias of a fixed order: in round ``r`` the pending list is
    rotated by ``r`` before the first element is scheduled.
    """

    rounds_sensitive = True

    def markov_move(
        self,
        automaton: ProbabilisticAutomaton[State],
        state: State,
        pending: Tuple[ProcessId, ...],
        view: ProcessView[State],
        rounds: int,
    ) -> Move:
        if not pending:
            return ADVANCE_TIME
        process = pending[rounds % len(pending)]
        steps = steps_of_process(automaton, state, view, process)
        if not steps:
            raise AdversaryError(
                f"process {process!r} is pending but has no enabled steps"
            )
        return steps[0]

    def rounds_period(self, view: ProcessView[State]) -> int:
        period = 1
        for length in range(2, len(view.processes) + 1):
            period = math.lcm(period, length)
        return period

    def __repr__(self) -> str:
        return "RotatingRoundPolicy()"


def unit_time_schema(view: ProcessView[State]) -> AdversarySchema[State]:
    """The Unit-Time adversary schema for automata seen through ``view``.

    Membership: round-based adversaries over the same view (including
    shifted ones — the paper's argument that Unit-Time is execution
    closed, Definition 3.3, is that the obligation only concerns the
    future, so prepending history preserves it).
    """

    def contains(adversary: Adversary[State]) -> bool:
        unwrapped = adversary
        while isinstance(unwrapped, ShiftedAdversary):
            unwrapped = unwrapped.base
        return (
            isinstance(unwrapped, RoundBasedAdversary)
            and unwrapped.view is view
        )

    return AdversarySchema(
        name="Unit-Time", contains=contains, execution_closed=True
    )
