"""Greedy score-minimising Unit-Time policies.

A systematic way to hunt for bad schedules: give the adversary a
*potential function* estimating how close the system is to its goal,
and have it always fire the move whose expected successor potential is
lowest.  With full knowledge of the state (which records all past coin
outcomes) this realises the "complete knowledge of the past" adversary
of the paper in a directed, rather than merely random, way.

The policy is deterministic (ties break by process id, then step
order), so it is a legitimate member of the paper's adversary class,
and it only ever schedules pending processes, so it is Unit-Time.
"""

from __future__ import annotations

from typing import Callable, Hashable, Tuple, TypeVar

from repro.adversary.unit_time import (
    ADVANCE_TIME,
    MarkovRoundPolicy,
    Move,
    ProcessView,
    steps_of_process,
)
from repro.automaton.automaton import ProbabilisticAutomaton
from repro.errors import AdversaryError

State = TypeVar("State", bound=Hashable)


class GreedyMinimizerPolicy(MarkovRoundPolicy[State]):
    """Fires the pending move with the lowest expected potential.

    ``potential`` maps a state to a float; higher means closer to the
    goal the adversary wants to prevent.  At each decision point the
    policy evaluates every enabled step of every pending process and
    schedules the one whose expected successor potential is smallest —
    one-step-lookahead expectation minimisation.  The potential must not
    read the clock (all shipped ones don't), which is what lets the
    compiled engine tabulate this policy over the time-quotient space.
    """

    def __init__(self, potential: Callable[[State], float]):
        self._potential = potential

    def markov_move(
        self,
        automaton: ProbabilisticAutomaton[State],
        state: State,
        pending: Tuple[Hashable, ...],
        view: ProcessView[State],
        rounds: int,
    ) -> Move:
        if not pending:
            return ADVANCE_TIME
        best = None
        best_key = None
        for rank, process in enumerate(pending):
            steps = steps_of_process(automaton, state, view, process)
            if not steps:
                raise AdversaryError(
                    f"process {process!r} is pending but has no enabled steps"
                )
            for step_index, step in enumerate(steps):
                expected = sum(
                    float(weight) * self._potential(successor)
                    for successor, weight in step.target.items()
                )
                key = (expected, rank, step_index)
                if best_key is None or key < best_key:
                    best_key = key
                    best = step
        return best

    def __repr__(self) -> str:
        return "GreedyMinimizerPolicy()"
