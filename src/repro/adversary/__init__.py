"""Adversaries and adversary schemas (Definitions 2.2, 2.6, 3.3).

Deterministic adversaries resolve the nondeterminism of a probabilistic
automaton; schemas are named subsets of them, and the Unit-Time schema
of Section 6.2 is realised by round-based schedulers.
"""

from repro.adversary.base import (
    Adversary,
    AdversarySchema,
    FunctionAdversary,
    ShiftedAdversary,
    all_adversaries_schema,
    check_execution_closure_on_samples,
    shift,
)
from repro.adversary.deterministic import (
    FirstEnabledAdversary,
    RoundRobinAdversary,
    SequenceAdversary,
    StatePolicyAdversary,
    StoppingAdversary,
)
from repro.adversary.deadline import (
    StaggeredDeadlineAdversary,
    evenly_staggered,
)
from repro.adversary.greedy import GreedyMinimizerPolicy
from repro.adversary.search import (
    HashedRandomRoundPolicy,
    fragment_digest,
    seeded_policies,
)
from repro.adversary.unit_time import (
    ADVANCE_TIME,
    HALT,
    FifoRoundPolicy,
    ProcessView,
    ReversedRoundPolicy,
    RotatingRoundPolicy,
    RoundBasedAdversary,
    RoundPolicy,
    steps_of_process,
    unit_time_schema,
)

__all__ = [
    "ADVANCE_TIME",
    "Adversary",
    "AdversarySchema",
    "FifoRoundPolicy",
    "FirstEnabledAdversary",
    "FunctionAdversary",
    "GreedyMinimizerPolicy",
    "HALT",
    "HashedRandomRoundPolicy",
    "ProcessView",
    "ReversedRoundPolicy",
    "RotatingRoundPolicy",
    "RoundBasedAdversary",
    "RoundPolicy",
    "RoundRobinAdversary",
    "SequenceAdversary",
    "ShiftedAdversary",
    "StaggeredDeadlineAdversary",
    "StatePolicyAdversary",
    "StoppingAdversary",
    "evenly_staggered",
    "all_adversaries_schema",
    "check_execution_closure_on_samples",
    "fragment_digest",
    "seeded_policies",
    "shift",
    "steps_of_process",
    "unit_time_schema",
]
