"""Adversaries and adversary schemas (Definitions 2.2, 2.6, 3.3).

An adversary for ``M`` is a function taking a finite execution fragment
and returning either nothing (the adversary stops the system) or one of
the steps enabled in the fragment's last state.  Following the paper's
footnote 1, adversaries here are deterministic: the same fragment always
yields the same choice.

An *adversary schema* is a subset of the adversaries, represented
intensionally by a membership test plus a name.  The key structural
property is *execution closure* (Definition 3.3): for each adversary
``A`` in the schema and each finite fragment ``alpha`` there must be an
adversary ``A'`` in the schema with ``A'(alpha') = A(alpha ^ alpha')``.
The function :func:`shift` builds exactly that ``A'`` as a wrapper; a
schema declares itself execution closed when shifting does not leave it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import (
    Callable,
    Generic,
    Hashable,
    Iterable,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro import obs
from repro.automaton.automaton import ProbabilisticAutomaton
from repro.automaton.execution import ExecutionFragment
from repro.automaton.transition import Transition
from repro.errors import AdversaryError

State = TypeVar("State", bound=Hashable)


class Adversary(Generic[State], abc.ABC):
    """A deterministic adversary (Definition 2.2).

    Subclasses implement :meth:`choose`.  Returning ``None`` means the
    adversary halts the system (the paper's "nothing"); any returned
    step must be enabled in ``lstate(fragment)``, which
    :meth:`checked_choose` enforces.
    """

    @abc.abstractmethod
    def choose(
        self,
        automaton: ProbabilisticAutomaton[State],
        fragment: ExecutionFragment[State],
    ) -> Optional[Transition[State]]:
        """The step this adversary schedules after ``fragment``."""

    def checked_choose(
        self,
        automaton: ProbabilisticAutomaton[State],
        fragment: ExecutionFragment[State],
    ) -> Optional[Transition[State]]:
        """Like :meth:`choose` but validates the adversary's contract."""
        step = self.choose(automaton, fragment)
        if obs.enabled():
            obs.incr("adversary.decisions")
            if step is None:
                obs.incr("adversary.halts")
        if step is None:
            return None
        if step.source != fragment.lstate:
            raise AdversaryError(
                f"adversary returned a step from {step.source!r}, but the "
                f"fragment ends in {fragment.lstate!r}"
            )
        if step not in automaton.transitions(fragment.lstate):
            raise AdversaryError(
                f"adversary returned a step not enabled in {fragment.lstate!r}: "
                f"{step!r}"
            )
        return step


class FunctionAdversary(Adversary[State]):
    """Wrap a plain function as an adversary."""

    def __init__(
        self,
        fn: Callable[
            [ProbabilisticAutomaton[State], ExecutionFragment[State]],
            Optional[Transition[State]],
        ],
        name: str = "function-adversary",
    ):
        self._fn = fn
        self.name = name

    def choose(
        self,
        automaton: ProbabilisticAutomaton[State],
        fragment: ExecutionFragment[State],
    ) -> Optional[Transition[State]]:
        return self._fn(automaton, fragment)

    def __repr__(self) -> str:
        return f"FunctionAdversary({self.name})"


class ShiftedAdversary(Adversary[State]):
    """The adversary ``A'`` of Definition 3.3 for a given prefix.

    ``A'(alpha') = A(prefix ^ alpha')`` whenever
    ``lstate(prefix) == fstate(alpha')``.  This wrapper witnesses that
    *functional* execution closure always holds; whether the wrapper
    stays inside a particular schema is the schema's own claim.
    """

    def __init__(self, base: Adversary[State], prefix: ExecutionFragment[State]):
        self._base = base
        self._prefix = prefix

    @property
    def base(self) -> Adversary[State]:
        """The adversary being shifted."""
        return self._base

    @property
    def prefix(self) -> ExecutionFragment[State]:
        """The fragment prepended to every query."""
        return self._prefix

    def choose(
        self,
        automaton: ProbabilisticAutomaton[State],
        fragment: ExecutionFragment[State],
    ) -> Optional[Transition[State]]:
        if self._prefix.lstate != fragment.fstate:
            raise AdversaryError(
                "shifted adversary queried with a fragment that does not "
                f"start at {self._prefix.lstate!r}"
            )
        return self._base.choose(automaton, self._prefix.concat(fragment))


def shift(
    adversary: Adversary[State], prefix: ExecutionFragment[State]
) -> Adversary[State]:
    """Build the Definition 3.3 witness ``A'`` for ``adversary``.

    Shifting a shifted adversary composes the prefixes rather than
    nesting wrappers, keeping query cost linear.
    """
    if isinstance(adversary, ShiftedAdversary):
        return ShiftedAdversary(adversary.base, adversary.prefix.concat(prefix))
    return ShiftedAdversary(adversary, prefix)


@dataclass(frozen=True)
class AdversarySchema(Generic[State]):
    """A named subset of ``Advs_M`` (Definition 2.6).

    ``contains`` is the membership test.  ``execution_closed`` records
    the schema's claim that shifting stays inside it (Definition 3.3) —
    the hypothesis Theorem 3.4 needs.  ``generators`` optionally lists
    representative adversaries used by verifiers to approximate the
    universal quantification.
    """

    name: str
    contains: Callable[[Adversary[State]], bool]
    execution_closed: bool = False
    generators: Tuple[Adversary[State], ...] = field(default_factory=tuple)

    def check_membership(self, adversary: Adversary[State]) -> None:
        """Raise :class:`AdversaryError` when ``adversary`` is outside."""
        if not self.contains(adversary):
            raise AdversaryError(
                f"adversary {adversary!r} is not a member of schema {self.name!r}"
            )

    def spot_check_closure(
        self,
        adversary: Adversary[State],
        fragment: ExecutionFragment[State],
        rng,
        probes: int = 1,
    ) -> None:
        """Probe this schema's execution-closure claim (Definition 3.3).

        For ``probes`` seeded choices of a nonempty prefix of
        ``fragment``, shifts ``adversary`` by the prefix and asserts
        the shift is still a member by this schema's own ``contains``
        test.  Raises :class:`~repro.errors.ExecutionClosureError` on
        the first failure.  (The defining equation
        ``A'(alpha') = A(alpha ^ alpha')`` holds by construction for
        the :func:`shift` wrapper, so membership is the only claim
        left to test.)

        A passing check is evidence, not proof — the quantifiers in
        Definition 3.3 range over all members and all fragments.  A
        *failing* check is a definite counterexample: this schema is
        not execution closed, and Theorem 3.4 compositions proved
        against it are unsound.
        """
        from repro.errors import ExecutionClosureError

        if not self.execution_closed or len(fragment) == 0:
            return
        for _ in range(probes):
            cut = rng.randint(1, len(fragment))
            prefix = fragment.prefix_of_length(cut)
            shifted = shift(adversary, prefix)
            if not self.contains(shifted):
                raise ExecutionClosureError(
                    f"schema {self.name!r} claims execution_closed=True but "
                    f"rejects the shift of {adversary!r} by a sampled "
                    f"{cut}-step prefix",
                    state=prefix.lstate,
                    prefix=prefix,
                    site=f"closure:{self.name}",
                )

    def with_generators(
        self, generators: Iterable[Adversary[State]]
    ) -> "AdversarySchema[State]":
        """A copy of this schema with the given representative adversaries."""
        new_generators = tuple(generators)
        for adversary in new_generators:
            self.check_membership(adversary)
        return AdversarySchema(
            name=self.name,
            contains=self.contains,
            execution_closed=self.execution_closed,
            generators=new_generators,
        )


def all_adversaries_schema(name: str = "Advs") -> AdversarySchema:
    """The schema of *all* deterministic adversaries.

    Trivially execution closed: shifting any adversary yields another
    adversary.
    """
    return AdversarySchema(
        name=name, contains=lambda adversary: True, execution_closed=True
    )


def check_execution_closure_on_samples(
    schema: AdversarySchema[State],
    automaton: ProbabilisticAutomaton[State],
    adversaries: Sequence[Adversary[State]],
    prefixes: Sequence[ExecutionFragment[State]],
    probes: Sequence[ExecutionFragment[State]],
) -> bool:
    """Empirically probe Definition 3.3 on concrete samples.

    For each sampled adversary and prefix, checks that the shifted
    wrapper (a) remains in the schema by the schema's own membership
    test and (b) agrees with the defining equation on each probe
    fragment.  This cannot *prove* closure (the quantifiers are
    infinite) but catches schema definitions that are wrong on their
    own representatives.
    """
    for adversary in adversaries:
        for prefix in prefixes:
            shifted = shift(adversary, prefix)
            if not schema.contains(shifted):
                return False
            for probe in probes:
                if probe.fstate != prefix.lstate:
                    continue
                expected = adversary.choose(automaton, prefix.concat(probe))
                actual = shifted.choose(automaton, probe)
                if expected != actual:
                    return False
    return True
