"""Asynchronous deadline-driven Unit-Time adversaries.

The round-based schedulers of :mod:`repro.adversary.unit_time` make
every process step in every unit interval, synchronously.  The
Unit-Time schema is bigger than that: the only obligation is that each
*ready* process steps within one time unit of any point at which it is
ready.  :class:`StaggeredDeadlineAdversary` realises a genuinely
asynchronous family inside the schema: process ``i`` steps exactly at
the grid times ``offset_i, offset_i + 1, offset_i + 2, ...`` (whenever
it is ready there), with per-process phase offsets on a fractional
grid.  Between events the adversary lets time pass in quantum steps.

Consecutive steps of a ready process are exactly one time unit apart,
and a process that becomes ready mid-interval first steps at its next
grid point, strictly less than one unit later — so every member of the
family satisfies the Unit-Time obligation, while the interleavings it
produces (processes acting at staggered fractional times) are exactly
the ones the round-synchronous subclass cannot express.

The automaton must enable time-passage steps of the quantum (pass
``time_increments=(quantum,)`` to
:func:`repro.algorithms.lehmann_rabin.automaton.lehmann_rabin_automaton`).
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, Hashable, Optional, Sequence, Tuple, TypeVar

from repro.adversary.base import Adversary
from repro.adversary.unit_time import ProcessView
from repro.automaton.automaton import ProbabilisticAutomaton
from repro.automaton.execution import ExecutionFragment
from repro.automaton.signature import TIME_PASSAGE
from repro.automaton.transition import Transition
from repro.errors import AdversaryError

State = TypeVar("State", bound=Hashable)


class StaggeredDeadlineAdversary(Adversary[State]):
    """Each process acts at its own phase-shifted unit grid.

    ``offsets[i]`` is process ``i``'s phase in ``[0, 1)``; it must be a
    multiple of ``quantum``, as must ``1`` itself, so the grid is
    reachable by quantum-sized time-passage steps.  Among processes due
    at the same instant, the lowest index acts first; a due process's
    step is its first enabled one (the nondeterministic exit choice
    resolves to the first alternative).
    """

    def __init__(
        self,
        view: ProcessView[State],
        offsets: Sequence[Fraction],
        quantum: Fraction = Fraction(1, 4),
    ):
        if quantum <= 0 or Fraction(1) % quantum != 0:
            raise AdversaryError(
                f"quantum must positively divide 1, got {quantum}"
            )
        offsets = tuple(Fraction(o) for o in offsets)
        if len(offsets) != len(view.processes):
            raise AdversaryError(
                f"{len(offsets)} offsets for {len(view.processes)} processes"
            )
        for offset in offsets:
            if not 0 <= offset < 1:
                raise AdversaryError(f"offset {offset} outside [0, 1)")
            if offset % quantum != 0:
                raise AdversaryError(
                    f"offset {offset} is not a multiple of the quantum "
                    f"{quantum}"
                )
        self._view = view
        self._offsets: Dict[Hashable, Fraction] = dict(
            zip(view.processes, offsets)
        )
        self._quantum = quantum

    @property
    def view(self) -> ProcessView[State]:
        """The process view this adversary schedules against."""
        return self._view

    def _last_step_times(
        self, fragment: ExecutionFragment[State]
    ) -> Dict[Hashable, Fraction]:
        """The time at which each process last acted, from the history."""
        last: Dict[Hashable, Fraction] = {}
        for source, action, _ in fragment.steps():
            process = self._view.process_of(action)
            if process is not None:
                last[process] = self._view.time_of(source)
        return last

    def _next_grid_point(
        self, process: Hashable, after: Fraction
    ) -> Fraction:
        """The smallest grid time of ``process`` strictly after ``after``."""
        offset = self._offsets[process]
        k = math.floor(after - offset) + 1
        candidate = offset + k
        # Guard against exact-landing rounding of Fraction floor.
        while candidate <= after:
            candidate += 1
        return candidate

    def _due_time(
        self,
        process: Hashable,
        now: Fraction,
        last: Dict[Hashable, Fraction],
    ) -> Fraction:
        """When ``process`` must next act."""
        if process in last:
            return self._next_grid_point(process, last[process])
        # Never acted: its first grid point at or after the start of the
        # fragment would need the readiness history; the conservative
        # (and Unit-Time-safe) choice is the next grid point >= now.
        offset = self._offsets[process]
        k = math.ceil(now - offset)
        candidate = offset + k
        while candidate < now:
            candidate += 1
        return candidate

    def choose(
        self,
        automaton: ProbabilisticAutomaton[State],
        fragment: ExecutionFragment[State],
    ) -> Optional[Transition[State]]:
        state = fragment.lstate
        now = self._view.time_of(state)
        ready = self._view.ready(state)
        last = self._last_step_times(fragment)

        due: Optional[Tuple[Fraction, Hashable]] = None
        for process in self._view.processes:
            if process not in ready:
                continue
            when = self._due_time(process, now, last)
            if due is None or when < due[0] or (
                when == due[0] and process < due[1]
            ):
                due = (when, process)

        if due is not None and due[0] <= now:
            process = due[1]
            for step in automaton.transitions(state):
                if self._view.process_of(step.action) == process:
                    return step
            raise AdversaryError(
                f"process {process!r} is ready but has no enabled steps"
            )

        # Nobody due yet: advance one quantum (the automaton must offer
        # a quantum-sized time-passage step).
        for step in automaton.transitions(state):
            if step.action != TIME_PASSAGE:
                continue
            advanced = step.target.the_point()
            if self._view.time_of(advanced) - now == self._quantum:
                return step
        raise AdversaryError(
            f"no time-passage step of {self._quantum} enabled in {state!r}; "
            "build the automaton with matching time_increments"
        )

    def __repr__(self) -> str:
        return (
            f"StaggeredDeadlineAdversary(offsets="
            f"{list(self._offsets.values())!r}, quantum={self._quantum})"
        )


def evenly_staggered(
    view: ProcessView[State], quantum: Fraction = Fraction(1, 4)
) -> StaggeredDeadlineAdversary[State]:
    """Offsets spread evenly over [0, 1) on the quantum grid."""
    n = len(view.processes)
    slots = int(Fraction(1) / quantum)
    offsets = [quantum * (i % slots) for i in range(n)]
    return StaggeredDeadlineAdversary(view, offsets, quantum)
