"""Adversary decision tables over a compiled space.

A deterministic Unit-Time adversary built from a
:class:`~repro.adversary.unit_time.MarkovRoundPolicy` has finite memory:
the set of processes that already stepped this round plus (a bounded
view of) the completed-round count.  This module explores the product of
a :class:`~repro.statespace.compile.CompiledSpace` with that memory once
per adversary, producing flat per-node arrays: the chosen step's target
ids, float cumulative weights, exact probabilities, and clock advances.
Sampling an execution then costs one uniform draw and a few list
indexings per step — no fragments, no hashing of rich state objects, no
re-running the policy.

History-dependent adversaries (anything whose policy is not a
``MarkovRoundPolicy``, e.g. the coin-peeking hashed-random family) are
reported as uncompilable by returning ``None``; the engine falls back to
the tree walk for those adversaries only, which preserves byte-identical
reports because every (adversary, start) pair's outcome is a pure
function of its derived seed under either evaluation strategy.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Tuple

from repro.adversary.base import Adversary
from repro.adversary.unit_time import (
    ADVANCE_TIME,
    HALT,
    MarkovRoundPolicy,
    RoundBasedAdversary,
)
from repro.automaton.signature import TIME_PASSAGE
from repro.automaton.transition import Transition
from repro.errors import AdversaryError, ContractViolation, StateBudgetExceeded
from repro.statespace.compile import CompiledSpace, CompiledStep

#: A product node's memory: (space state id, stepped set, round key).
_NodeKey = Tuple[int, FrozenSet[Hashable], int]


class AdversaryTable:
    """The compiled joint behaviour of one adversary over a space.

    Node-indexed parallel arrays; each node has exactly one choice
    (deterministic adversary).  ``choice_targets[i] is None`` means the
    adversary halts at node ``i``.
    """

    __slots__ = (
        "space",
        "start_nodes",
        "node_state",
        "choice_targets",
        "choice_cum",
        "choice_weights",
        "choice_deltas",
    )

    def __init__(self, space: CompiledSpace):
        self.space = space
        self.start_nodes: List[int] = []
        self.node_state: List[int] = []
        self.choice_targets: List[Optional[Tuple[int, ...]]] = []
        self.choice_cum: List[Tuple[float, ...]] = []
        self.choice_weights: List[Tuple[Fraction, ...]] = []
        self.choice_deltas: List[Tuple[Fraction, ...]] = []

    @property
    def n_nodes(self) -> int:
        """The number of explored product nodes."""
        return len(self.node_state)


def compile_adversary(
    space: CompiledSpace,
    adversary: Adversary,
    starts: Sequence[object],
    *,
    max_nodes: int,
) -> Optional[AdversaryTable]:
    """Tabulate ``adversary`` over ``space``, or ``None`` if impossible.

    Returns ``None`` for adversaries outside the compilable class
    (non-round-based, history-dependent policies) and for adversaries
    whose policy raises while being tabulated — the tree walk then
    reproduces the identical raise (or quarantine) lazily at sample
    time.  Budget overruns raise :class:`StateBudgetExceeded` like the
    space compile itself.
    """
    if not isinstance(adversary, RoundBasedAdversary):
        return None
    policy = adversary.policy
    if not isinstance(policy, MarkovRoundPolicy):
        return None
    view = adversary.view
    max_rounds = adversary.max_rounds
    period = 1 if max_rounds is not None else max(1, policy.rounds_period(view))
    automaton = space.automaton
    processes = view.processes

    table = AdversaryTable(space)
    ids: Dict[_NodeKey, int] = {}
    order: List[_NodeKey] = []

    def intern(node: _NodeKey) -> int:
        found = ids.get(node)
        if found is not None:
            return found
        if len(order) >= max_nodes:
            raise StateBudgetExceeded(
                f"adversary {adversary!r} exceeded the product-node budget "
                f"of {max_nodes}; rerun with a larger --state-budget or "
                f"--engine tree",
                budget=max_nodes,
                explored=len(order),
            )
        new_id = len(order)
        ids[node] = new_id
        order.append(node)
        return new_id

    try:
        for start in starts:
            table.start_nodes.append(
                intern((space.state_id(start), frozenset(), 0))
            )
        cursor = 0
        while cursor < len(order):
            state_id, stepped, rounds = order[cursor]
            cursor += 1
            table.node_state.append(state_id)
            rep = space.reps[state_id]

            if max_rounds is not None and rounds >= max_rounds:
                _append_halt(table)
                continue

            ready = view.ready(rep)
            pending = tuple(
                p for p in processes if p in ready and p not in stepped
            )
            move = policy.markov_move(automaton, rep, pending, view, rounds)

            if move is HALT:
                _append_halt(table)
                continue
            if move is ADVANCE_TIME:
                if pending:
                    raise AdversaryError(
                        f"policy tried to advance time with obligated "
                        f"processes pending: {pending!r}"
                    )
                step = _find_time_passage(space, state_id)
                next_rounds = (
                    min(rounds + 1, max_rounds)
                    if max_rounds is not None
                    else (rounds + 1) % period
                )
                _append_choice(
                    table, intern, step, frozenset(), next_rounds
                )
                continue
            if isinstance(move, Transition):
                if move.action == TIME_PASSAGE:
                    raise AdversaryError(
                        "policies must request time passage via ADVANCE_TIME"
                    )
                step = _match_step(space, state_id, move)
                process = view.process_of(move.action)
                next_stepped = (
                    stepped if process is None else stepped | {process}
                )
                _append_choice(table, intern, step, next_stepped, rounds)
                continue
            raise AdversaryError(f"policy returned an invalid move: {move!r}")
    except StateBudgetExceeded:
        raise
    except (AdversaryError, ContractViolation, KeyError):
        # The policy misbehaved (or scheduled a step the space never
        # tabulated, surfacing as KeyError).  The tree walk hits the
        # identical condition on its first sample of this adversary and
        # reports it through the existing guard/quarantine machinery.
        return None
    return table


def _append_halt(table: AdversaryTable) -> None:
    table.choice_targets.append(None)
    table.choice_cum.append(())
    table.choice_weights.append(())
    table.choice_deltas.append(())


def _append_choice(table, intern, step: CompiledStep, stepped, rounds) -> None:
    table.choice_targets.append(
        tuple(intern((target, stepped, rounds)) for target in step.targets)
    )
    table.choice_cum.append(step.cum)
    table.choice_weights.append(step.weights)
    table.choice_deltas.append(step.deltas)


def _find_time_passage(space: CompiledSpace, state_id: int) -> CompiledStep:
    for step in space.steps[state_id]:
        if step.action == TIME_PASSAGE:
            return step
    raise AdversaryError(
        f"no time-passage step enabled in {space.reps[state_id]!r}; "
        f"is this a timed automaton?"
    )


def _match_step(
    space: CompiledSpace, state_id: int, move: Transition
) -> CompiledStep:
    """The compiled step carrying ``move`` (identity first, then ==)."""
    tabulated = space.steps[state_id]
    for step in tabulated:
        if step.transition is move:
            return step
    matched = [step for step in tabulated if step.transition == move]
    if len(matched) == 1:
        return matched[0]
    if matched:
        # Two distinct enabled transitions compare equal: picking either
        # could disagree with the step the tree walk schedules, breaking
        # byte-identity.  Refuse to tabulate; compile_adversary returns
        # None and the pair samples through the tree walk instead.
        raise AdversaryError(
            f"policy scheduled {move.action!r}, which matches "
            f"{len(matched)} distinct-but-equal compiled steps of "
            f"{space.reps[state_id]!r}; the match is ambiguous"
        )
    raise AdversaryError(
        f"policy scheduled {move.action!r}, which is not among the "
        f"compiled steps of {space.reps[state_id]!r}"
    )
