"""Compile-once state spaces and the engine protocol built on them.

See ``docs/statespace.md`` for the compile pipeline, the
``--engine {tree,compiled,batched,auto}`` selection rules, the flat
array layout behind the batched engine, and the fallback behaviour
that keeps reports byte-identical across engines.
"""

from repro.statespace.arrays import FlatTable, UniformSource, flatten_table
from repro.statespace.compile import (
    DEFAULT_STATE_BUDGET,
    IDENTITY_SPEC,
    CompiledSpace,
    CompiledStep,
    SpaceSpec,
    compile_space,
)
from repro.statespace.engine import (
    ENGINE_NAMES,
    BatchedEngine,
    CompiledEngine,
    Engine,
    TreeEngine,
    build_engine,
    resolve_engine_name,
)
from repro.statespace.product import AdversaryTable, compile_adversary

__all__ = [
    "DEFAULT_STATE_BUDGET",
    "IDENTITY_SPEC",
    "CompiledSpace",
    "CompiledStep",
    "FlatTable",
    "SpaceSpec",
    "UniformSource",
    "compile_space",
    "flatten_table",
    "ENGINE_NAMES",
    "BatchedEngine",
    "CompiledEngine",
    "Engine",
    "TreeEngine",
    "build_engine",
    "resolve_engine_name",
    "AdversaryTable",
    "compile_adversary",
]
