"""CSR-flattened adversary tables and block-buffered uniform streams.

:class:`~repro.statespace.product.AdversaryTable` stores one tuple of
outcomes per product node; walking it costs a tuple indexing chain and
an ``enumerate`` allocation per step.  :func:`flatten_table` repacks a
table into :class:`FlatTable` — contiguous parallel lists in CSR form
(``offsets[i]:offsets[i+1]`` slices shared ``targets`` / ``cum`` /
``deltas`` arrays) with the target flag and halt bit hoisted per node —
so the batched engine's inner loop touches only flat list indexing.

Two further accelerations live here, both *exactly* draw-preserving:

* **Chain compression** — a node with a single outcome consumes one
  uniform and moves on deterministically.  Runs of such nodes (between
  coin flips, the vast majority of Lehmann-Rabin steps) are memoised as
  ``(skip_steps, skip_to, skip_total)`` so the walk advances a whole
  run in O(1) while consuming exactly ``skip_steps`` uniforms, exactly
  the floats the stepwise walk would have read and discarded against
  cumulative weight 1.0.  Only runs whose every time advance is
  nonnegative are compressed: prefix sums of the run's elapsed time are
  then bounded by ``skip_total``, so a single comparison proves no
  intermediate state crossed the time bound.
* **Block-buffered uniforms** — :class:`UniformSource` fills a block of
  uniforms at a time, via :func:`repro.statespace.np_backend.make_bulk`
  when numpy can transplant the generator state (bit-identical floats)
  or ``rng.random()`` otherwise.  Sources own their ``random.Random``
  exclusively; over-filling past what a walk consumes is invisible
  because each pair's stream is private and discarded afterwards.
"""

from __future__ import annotations

import math
import random
from fractions import Fraction
from typing import Callable, List, Optional, Sequence

from repro.statespace.product import AdversaryTable

#: Uniforms fetched per refill.  Large enough to amortise the bulk call,
#: small enough that an abandoned tail costs nothing noticeable.
BLOCK = 4096


class FlatTable:
    """One adversary's compiled behaviour as CSR parallel arrays.

    Time advances are stored as *scaled integers*: ``denominator`` is
    the LCM of every edge delta's denominator, and ``ideltas[e]`` is
    ``deltas[e] * denominator`` exactly.  Elapsed-time accounting in the
    walkers is then pure ``int`` arithmetic — exact, hence
    byte-identical to the stepwise ``Fraction`` sums, and several times
    cheaper per step (for unit-time models the denominator is 1).
    """

    __slots__ = (
        "start_nodes",
        "offsets",
        "targets",
        "cum",
        "denominator",
        "ideltas",
        "node_flag",
        "halt",
        "skip_steps",
        "skip_to",
        "skip_total",
    )

    def __init__(
        self,
        start_nodes: Sequence[int],
        offsets: List[int],
        targets: List[int],
        cum: List[float],
        denominator: int,
        ideltas: List[int],
        node_flag: List[bool],
        halt: List[bool],
    ):
        self.start_nodes = start_nodes
        self.offsets = offsets
        self.targets = targets
        self.cum = cum
        self.denominator = denominator
        self.ideltas = ideltas
        self.node_flag = node_flag
        self.halt = halt
        # Chain-compression arrays, filled by _compress_chains:
        # skip_steps[i] == 0 means node i starts no compressible run;
        # skip_total is in the same scaled-integer units as ideltas.
        self.skip_steps: List[int] = []
        self.skip_to: List[int] = []
        self.skip_total: List[int] = []

    @property
    def n_nodes(self) -> int:
        """The number of product nodes in the table."""
        return len(self.node_flag)

    def scale_bound(self, bound: Optional[Fraction]) -> Optional[int]:
        """``bound`` as an integer threshold in scaled units.

        For integer elapsed ``e``, ``e > bound`` iff
        ``e > floor(bound * denominator)`` — exactly — so walkers
        compare two ints where the stepwise engines compare Fractions.
        """
        if bound is None:
            return None
        return math.floor(bound * self.denominator)


def flatten_table(
    table: Optional[AdversaryTable], flags: Sequence[bool]
) -> Optional[FlatTable]:
    """Repack ``table`` into a :class:`FlatTable` (``None`` passes through).

    ``flags`` is the space-indexed target predicate from
    ``CompiledSpace.flags``; it is hoisted to node granularity so the
    inner loop never chases ``node -> state -> flag``.
    """
    if table is None:
        return None
    node_state = table.node_state
    choice_targets = table.choice_targets
    choice_cum = table.choice_cum
    choice_deltas = table.choice_deltas
    n = table.n_nodes
    offsets = [0] * (n + 1)
    targets: List[int] = []
    cum: List[float] = []
    deltas: List[Fraction] = []
    node_flag = [bool(flags[state]) for state in node_state]
    halt = [False] * n
    for i in range(n):
        outcome_targets = choice_targets[i]
        if outcome_targets is None:
            halt[i] = True
        else:
            targets.extend(outcome_targets)
            cum.extend(choice_cum[i])
            deltas.extend(choice_deltas[i])
        offsets[i + 1] = len(targets)
    denominator = math.lcm(*(delta.denominator for delta in deltas), 1)
    ideltas = [
        delta.numerator * (denominator // delta.denominator)
        for delta in deltas
    ]
    flat = FlatTable(
        table.start_nodes,
        offsets,
        targets,
        cum,
        denominator,
        ideltas,
        node_flag,
        halt,
    )
    _compress_chains(flat)
    return flat


def _compress_chains(flat: FlatTable) -> None:
    """Memoise maximal deterministic runs into the ``skip_*`` arrays.

    A node participates in a run when it is not flagged, not a halt,
    has exactly one outcome, and that outcome's time advance is
    nonnegative (the bound fast-path needs monotone prefix sums).  Runs
    are resolved iteratively with an in-progress mark so cycles — a
    deterministic loop that never flags would otherwise never terminate
    — are cut at the point of re-entry; cutting a run short is always
    sound because the walker re-examines whatever node it lands on.
    """
    n = flat.n_nodes
    offsets = flat.offsets
    targets = flat.targets
    ideltas = flat.ideltas
    node_flag = flat.node_flag
    halt = flat.halt
    skip_steps = [0] * n
    skip_to = list(range(n))
    skip_total = [0] * n
    # 0 = unresolved, 1 = on the current path, 2 = resolved.
    status = bytearray(n)

    def eligible(i: int) -> bool:
        return (
            not node_flag[i]
            and not halt[i]
            and offsets[i + 1] - offsets[i] == 1
            and ideltas[offsets[i]] >= 0
        )

    for root in range(n):
        if status[root] == 2:
            continue
        path: List[int] = []
        cur = root
        while status[cur] == 0 and eligible(cur):
            status[cur] = 1
            path.append(cur)
            cur = targets[offsets[cur]]
        if status[cur] == 2:
            steps = skip_steps[cur]
            to = skip_to[cur]
            total = skip_total[cur]
        else:
            # Ineligible terminus or a cycle re-entry: the run ends here.
            steps, to, total = 0, cur, 0
            status[cur] = 2
        for node in reversed(path):
            steps += 1
            total = total + ideltas[offsets[node]]
            skip_steps[node] = steps
            skip_to[node] = to
            skip_total[node] = total
            status[node] = 2
    flat.skip_steps = skip_steps
    flat.skip_to = skip_to
    flat.skip_total = skip_total


class UniformSource:
    """A block-buffered stream of uniforms over one private ``Random``.

    The stream's *consumed prefix* is exactly the sequence
    ``rng.random(), rng.random(), ...`` the stepwise engines would have
    drawn — whether blocks come from the numpy twin generator
    (bit-identical transplant) or from ``rng.random()`` itself.  The
    walker reads ``data``/``pos`` directly in its inner loop and writes
    ``pos`` back on exit; :meth:`refill` and :meth:`skip` are the only
    operations that touch the underlying generator.
    """

    __slots__ = ("rng", "block", "data", "pos", "bulk")

    def __init__(
        self,
        rng: random.Random,
        block: int = BLOCK,
        bulk: Optional[Callable[[int], List[float]]] = None,
    ):
        self.rng = rng
        self.block = block
        self.data: List[float] = []
        self.pos = 0
        self.bulk = bulk

    @property
    def backend(self) -> str:
        """Which block filler is active: ``"numpy"`` or ``"pure"``."""
        return "pure" if self.bulk is None else "numpy"

    def refill(self) -> List[float]:
        """Fetch the next block; returns the fresh ``data`` list."""
        if self.bulk is None:
            rand = self.rng.random
            self.data = [rand() for _ in range(self.block)]
        else:
            self.data = self.bulk(self.block)
        self.pos = 0
        return self.data

    def skip(self, count: int) -> None:
        """Discard ``count`` uniforms (chain compression's fast-forward)."""
        available = len(self.data) - self.pos
        if count <= available:
            self.pos += count
            return
        count -= available
        if self.bulk is None:
            rand = self.rng.random
            for _ in range(count):
                rand()
        else:
            self.bulk(count)
        self.data = []
        self.pos = 0
