"""Compile-once interned state spaces.

Every verification engine in this library ultimately walks the same
object graph: rich state objects, memoised transition lists, and
``FiniteDistribution`` targets.  This module explores that graph *once*,
interning states to dense integer ids and tabulating each state's
enabled steps as index arrays — exact ``Fraction`` probabilities for the
analytical engines plus precomputed float partial sums that replicate
:meth:`repro.probability.space.FiniteDistribution.sample` bit-for-bit
for the Monte-Carlo engine.

Timed automata are compiled *up to the clock*: a :class:`SpaceSpec`
supplies a quotient key (``LRState.untimed()`` for Lehmann-Rabin) under
which the dynamics must be invariant, and every compiled target records
the exact time advance of that outcome.  Samplers then track elapsed
time as a running ``Fraction`` instead of re-deriving it from state
objects.

Exploration is budgeted: exceeding ``max_states`` raises the typed
:class:`repro.errors.StateBudgetExceeded` so ``--engine compiled`` can
fail loudly while ``--engine auto`` falls back to the tree walk.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from fractions import Fraction
from typing import (
    Callable,
    Deque,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro import obs
from repro.automaton.automaton import ProbabilisticAutomaton
from repro.automaton.transition import Transition
from repro.contracts.config import GuardConfig
from repro.contracts.guards import check_transition_distribution, report_violation
from repro.errors import QuotientInvarianceError, StateBudgetExceeded

#: Default cap on interned states per compile (and on product nodes per
#: adversary table).  Chosen so the n<=4 Lehmann-Rabin rings compile in
#: well under a second while the n>=5 rings trip ``auto`` into the tree
#: walk instead of stalling.
DEFAULT_STATE_BUDGET = 200_000

#: How many quotient classes the flags spot check probes (every member
#: of each probed class is evaluated).  Bounded so checking stays cheap
#: on large spaces while still catching non-invariant predicates fast.
_FLAG_PROBES = 64

_ZERO = Fraction(0)


def _zero_time(state: object) -> Fraction:
    """Default clock for untimed automata: identically zero."""
    return _ZERO


@dataclass(frozen=True)
class SpaceSpec:
    """How to quotient an automaton's states for compilation.

    ``key`` maps a state to its interning key; two states sharing a key
    must have identical dynamics up to the clock (same actions, same
    target keys, same probabilities) and agree on every predicate the
    engines evaluate.  ``time_of`` reads the clock, used to record exact
    per-outcome time advances.  The identity spec (the default) compiles
    untimed automata verbatim.

    ``canonical``, when set, maps every state to a canonical
    representative of its symmetry class *before* interning — e.g. the
    lexicographically least rotation of a Lehmann-Rabin ring state
    (``repro.algorithms.lehmann_rabin.symmetry``).  It must preserve the
    clock (``time_of(canonical(s)) == time_of(s)``) and commute with the
    dynamics: the canonicalised successors of ``canonical(s)`` must be
    the canonicalised successors of ``s``.  ``orbit`` enumerates the
    members of a state's symmetry class; it backs the quotient-
    invariance spot check of :meth:`CompiledSpace.flags` and is required
    whenever ``canonical`` is set and guards are checking.
    """

    key: Callable[[object], Hashable] = lambda state: state
    time_of: Callable[[object], Fraction] = _zero_time
    canonical: Optional[Callable[[object], object]] = None
    orbit: Optional[Callable[[object], Sequence[object]]] = None


#: The trivial spec: no quotient, zero clock.
IDENTITY_SPEC = SpaceSpec()


@dataclass(frozen=True)
class CompiledStep:
    """One tabulated step: a transition lowered to index arrays.

    ``targets[i]`` is the interned id of the ``i``-th outcome, in the
    target distribution's insertion order; ``cum[i]`` is the running
    float sum of the first ``i+1`` weights, accumulated left to right
    exactly as ``FiniteDistribution.sample`` does, so one uniform draw
    against ``cum`` lands on the same outcome the tree walk would pick;
    ``weights`` keeps the exact probabilities for the analytical
    engines; ``deltas[i]`` is the exact clock advance of outcome ``i``.
    ``transition`` retains the source object for identity matching
    against adversary decisions.
    """

    transition: Transition
    action: object
    targets: Tuple[int, ...]
    cum: Tuple[float, ...]
    weights: Tuple[Fraction, ...]
    deltas: Tuple[Fraction, ...]


class CompiledSpace:
    """The interned reachable state space of one automaton.

    ``reps[i]`` is the representative (first-encountered) concrete state
    of class ``i``; ``steps[i]`` tabulates its enabled steps in the
    automaton's deterministic transition order.
    """

    __slots__ = ("automaton", "spec", "reps", "steps", "_ids", "n_transitions")

    def __init__(
        self,
        automaton: ProbabilisticAutomaton,
        spec: SpaceSpec,
        reps: List[object],
        steps: List[Tuple[CompiledStep, ...]],
        ids: Dict[Hashable, int],
        n_transitions: int,
    ):
        self.automaton = automaton
        self.spec = spec
        self.reps = reps
        self.steps = steps
        self._ids = ids
        self.n_transitions = n_transitions

    @property
    def n_states(self) -> int:
        """The number of interned state classes."""
        return len(self.reps)

    def state_id(self, state: object) -> int:
        """The interned id of ``state`` (KeyError when unreachable)."""
        spec = self.spec
        if spec.canonical is not None:
            state = spec.canonical(state)
        return self._ids[spec.key(state)]

    def contains(self, state: object) -> bool:
        """Was ``state`` (up to the quotient) reached during compile?"""
        spec = self.spec
        if spec.canonical is not None:
            state = spec.canonical(state)
        return spec.key(state) in self._ids

    def flags(
        self,
        predicate: Callable[[object], bool],
        guards: Optional[GuardConfig] = None,
    ) -> List[bool]:
        """``predicate`` evaluated once per class, indexed by id.

        The predicate must be invariant under the quotient key (for the
        shipped specs: must not read the clock) — the same contract the
        key itself carries.  When the spec carries a symmetry ``orbit``
        and ``guards`` is checking, a bounded spot check re-evaluates
        the predicate on every member of sampled classes and routes any
        disagreement through the guard layer
        (:class:`~repro.errors.QuotientInvarianceError`): warn mode
        counts and warns once, strict mode raises.
        """
        values = [bool(predicate(rep)) for rep in self.reps]
        orbit = self.spec.orbit
        if orbit is None or guards is None or not guards.checking:
            return values
        probes = min(len(values), _FLAG_PROBES)
        if not probes:
            return values
        stride = max(1, len(values) // probes)
        for index in range(0, len(values), stride):
            rep = self.reps[index]
            for member in orbit(rep):
                if bool(predicate(member)) != values[index]:
                    report_violation(
                        guards,
                        QuotientInvarianceError(
                            f"predicate {predicate!r} is not invariant "
                            f"under the symmetry quotient: class "
                            f"representative {rep!r} maps to "
                            f"{values[index]} but class member "
                            f"{member!r} maps to {not values[index]}",
                            state=member,
                            site="statespace.flags.quotient",
                        ),
                    )
                    return values
        return values


def compile_space(
    automaton: ProbabilisticAutomaton,
    roots: Sequence[object],
    spec: SpaceSpec = IDENTITY_SPEC,
    *,
    max_states: int = DEFAULT_STATE_BUDGET,
    guards: Optional[GuardConfig] = None,
) -> CompiledSpace:
    """Explore and intern the space reachable from ``roots``.

    Breadth-first over quotient classes; raises
    :class:`StateBudgetExceeded` past ``max_states``.  When ``guards``
    is checking, every tabulated transition passes the Definition 2.1
    distribution check *here*, once, replacing the per-sample check the
    tree walk performs (strict mode therefore raises at compile time).
    Emits ``statespace.{states,transitions,compile_ms}`` metrics.
    """
    started = time.perf_counter()
    key_of = spec.key
    time_of = spec.time_of
    canonical = spec.canonical
    checking = guards is not None and guards.checking
    ids: Dict[Hashable, int] = {}
    reps: List[object] = []
    steps: List[Optional[Tuple[CompiledStep, ...]]] = []
    frontier: Deque[int] = deque()

    def intern(state: object) -> int:
        if canonical is not None:
            state = canonical(state)
        state_key = key_of(state)
        found = ids.get(state_key)
        if found is not None:
            return found
        if len(reps) >= max_states:
            raise StateBudgetExceeded(
                f"state-space compile exceeded its budget of {max_states} "
                f"states; rerun with a larger --state-budget or "
                f"--engine tree",
                budget=max_states,
                explored=len(reps),
            )
        new_id = len(reps)
        ids[state_key] = new_id
        reps.append(state)
        steps.append(None)
        frontier.append(new_id)
        return new_id

    for root in roots:
        intern(root)
    n_transitions = 0
    while frontier:
        state_id = frontier.popleft()
        rep = reps[state_id]
        source_time = time_of(rep)
        compiled: List[CompiledStep] = []
        for transition in automaton.transitions(rep):
            if checking:
                check_transition_distribution(guards, transition)
            targets: List[int] = []
            cum: List[float] = []
            weights: List[Fraction] = []
            deltas: List[Fraction] = []
            running = 0.0
            for point, weight in transition.target.items():
                targets.append(intern(point))
                running += float(weight)
                cum.append(running)
                weights.append(weight)
                deltas.append(time_of(point) - source_time)
            compiled.append(
                CompiledStep(
                    transition=transition,
                    action=transition.action,
                    targets=tuple(targets),
                    cum=tuple(cum),
                    weights=tuple(weights),
                    deltas=tuple(deltas),
                )
            )
        steps[state_id] = tuple(compiled)
        n_transitions += len(compiled)

    space = CompiledSpace(
        automaton=automaton,
        spec=spec,
        reps=reps,
        steps=[tabulated if tabulated is not None else () for tabulated in steps],
        ids=ids,
        n_transitions=n_transitions,
    )
    if obs.enabled():
        obs.gauge("statespace.states", space.n_states)
        obs.gauge("statespace.transitions", n_transitions)
        obs.observe(
            "statespace.compile_ms", (time.perf_counter() - started) * 1000.0
        )
    return space
