"""Optional numpy backend for bulk uniform draws (MT19937 transplant).

The batched engine consumes uniforms in blocks.  Python's
``random.Random`` and numpy's legacy ``RandomState`` share the same
generator — MT19937 with 53-bit doubles built as
``(a >> 5) * 2**26 + (b >> 6)) / 2**53`` from two 32-bit outputs — so a
``RandomState`` seeded by *transplanting* the ``Random`` instance's
internal state produces exactly the floats the python generator would
have produced, in the same order.  That makes the numpy path
bit-identical to the pure-python path, not merely statistically
equivalent, which is what the cross-engine byte-identity suite pins.

This is the only module in ``src/`` allowed to import numpy
(``tools/lint.py`` enforces the ban elsewhere); everything degrades to
the pure-python block filler when numpy is missing or the transplant is
not possible.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

try:
    import numpy as _numpy
except ImportError:  # pragma: no cover - exercised where numpy is absent
    _numpy = None

#: Version tag of ``random.Random.getstate()`` tuples we know how to
#: transplant: ``(3, (624 key words + position,), gauss_next)``.
_GETSTATE_VERSION = 3
_STATE_WORDS = 625


def available() -> bool:
    """True when numpy is importable in this interpreter."""
    return _numpy is not None


def make_bulk(rng: random.Random) -> Optional[Callable[[int], List[float]]]:
    """A bulk-draw closure bit-identical to repeated ``rng.random()``.

    Transplants ``rng``'s Mersenne-Twister state into a persistent
    ``numpy.random.RandomState`` **once**; the returned closure draws
    blocks from that twin generator.  After the first call the python
    ``rng`` is stale — callers own the rng exclusively (the batched
    engine's per-pair streams do) and must route every subsequent draw
    through the closure.

    Returns ``None`` when numpy is absent or the state layout is not
    the MT19937 tuple we know how to transplant, in which case callers
    fall back to filling blocks with ``rng.random()`` directly.
    """
    if _numpy is None:
        return None
    state = rng.getstate()
    if state[0] != _GETSTATE_VERSION or len(state[1]) != _STATE_WORDS:
        return None
    keys, pos = state[1][:-1], state[1][-1]
    twin = _numpy.random.RandomState()
    twin.set_state(
        ("MT19937", _numpy.array(keys, dtype=_numpy.uint32), pos, 0, 0.0)
    )

    def bulk(count: int) -> List[float]:
        return twin.random_sample(count).tolist()

    return bulk
