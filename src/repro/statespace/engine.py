"""The ``Engine`` protocol: one evaluation strategy per check.

Every verification command evaluates (adversary, start) pairs through
one of three operations — Monte-Carlo ``sample``, exact ``exact_reach``,
or ``time_to_target`` — and an :class:`Engine` bundles one strategy for
all three:

* :class:`TreeEngine` walks the live object graph exactly as the
  library always has (fragments, memoised transitions, policy replay).
* :class:`CompiledEngine` walks the interned tables of
  :mod:`repro.statespace.compile` / :mod:`repro.statespace.product`,
  falling back to an embedded tree engine per adversary when that
  adversary could not be tabulated (history-dependent policies) or when
  a caller needs the final fragment (closure spot checks).

Both engines consume the *identical* randomness per sample — one
uniform draw per step, resolved against float partial sums accumulated
exactly as ``FiniteDistribution.sample`` accumulates them — so reports
are byte-identical whichever engine ran, for every seed, guard mode,
and worker count.  The factory :func:`build_engine` implements the
``--engine {tree,compiled,auto}`` selection rules: ``compiled``
propagates :class:`~repro.errors.StateBudgetExceeded`, ``auto``
silently falls back to the tree walk.
"""

from __future__ import annotations

import abc
from fractions import Fraction
from typing import Callable, List, Optional, Sequence, Tuple

from repro import obs
from repro.automaton.automaton import ProbabilisticAutomaton
from repro.automaton.execution import ExecutionFragment
from repro.contracts import OFF_CONFIG, GuardConfig
from repro.errors import (
    ContractViolation,
    StateBudgetExceeded,
    VerificationError,
)
from repro.events.reach import ReachWithinTime
from repro.execution import sampler
from repro.execution.automaton import ExecutionAutomaton
from repro.execution.measure import EventBounds, event_probability_bounds
from repro.execution.sampler import SampleResult
from repro.probability.space import as_fraction
from repro.statespace.compile import (
    DEFAULT_STATE_BUDGET,
    IDENTITY_SPEC,
    SpaceSpec,
    compile_space,
)
from repro.statespace.product import AdversaryTable, compile_adversary

#: Engine names accepted by ``--engine``.
ENGINE_NAMES = ("tree", "compiled", "auto")

_ZERO = Fraction(0)
_ONE = Fraction(1)


def resolve_engine_name(engine: str) -> str:
    """Validate an ``--engine`` value, returning it unchanged."""
    if engine not in ENGINE_NAMES:
        raise VerificationError(
            f"unknown engine {engine!r}; expected one of {ENGINE_NAMES}"
        )
    return engine


class Engine(abc.ABC):
    """One bound evaluation strategy for a fixed check.

    An engine is constructed for a specific (automaton, adversaries,
    start states, target) tuple; the three operations below then index
    into those sequences.  Engines ride the fork-inherited task
    contexts of :mod:`repro.parallel.backend`, so pooled workers reuse
    the parent's compiled tables and never recompile.
    """

    #: Short strategy label ("tree" / "compiled").
    name: str = ""

    @abc.abstractmethod
    def sample(
        self,
        adversary_index: int,
        start_index: int,
        rng,
        *,
        want_fragment: bool = False,
    ) -> SampleResult:
        """One Monte-Carlo sample of the pair's reach-within-time event.

        ``want_fragment`` forces a result whose ``final`` fragment is
        populated (the compiled engine otherwise returns ``final=None``
        since it never materialises fragments); callers needing the
        fragment — the execution-closure spot check — set it for that
        sample only, and both engines consume identical randomness
        either way.
        """

    @abc.abstractmethod
    def time_to_target(
        self, adversary_index: int, start_index: int, rng
    ) -> Optional[Fraction]:
        """One sampled elapsed time until the target (None = unreached)."""

    @abc.abstractmethod
    def exact_reach(
        self, adversary_index: int, start_index: int, max_steps: int
    ) -> EventBounds:
        """Exact bounds on the pair's event probability."""


class TreeEngine(Engine):
    """The historical evaluation strategy: walk the live object graph."""

    name = "tree"

    def __init__(
        self,
        automaton: ProbabilisticAutomaton,
        adversaries: Tuple[Tuple[str, object], ...],
        start_states: Tuple[object, ...],
        target: Callable[[object], bool],
        time_of: Callable[[object], Fraction],
        time_bound: object,
        max_steps: int,
        guards: Optional[GuardConfig] = OFF_CONFIG,
    ):
        self.automaton = automaton
        self.adversaries = adversaries
        self.start_states = start_states
        self.target = target
        self.time_of = time_of
        self.time_bound = time_bound
        self.max_steps = max_steps
        self.guards = guards
        self._schema = (
            None
            if time_bound is None
            else ReachWithinTime(
                target=target, time_bound=time_bound, time_of=time_of
            )
        )

    def sample(
        self,
        adversary_index: int,
        start_index: int,
        rng,
        *,
        want_fragment: bool = False,
    ) -> SampleResult:
        _, adversary = self.adversaries[adversary_index]
        fragment = ExecutionFragment.initial(self.start_states[start_index])
        return sampler.sample_event(
            self.automaton,
            adversary,
            fragment,
            self._schema,
            rng,
            self.max_steps,
            guards=self.guards,
        )

    def time_to_target(
        self, adversary_index: int, start_index: int, rng
    ) -> Optional[Fraction]:
        _, adversary = self.adversaries[adversary_index]
        fragment = ExecutionFragment.initial(self.start_states[start_index])
        return sampler.sample_time_until(
            self.automaton,
            adversary,
            fragment,
            self.target,
            self.time_of,
            rng,
            self.max_steps,
            guards=self.guards,
        )

    def exact_reach(
        self, adversary_index: int, start_index: int, max_steps: int
    ) -> EventBounds:
        _, adversary = self.adversaries[adversary_index]
        fragment = ExecutionFragment.initial(self.start_states[start_index])
        execution = ExecutionAutomaton(
            self.automaton, adversary, fragment, guards=self.guards
        )
        return event_probability_bounds(execution, self._schema, max_steps)


class CompiledEngine(Engine):
    """Interned-table evaluation with per-adversary tree fallback."""

    name = "compiled"

    def __init__(
        self,
        tree: TreeEngine,
        tables: Tuple[Optional[AdversaryTable], ...],
        flags: List[bool],
    ):
        self.tree = tree
        self.tables = tables
        self.flags = flags
        self._bound = (
            None
            if tree.time_bound is None
            else as_fraction(tree.time_bound)
        )

    @property
    def compiled_adversaries(self) -> int:
        """How many adversaries were tabulated (rest use the tree)."""
        return sum(1 for table in self.tables if table is not None)

    def sample(
        self,
        adversary_index: int,
        start_index: int,
        rng,
        *,
        want_fragment: bool = False,
    ) -> SampleResult:
        table = self.tables[adversary_index]
        if table is None or want_fragment:
            return self.tree.sample(
                adversary_index, start_index, rng, want_fragment=want_fragment
            )
        return self._sample_table(table, table.start_nodes[start_index], rng)

    def _sample_table(self, table: AdversaryTable, node: int, rng):
        """Mirror of :func:`sample_event` over index tables.

        Same loop structure, same single uniform draw per step resolved
        against identically accumulated partial sums, same metric
        increments — only the data representation differs.  Guard
        checks already ran at compile time and consume nothing here.
        """
        bound = self._bound
        flags = self.flags
        node_state = table.node_state
        choice_targets = table.choice_targets
        choice_cum = table.choice_cum
        choice_deltas = table.choice_deltas
        max_steps = self.tree.max_steps
        obs_on = obs.enabled()
        elapsed = _ZERO
        verdict: Optional[bool] = None
        steps_taken = 0
        for steps_taken in range(max_steps + 1):
            if elapsed > bound:
                verdict = False
                break
            if flags[node_state[node]]:
                verdict = True
                break
            if steps_taken == max_steps:
                break
            targets = choice_targets[node]
            if obs_on:
                obs.incr("adversary.decisions")
                if targets is None:
                    obs.incr("adversary.halts")
            if targets is None:
                # The adversary halted; ReachWithinTime.decide_maximal
                # rejects maximal executions that never hit the target.
                verdict = False
                break
            threshold = rng.random()
            cum = choice_cum[node]
            index = len(cum) - 1
            for position, edge in enumerate(cum):
                if threshold < edge:
                    index = position
                    break
            delta = choice_deltas[node][index]
            if delta:
                elapsed = elapsed + delta
            node = targets[index]
        result = SampleResult(verdict, steps_taken, None)
        if obs_on:
            sampler._record_event_sample(result)
        return result

    def time_to_target(
        self, adversary_index: int, start_index: int, rng
    ) -> Optional[Fraction]:
        table = self.tables[adversary_index]
        if table is None:
            return self.tree.time_to_target(adversary_index, start_index, rng)
        return self._time_table(table, table.start_nodes[start_index], rng)

    def _time_table(self, table: AdversaryTable, node: int, rng):
        """Mirror of :func:`sample_time_until` over index tables."""
        flags = self.flags
        node_state = table.node_state
        choice_targets = table.choice_targets
        choice_cum = table.choice_cum
        choice_deltas = table.choice_deltas
        max_steps = self.tree.max_steps
        obs_on = obs.enabled()
        if flags[node_state[node]]:
            if obs_on:
                sampler._record_time_sample(_ZERO, 0)
            return _ZERO
        elapsed = _ZERO
        reached: Optional[Fraction] = None
        steps_taken = 0
        for _ in range(max_steps):
            targets = choice_targets[node]
            if obs_on:
                obs.incr("adversary.decisions")
                if targets is None:
                    obs.incr("adversary.halts")
            if targets is None:
                break
            threshold = rng.random()
            cum = choice_cum[node]
            index = len(cum) - 1
            for position, edge in enumerate(cum):
                if threshold < edge:
                    index = position
                    break
            delta = choice_deltas[node][index]
            if delta:
                elapsed = elapsed + delta
            node = targets[index]
            steps_taken += 1
            if flags[node_state[node]]:
                reached = elapsed
                break
        if obs_on:
            sampler._record_time_sample(reached, steps_taken)
        return reached

    def exact_reach(
        self, adversary_index: int, start_index: int, max_steps: int
    ) -> EventBounds:
        table = self.tables[adversary_index]
        if table is None:
            return self.tree.exact_reach(adversary_index, start_index, max_steps)
        if max_steps < 0:
            raise VerificationError("max_steps must be nonnegative")
        accepted, undecided = self._exact_table(
            table, table.start_nodes[start_index], max_steps
        )
        if obs.enabled():
            obs.incr("measure.evaluations")
        return EventBounds(lower=accepted, upper=accepted + undecided)

    def _exact_table(
        self, table: AdversaryTable, root: int, max_steps: int
    ) -> Tuple[Fraction, Fraction]:
        """(accepted, undecided) masses, mirroring the exact tree walk.

        Dynamic programming over (node, elapsed, remaining) with exact
        ``Fraction`` arithmetic; rational addition is associative, so
        factoring shared subtrees leaves both masses exactly equal to
        the per-path sums :func:`event_probability_bounds` computes.
        The decision order per node mirrors the tree walk: classify
        (time-reject before target-accept), then adversary halt, then
        horizon.
        """
        bound = self._bound
        flags = self.flags
        node_state = table.node_state
        choice_targets = table.choice_targets
        choice_weights = table.choice_weights
        choice_deltas = table.choice_deltas
        memo = {}
        stack = [(root, _ZERO, max_steps)]
        while stack:
            key = stack[-1]
            if key in memo:
                stack.pop()
                continue
            node, elapsed, remaining = key
            if elapsed > bound:
                memo[key] = (_ZERO, _ZERO)
                stack.pop()
                continue
            if flags[node_state[node]]:
                memo[key] = (_ONE, _ZERO)
                stack.pop()
                continue
            targets = choice_targets[node]
            if targets is None:
                # Maximal execution; decide_maximal rejects.
                memo[key] = (_ZERO, _ZERO)
                stack.pop()
                continue
            if remaining == 0:
                memo[key] = (_ZERO, _ONE)
                stack.pop()
                continue
            deltas = choice_deltas[node]
            children = [
                (targets[i], elapsed + deltas[i], remaining - 1)
                for i in range(len(targets))
            ]
            missing = [child for child in children if child not in memo]
            if missing:
                stack.extend(missing)
                continue
            accepted = _ZERO
            undecided = _ZERO
            for weight, child in zip(choice_weights[node], children):
                child_accepted, child_undecided = memo[child]
                accepted += weight * child_accepted
                undecided += weight * child_undecided
            memo[key] = (accepted, undecided)
            stack.pop()
        return memo[(root, _ZERO, max_steps)]


def build_engine(
    automaton: ProbabilisticAutomaton,
    adversaries: Sequence[Tuple[str, object]],
    start_states: Sequence[object],
    target: Callable[[object], bool],
    time_of: Callable[[object], Fraction],
    time_bound: object,
    max_steps: int,
    *,
    engine: str = "tree",
    spec: Optional[SpaceSpec] = None,
    state_budget: Optional[int] = None,
    guards: Optional[GuardConfig] = OFF_CONFIG,
) -> Engine:
    """Build the engine requested by ``--engine`` for one check.

    Selection rules:

    * ``tree`` — always the tree walk.
    * ``compiled`` — compile or die: a blown state budget propagates as
      :class:`StateBudgetExceeded`; ``--fuel`` is refused (fuel
      accounting is inherently per-fragment).
    * ``auto`` — compile when everything fits the budget and guards
      permit, else silently use the tree walk.

    A strict-mode :class:`ContractViolation` raised *during compile*
    always falls back to the tree walk, which re-detects the identical
    violation per pair and quarantines it exactly as it always has —
    keeping strict-mode reports byte-identical across engines even on
    broken models.
    """
    resolve_engine_name(engine)
    # ``guards=None`` keeps the historical checked_choose validation on
    # the exact tree path; for engine selection it behaves like OFF.
    config = guards if guards is not None else OFF_CONFIG
    tree = TreeEngine(
        automaton=automaton,
        adversaries=tuple(adversaries),
        start_states=tuple(start_states),
        target=target,
        time_of=time_of,
        time_bound=time_bound,
        max_steps=max_steps,
        guards=guards,
    )
    if engine == "tree":
        return tree
    if config.fuelled:
        if engine == "compiled":
            raise VerificationError(
                "--engine compiled is incompatible with --fuel: fuel is "
                "accounted per execution fragment, which compiled "
                "sampling never materialises; use --engine tree"
            )
        return tree
    budget = DEFAULT_STATE_BUDGET if state_budget is None else state_budget
    try:
        with obs.span(
            "statespace.compile",
            engine=engine,
            budget=budget,
            adversaries=len(tree.adversaries),
        ):
            space = compile_space(
                automaton,
                tree.start_states,
                spec if spec is not None else IDENTITY_SPEC,
                max_states=budget,
                guards=guards,
            )
            tables = tuple(
                compile_adversary(
                    space, adversary, tree.start_states, max_nodes=budget
                )
                for _, adversary in tree.adversaries
            )
    except StateBudgetExceeded:
        if engine == "compiled":
            raise
        return tree
    except ContractViolation:
        return tree
    flags = space.flags(target)
    compiled = CompiledEngine(tree, tables, flags)
    if obs.enabled():
        obs.gauge("statespace.compiled_adversaries", compiled.compiled_adversaries)
    return compiled
