"""The ``Engine`` protocol: one evaluation strategy per check.

Every verification command evaluates (adversary, start) pairs through
one of three operations — Monte-Carlo ``sample``, exact ``exact_reach``,
or ``time_to_target`` — and an :class:`Engine` bundles one strategy for
all three:

* :class:`TreeEngine` walks the live object graph exactly as the
  library always has (fragments, memoised transitions, policy replay).
* :class:`CompiledEngine` walks the interned tables of
  :mod:`repro.statespace.compile` / :mod:`repro.statespace.product`,
  falling back to an embedded tree engine per adversary when that
  adversary could not be tabulated (history-dependent policies) or when
  a caller needs the final fragment (closure spot checks).
* :class:`BatchedEngine` walks the same tables flattened into CSR
  parallel arrays (:mod:`repro.statespace.arrays`), drawing uniforms in
  blocks — via the numpy state transplant of
  :mod:`repro.statespace.np_backend` when available, pure python
  otherwise — and fast-forwarding memoised deterministic runs.

All engines consume the *identical* randomness per sample — one
uniform draw per step, resolved against float partial sums accumulated
exactly as ``FiniteDistribution.sample`` accumulates them; the batched
engine merely fetches those same floats ahead of time — so reports are
byte-identical whichever engine ran, for every seed, guard mode, and
worker count.  The factory :func:`build_engine` implements the
``--engine {tree,compiled,batched,auto}`` selection rules: ``compiled``
and ``batched`` propagate
:class:`~repro.errors.StateBudgetExceeded`, ``auto`` prefers the
batched engine and silently falls back to the tree walk when the
compile fails.
"""

from __future__ import annotations

import abc
import weakref
from fractions import Fraction
from typing import Callable, List, Optional, Sequence, Tuple

from repro import obs
from repro.automaton.automaton import ProbabilisticAutomaton
from repro.automaton.execution import ExecutionFragment
from repro.contracts import OFF_CONFIG, GuardConfig
from repro.errors import (
    ContractViolation,
    StateBudgetExceeded,
    VerificationError,
)
from repro.events.reach import EventuallyReach, ReachWithinTime
from repro.execution import sampler
from repro.execution.automaton import ExecutionAutomaton
from repro.execution.measure import EventBounds, event_probability_bounds
from repro.execution.sampler import SampleResult
from repro.probability.space import as_fraction
from repro.statespace import np_backend
from repro.statespace.arrays import FlatTable, UniformSource, flatten_table
from repro.statespace.compile import (
    DEFAULT_STATE_BUDGET,
    IDENTITY_SPEC,
    SpaceSpec,
    compile_space,
)
from repro.statespace.product import AdversaryTable, compile_adversary

#: Engine names accepted by ``--engine``.  ``batched-pure`` is the
#: batched engine with the numpy block filler disabled — the exact path
#: numpy-less machines take, promoted to a first-class name so the
#: defect corpus (and users debugging a numpy divergence) can pin it.
ENGINE_NAMES = ("tree", "compiled", "batched", "batched-pure", "auto")

_ZERO = Fraction(0)
_ONE = Fraction(1)


def resolve_engine_name(engine: str) -> str:
    """Validate an ``--engine`` value, returning it unchanged."""
    if engine not in ENGINE_NAMES:
        raise VerificationError(
            f"unknown engine {engine!r}; expected one of {ENGINE_NAMES}"
        )
    return engine


class Engine(abc.ABC):
    """One bound evaluation strategy for a fixed check.

    An engine is constructed for a specific (automaton, adversaries,
    start states, target) tuple; the three operations below then index
    into those sequences.  Engines ride the fork-inherited task
    contexts of :mod:`repro.parallel.backend`, so pooled workers reuse
    the parent's compiled tables and never recompile.
    """

    #: Short strategy label ("tree" / "compiled").
    name: str = ""

    @abc.abstractmethod
    def sample(
        self,
        adversary_index: int,
        start_index: int,
        rng,
        *,
        want_fragment: bool = False,
    ) -> SampleResult:
        """One Monte-Carlo sample of the pair's reach-within-time event.

        ``want_fragment`` forces a result whose ``final`` fragment is
        populated (the compiled engine otherwise returns ``final=None``
        since it never materialises fragments); callers needing the
        fragment — the execution-closure spot check — set it for that
        sample only, and both engines consume identical randomness
        either way.
        """

    @abc.abstractmethod
    def time_to_target(
        self, adversary_index: int, start_index: int, rng
    ) -> Optional[Fraction]:
        """One sampled elapsed time until the target (None = unreached)."""

    @abc.abstractmethod
    def exact_reach(
        self, adversary_index: int, start_index: int, max_steps: int
    ) -> EventBounds:
        """Exact bounds on the pair's event probability."""


class TreeEngine(Engine):
    """The historical evaluation strategy: walk the live object graph."""

    name = "tree"

    def __init__(
        self,
        automaton: ProbabilisticAutomaton,
        adversaries: Tuple[Tuple[str, object], ...],
        start_states: Tuple[object, ...],
        target: Callable[[object], bool],
        time_of: Callable[[object], Fraction],
        time_bound: object,
        max_steps: int,
        guards: Optional[GuardConfig] = OFF_CONFIG,
    ):
        self.automaton = automaton
        self.adversaries = adversaries
        self.start_states = start_states
        self.target = target
        self.time_of = time_of
        self.time_bound = time_bound
        self.max_steps = max_steps
        self.guards = guards
        # Bound-free checks use plain reachability: ``EventuallyReach``
        # accepts as soon as the target occurs, never rejects on time,
        # and ``decide_maximal`` rejects halted executions — exactly the
        # behaviour the compiled samplers implement when their bound is
        # ``None``.
        self._schema = (
            EventuallyReach(target)
            if time_bound is None
            else ReachWithinTime(
                target=target, time_bound=time_bound, time_of=time_of
            )
        )

    def sample(
        self,
        adversary_index: int,
        start_index: int,
        rng,
        *,
        want_fragment: bool = False,
    ) -> SampleResult:
        _, adversary = self.adversaries[adversary_index]
        fragment = ExecutionFragment.initial(self.start_states[start_index])
        return sampler.sample_event(
            self.automaton,
            adversary,
            fragment,
            self._schema,
            rng,
            self.max_steps,
            guards=self.guards,
        )

    def time_to_target(
        self, adversary_index: int, start_index: int, rng
    ) -> Optional[Fraction]:
        _, adversary = self.adversaries[adversary_index]
        fragment = ExecutionFragment.initial(self.start_states[start_index])
        return sampler.sample_time_until(
            self.automaton,
            adversary,
            fragment,
            self.target,
            self.time_of,
            rng,
            self.max_steps,
            guards=self.guards,
        )

    def exact_reach(
        self, adversary_index: int, start_index: int, max_steps: int
    ) -> EventBounds:
        _, adversary = self.adversaries[adversary_index]
        fragment = ExecutionFragment.initial(self.start_states[start_index])
        execution = ExecutionAutomaton(
            self.automaton, adversary, fragment, guards=self.guards
        )
        return event_probability_bounds(execution, self._schema, max_steps)


class CompiledEngine(Engine):
    """Interned-table evaluation with per-adversary tree fallback."""

    name = "compiled"

    def __init__(
        self,
        tree: TreeEngine,
        tables: Tuple[Optional[AdversaryTable], ...],
        flags: List[bool],
    ):
        self.tree = tree
        self.tables = tables
        self.flags = flags
        self._bound = (
            None
            if tree.time_bound is None
            else as_fraction(tree.time_bound)
        )

    @property
    def compiled_adversaries(self) -> int:
        """How many adversaries were tabulated (rest use the tree)."""
        return sum(1 for table in self.tables if table is not None)

    def sample(
        self,
        adversary_index: int,
        start_index: int,
        rng,
        *,
        want_fragment: bool = False,
    ) -> SampleResult:
        table = self.tables[adversary_index]
        if table is None or want_fragment:
            return self.tree.sample(
                adversary_index, start_index, rng, want_fragment=want_fragment
            )
        return self._sample_table(table, table.start_nodes[start_index], rng)

    def _sample_table(self, table: AdversaryTable, node: int, rng):
        """Mirror of :func:`sample_event` over index tables.

        Same loop structure, same single uniform draw per step resolved
        against identically accumulated partial sums, same metric
        increments — only the data representation differs.  Guard
        checks already ran at compile time and consume nothing here.
        """
        bound = self._bound
        flags = self.flags
        node_state = table.node_state
        choice_targets = table.choice_targets
        choice_cum = table.choice_cum
        choice_deltas = table.choice_deltas
        max_steps = self.tree.max_steps
        obs_on = obs.enabled()
        elapsed = _ZERO
        verdict: Optional[bool] = None
        steps_taken = 0
        for steps_taken in range(max_steps + 1):
            if bound is not None and elapsed > bound:
                verdict = False
                break
            if flags[node_state[node]]:
                verdict = True
                break
            if steps_taken == max_steps:
                break
            targets = choice_targets[node]
            if obs_on:
                obs.incr("adversary.decisions")
                if targets is None:
                    obs.incr("adversary.halts")
            if targets is None:
                # The adversary halted; ReachWithinTime.decide_maximal
                # rejects maximal executions that never hit the target.
                verdict = False
                break
            threshold = rng.random()
            cum = choice_cum[node]
            index = len(cum) - 1
            for position, edge in enumerate(cum):
                if threshold < edge:
                    index = position
                    break
            delta = choice_deltas[node][index]
            if delta:
                elapsed = elapsed + delta
            node = targets[index]
        result = SampleResult(verdict, steps_taken, None)
        if obs_on:
            sampler._record_event_sample(result)
        return result

    def time_to_target(
        self, adversary_index: int, start_index: int, rng
    ) -> Optional[Fraction]:
        table = self.tables[adversary_index]
        if table is None:
            return self.tree.time_to_target(adversary_index, start_index, rng)
        return self._time_table(table, table.start_nodes[start_index], rng)

    def _time_table(self, table: AdversaryTable, node: int, rng):
        """Mirror of :func:`sample_time_until` over index tables."""
        flags = self.flags
        node_state = table.node_state
        choice_targets = table.choice_targets
        choice_cum = table.choice_cum
        choice_deltas = table.choice_deltas
        max_steps = self.tree.max_steps
        obs_on = obs.enabled()
        if flags[node_state[node]]:
            if obs_on:
                sampler._record_time_sample(_ZERO, 0)
            return _ZERO
        elapsed = _ZERO
        reached: Optional[Fraction] = None
        steps_taken = 0
        for _ in range(max_steps):
            targets = choice_targets[node]
            if obs_on:
                obs.incr("adversary.decisions")
                if targets is None:
                    obs.incr("adversary.halts")
            if targets is None:
                break
            threshold = rng.random()
            cum = choice_cum[node]
            index = len(cum) - 1
            for position, edge in enumerate(cum):
                if threshold < edge:
                    index = position
                    break
            delta = choice_deltas[node][index]
            if delta:
                elapsed = elapsed + delta
            node = targets[index]
            steps_taken += 1
            if flags[node_state[node]]:
                reached = elapsed
                break
        if obs_on:
            sampler._record_time_sample(reached, steps_taken)
        return reached

    def exact_reach(
        self, adversary_index: int, start_index: int, max_steps: int
    ) -> EventBounds:
        table = self.tables[adversary_index]
        if table is None:
            return self.tree.exact_reach(adversary_index, start_index, max_steps)
        if max_steps < 0:
            raise VerificationError("max_steps must be nonnegative")
        accepted, undecided = self._exact_table(
            table, table.start_nodes[start_index], max_steps
        )
        if obs.enabled():
            obs.incr("measure.evaluations")
        return EventBounds(lower=accepted, upper=accepted + undecided)

    def _exact_table(
        self, table: AdversaryTable, root: int, max_steps: int
    ) -> Tuple[Fraction, Fraction]:
        """(accepted, undecided) masses, mirroring the exact tree walk.

        Dynamic programming over (node, elapsed, remaining) with exact
        ``Fraction`` arithmetic; rational addition is associative, so
        factoring shared subtrees leaves both masses exactly equal to
        the per-path sums :func:`event_probability_bounds` computes.
        The decision order per node mirrors the tree walk: classify
        (time-reject before target-accept), then adversary halt, then
        horizon.
        """
        bound = self._bound
        flags = self.flags
        node_state = table.node_state
        choice_targets = table.choice_targets
        choice_weights = table.choice_weights
        choice_deltas = table.choice_deltas
        memo = {}
        stack = [(root, _ZERO, max_steps)]
        while stack:
            key = stack[-1]
            if key in memo:
                stack.pop()
                continue
            node, elapsed, remaining = key
            if bound is not None and elapsed > bound:
                memo[key] = (_ZERO, _ZERO)
                stack.pop()
                continue
            if flags[node_state[node]]:
                memo[key] = (_ONE, _ZERO)
                stack.pop()
                continue
            targets = choice_targets[node]
            if targets is None:
                # Maximal execution; decide_maximal rejects.
                memo[key] = (_ZERO, _ZERO)
                stack.pop()
                continue
            if remaining == 0:
                memo[key] = (_ZERO, _ONE)
                stack.pop()
                continue
            deltas = choice_deltas[node]
            children = [
                (targets[i], elapsed + deltas[i], remaining - 1)
                for i in range(len(targets))
            ]
            missing = [child for child in children if child not in memo]
            if missing:
                stack.extend(missing)
                continue
            accepted = _ZERO
            undecided = _ZERO
            for weight, child in zip(choice_weights[node], children):
                child_accepted, child_undecided = memo[child]
                accepted += weight * child_accepted
                undecided += weight * child_undecided
            memo[key] = (accepted, undecided)
            stack.pop()
        return memo[(root, _ZERO, max_steps)]


class BatchedEngine(CompiledEngine):
    """Flat-array evaluation drawing uniforms in blocks.

    The fast path: the per-adversary tables are flattened into the CSR
    parallel arrays of :mod:`repro.statespace.arrays`, uniforms are
    fetched block-at-a-time per sampling stream (one
    :class:`UniformSource` per ``random.Random``, keyed weakly so
    abandoned streams free their buffers), and memoised deterministic
    runs are fast-forwarded in O(1).  Every consumed uniform is exactly
    the float the stepwise engines would have drawn at that point —
    numpy's transplanted twin generator is bit-identical to
    ``rng.random()``, and ``force_pure=True`` pins the pure-python
    filler for reference runs — so verdicts, step counts, and metric
    totals are byte-identical to :class:`CompiledEngine`.

    Sources buffer *ahead* of the underlying python generator, which is
    safe because each stream is private to one (adversary, start) pair
    or one time-measurement task: the harness never draws from the rng
    directly once batched sampling has begun (the one direct use — the
    ``want_fragment`` closure probe — is always a pair's first sample).
    ``exact_reach`` and all fallbacks are inherited unchanged.
    """

    name = "batched"

    def __init__(
        self,
        tree: TreeEngine,
        tables: Tuple[Optional[AdversaryTable], ...],
        flags: List[bool],
        *,
        force_pure: bool = False,
    ):
        super().__init__(tree, tables, flags)
        self.flat_tables: Tuple[Optional[FlatTable], ...] = tuple(
            flatten_table(table, flags) for table in tables
        )
        self.force_pure = force_pure
        self._sources: "weakref.WeakKeyDictionary" = (
            weakref.WeakKeyDictionary()
        )
        self._last_rng = None
        self._last_source: Optional[UniformSource] = None
        # Per-table integer time-bound thresholds (see FlatTable
        # .scale_bound); index-aligned with flat_tables.
        self._ibounds: Tuple[Optional[int], ...] = tuple(
            None if flat is None else flat.scale_bound(self._bound)
            for flat in self.flat_tables
        )

    @property
    def flat_nodes(self) -> int:
        """Total product nodes across all flattened tables."""
        return sum(
            flat.n_nodes for flat in self.flat_tables if flat is not None
        )

    def _source_for(self, rng) -> UniformSource:
        if rng is self._last_rng:
            return self._last_source
        source = self._sources.get(rng)
        if source is None:
            bulk = None if self.force_pure else np_backend.make_bulk(rng)
            source = UniformSource(rng, bulk=bulk)
            self._sources[rng] = source
        self._last_rng = rng
        self._last_source = source
        return source

    def sample(
        self,
        adversary_index: int,
        start_index: int,
        rng,
        *,
        want_fragment: bool = False,
    ) -> SampleResult:
        flat = self.flat_tables[adversary_index]
        if flat is None or want_fragment:
            return super().sample(
                adversary_index, start_index, rng, want_fragment=want_fragment
            )
        return self._sample_flat(
            flat,
            flat.start_nodes[start_index],
            rng,
            self._ibounds[adversary_index],
        )

    def _sample_flat(self, flat: FlatTable, node: int, rng, bound):
        """Mirror of ``_sample_table`` over flat arrays and block draws.

        Identical decision order per step (bound-reject, target-accept,
        horizon, halt, draw); elapsed time is tracked as a scaled
        integer against the pre-scaled ``bound`` threshold (exact, see
        ``FlatTable.scale_bound``).  The chain fast-path advances
        ``run`` steps at once only when ``elapsed + skip_total``
        provably stays within the bound (run deltas are nonnegative, so
        every prefix does too) and the run fits the horizon — otherwise
        it truncates at the horizon (interior nodes are never flagged,
        and prefix elapsed cannot exceed the already-checked total, so
        the stepwise walk's final-iteration checks are provably no-ops)
        or falls back to one stepwise move and re-examines.
        """
        max_steps = self.tree.max_steps
        offsets = flat.offsets
        targets = flat.targets
        cum = flat.cum
        ideltas = flat.ideltas
        node_flag = flat.node_flag
        halt = flat.halt
        skip_steps = flat.skip_steps
        skip_to = flat.skip_to
        skip_total = flat.skip_total
        source = self._source_for(rng)
        data = source.data
        pos = source.pos
        size = len(data)
        obs_on = obs.enabled()
        elapsed = 0
        verdict: Optional[bool] = None
        steps_taken = 0
        decisions = 0
        halts = 0
        while True:
            if bound is not None and elapsed > bound:
                verdict = False
                break
            if node_flag[node]:
                verdict = True
                break
            if steps_taken == max_steps:
                break
            run = skip_steps[node]
            if run:
                total = skip_total[node]
                if bound is None or elapsed + total <= bound:
                    remaining = max_steps - steps_taken
                    take = run if run <= remaining else remaining
                    decisions += take
                    steps_taken += take
                    new_pos = pos + take
                    if new_pos <= size:
                        pos = new_pos
                    else:
                        source.pos = size
                        source.skip(new_pos - size)
                        data = source.data
                        pos = source.pos
                        size = len(data)
                    if run > remaining:
                        # Horizon hit mid-run at an interior (unflagged)
                        # node with prefix elapsed within the bound.
                        break
                    elapsed += total
                    node = skip_to[node]
                    continue
            decisions += 1
            if halt[node]:
                halts += 1
                verdict = False
                break
            if pos == size:
                data = source.refill()
                pos = 0
                size = len(data)
            threshold = data[pos]
            pos += 1
            lo = offsets[node]
            index = offsets[node + 1] - 1
            while lo < index:
                if threshold < cum[lo]:
                    index = lo
                    break
                lo += 1
            elapsed += ideltas[index]
            node = targets[index]
            steps_taken += 1
        source.pos = pos
        result = SampleResult(verdict, steps_taken, None)
        if obs_on:
            if decisions:
                obs.incr("adversary.decisions", decisions)
            if halts:
                obs.incr("adversary.halts", halts)
            sampler._record_event_sample(result)
        return result

    def time_to_target(
        self, adversary_index: int, start_index: int, rng
    ) -> Optional[Fraction]:
        flat = self.flat_tables[adversary_index]
        if flat is None:
            return self.tree.time_to_target(adversary_index, start_index, rng)
        return self._time_flat(flat, flat.start_nodes[start_index], rng)

    def _time_flat(self, flat: FlatTable, node: int, rng):
        """Mirror of ``_time_table`` over flat arrays and block draws.

        Elapsed time accumulates as a scaled integer and is converted
        back to the identical ``Fraction`` on return (``Fraction(e, d)``
        normalises exactly like the stepwise sum).
        """
        max_steps = self.tree.max_steps
        offsets = flat.offsets
        targets = flat.targets
        cum = flat.cum
        ideltas = flat.ideltas
        node_flag = flat.node_flag
        halt = flat.halt
        skip_steps = flat.skip_steps
        skip_to = flat.skip_to
        skip_total = flat.skip_total
        obs_on = obs.enabled()
        if node_flag[node]:
            if obs_on:
                sampler._record_time_sample(_ZERO, 0)
            return _ZERO
        source = self._source_for(rng)
        data = source.data
        pos = source.pos
        size = len(data)
        elapsed = 0
        reached: Optional[int] = None
        steps_taken = 0
        decisions = 0
        halts = 0
        while steps_taken < max_steps:
            run = skip_steps[node]
            if run:
                remaining = max_steps - steps_taken
                take = run if run <= remaining else remaining
                decisions += take
                steps_taken += take
                new_pos = pos + take
                if new_pos <= size:
                    pos = new_pos
                else:
                    source.pos = size
                    source.skip(new_pos - size)
                    data = source.data
                    pos = source.pos
                    size = len(data)
                if run > remaining:
                    # Horizon hit mid-run; interior nodes never flag.
                    break
                elapsed += skip_total[node]
                node = skip_to[node]
                if node_flag[node]:
                    reached = elapsed
                    break
                continue
            decisions += 1
            if halt[node]:
                halts += 1
                break
            if pos == size:
                data = source.refill()
                pos = 0
                size = len(data)
            threshold = data[pos]
            pos += 1
            lo = offsets[node]
            index = offsets[node + 1] - 1
            while lo < index:
                if threshold < cum[lo]:
                    index = lo
                    break
                lo += 1
            elapsed += ideltas[index]
            node = targets[index]
            steps_taken += 1
            if node_flag[node]:
                reached = elapsed
                break
        source.pos = pos
        result = (
            None
            if reached is None
            else Fraction(reached, flat.denominator)
        )
        if obs_on:
            if decisions:
                obs.incr("adversary.decisions", decisions)
            if halts:
                obs.incr("adversary.halts", halts)
            sampler._record_time_sample(result, steps_taken)
        return result


def build_engine(
    automaton: ProbabilisticAutomaton,
    adversaries: Sequence[Tuple[str, object]],
    start_states: Sequence[object],
    target: Callable[[object], bool],
    time_of: Callable[[object], Fraction],
    time_bound: object,
    max_steps: int,
    *,
    engine: str = "tree",
    spec: Optional[SpaceSpec] = None,
    state_budget: Optional[int] = None,
    guards: Optional[GuardConfig] = OFF_CONFIG,
) -> Engine:
    """Build the engine requested by ``--engine`` for one check.

    Selection rules:

    * ``tree`` — always the tree walk.
    * ``compiled`` — compile or die: a blown state budget propagates as
      :class:`StateBudgetExceeded`; ``--fuel`` is refused (fuel
      accounting is inherently per-fragment).
    * ``batched`` — compile or die exactly like ``compiled``, then walk
      the flattened arrays; the numpy block filler is auto-detected per
      sampling stream, with the pure-python filler as the always-present
      fallback.
    * ``batched-pure`` — the batched engine with the numpy block filler
      forced off; byte-identical to ``batched`` by construction and
      selectable explicitly so the pure path is testable on machines
      where numpy is installed.
    * ``auto`` — prefer the batched engine when everything fits the
      budget and guards permit, else silently use the tree walk.

    A strict-mode :class:`ContractViolation` raised *during compile*
    (including a quotient-invariance violation from the target-flag
    spot check) always falls back to the tree walk, which re-detects
    the identical violation per pair and quarantines it exactly as it
    always has — keeping strict-mode reports byte-identical across
    engines even on broken models.
    """
    resolve_engine_name(engine)
    # ``guards=None`` keeps the historical checked_choose validation on
    # the exact tree path; for engine selection it behaves like OFF.
    config = guards if guards is not None else OFF_CONFIG
    tree = TreeEngine(
        automaton=automaton,
        adversaries=tuple(adversaries),
        start_states=tuple(start_states),
        target=target,
        time_of=time_of,
        time_bound=time_bound,
        max_steps=max_steps,
        guards=guards,
    )
    if engine == "tree":
        return tree
    if config.fuelled:
        if engine in ("compiled", "batched", "batched-pure"):
            raise VerificationError(
                f"--engine {engine} is incompatible with --fuel: fuel is "
                "accounted per execution fragment, which compiled "
                "sampling never materialises; use --engine tree"
            )
        return tree
    budget = DEFAULT_STATE_BUDGET if state_budget is None else state_budget
    try:
        with obs.span(
            "statespace.compile",
            engine=engine,
            budget=budget,
            adversaries=len(tree.adversaries),
        ):
            space = compile_space(
                automaton,
                tree.start_states,
                spec if spec is not None else IDENTITY_SPEC,
                max_states=budget,
                guards=guards,
            )
            tables = tuple(
                compile_adversary(
                    space, adversary, tree.start_states, max_nodes=budget
                )
                for _, adversary in tree.adversaries
            )
            # Inside the try: the quotient-invariance spot check may
            # raise in strict mode, and the tree fallback below must
            # cover it like any other compile-time violation.
            flags = space.flags(target, guards)
    except StateBudgetExceeded:
        if engine in ("compiled", "batched", "batched-pure"):
            raise
        return tree
    except ContractViolation:
        return tree
    if engine == "compiled":
        compiled: CompiledEngine = CompiledEngine(tree, tables, flags)
    else:
        compiled = BatchedEngine(
            tree, tables, flags, force_pure=(engine == "batched-pure")
        )
    if obs.enabled():
        obs.gauge("statespace.compiled_adversaries", compiled.compiled_adversaries)
        if isinstance(compiled, BatchedEngine):
            obs.gauge("statespace.flat_nodes", compiled.flat_nodes)
    return compiled
