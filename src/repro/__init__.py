"""repro: probabilistic automata and the Lynch-Saias-Segala proof method.

A reproduction of *Proving Time Bounds for Randomized Distributed
Algorithms* (Lynch, Saias, Segala; PODC 1994): the simple probabilistic
automaton model, adversaries and adversary schemas, execution automata
and their cone measure, event schemas with the Section 4 independence
rules, arrow statements ``U --t-->_p U'`` with the Proposition 3.2 and
Theorem 3.4 proof rules, and the Lehmann-Rabin Dining Philosophers case
study with its ``T --13-->_{1/8} C`` bound and expected-time bound 63.

Quickstart::

    from repro.algorithms import lehmann_rabin as lr

    chain = lr.lehmann_rabin_proof()
    print(chain.final_statement)          # T --13-->_1/8 C  [Unit-Time]
    print(lr.expected_time_bound())       # 63
"""

from repro.automaton import (
    ActionSignature,
    ExecutionFragment,
    ExplicitAutomaton,
    FunctionalAutomaton,
    ProbabilisticAutomaton,
    TIME_PASSAGE,
    Transition,
)
from repro.probability import FiniteDistribution, ProbabilitySpace
from repro.proofs import ArrowStatement, ProofLedger, StateClass

__version__ = "1.0.0"

__all__ = [
    "ActionSignature",
    "ArrowStatement",
    "ExecutionFragment",
    "ExplicitAutomaton",
    "FiniteDistribution",
    "FunctionalAutomaton",
    "ProbabilisticAutomaton",
    "ProbabilitySpace",
    "ProofLedger",
    "StateClass",
    "TIME_PASSAGE",
    "Transition",
    "__version__",
]
