"""Deterministic seed derivation for parallel Monte-Carlo sampling.

Parallel correctness rests on one invariant: every unit of sampling
work owns an RNG stream that is a pure function of the *root seed and
the work's identity*, never of scheduling order, worker count, or how
much other work exists.  :func:`derive_seed` provides that function: a
stable SHA-256 hash of the root seed and a tuple of identity parts
(adversary name, start-state repr, occurrence index, ...), truncated
to 64 bits.

Python's builtin ``hash`` is unsuitable (randomised per process for
strings); ``random.Random(seed).getrandbits`` chains are unsuitable
(inserting one child perturbs all later ones).  A cryptographic hash of
the identity gives independent, collision-resistant streams that stay
fixed when unrelated work is added or removed — the property the
determinism suite in ``tests/test_parallel.py`` pins down.
"""

from __future__ import annotations

import hashlib
import random

_SEPARATOR = b"\x1f"  # ASCII unit separator: cannot appear in str(int)


def derive_seed(root: int, *parts: object) -> int:
    """A 64-bit seed derived from ``root`` and an identity tuple.

    ``parts`` are rendered with ``str`` and joined with an unambiguous
    separator, so ``("ab", "c")`` and ``("a", "bc")`` derive different
    seeds.  The same inputs always derive the same seed, on every
    platform and in every process.
    """
    digest = hashlib.sha256()
    digest.update(str(int(root)).encode("utf-8"))
    for part in parts:
        digest.update(_SEPARATOR)
        digest.update(str(part).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


def derive_rng(root: int, *parts: object) -> random.Random:
    """A fresh ``random.Random`` seeded by :func:`derive_seed`."""
    return random.Random(derive_seed(root, *parts))


def rng_from_seed(seed: int) -> random.Random:
    """A fresh ``random.Random`` over an already-derived seed.

    The lint gate forbids constructing ``random.Random`` anywhere else
    under ``src/``, funnelling every RNG through this module so the
    cross-engine equivalence suite can rely on one seeding discipline.
    The stream is identical to ``random.Random(seed)``.
    """
    return random.Random(seed)
