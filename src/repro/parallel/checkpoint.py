"""Crash-safe JSONL checkpoints for long verification runs.

A long Monte-Carlo run is a bag of independent tasks, each a pure
function of its derived seed (:mod:`repro.parallel.seeds`).  That
purity makes checkpointing trivial to get *right*: persisting a task's
plain-data outcome keyed by its seed is enough to skip it on resume,
and the resumed report is bit-identical to an uninterrupted run because
the outcome would have been recomputed identically anyway.

Format — one JSON object per line, appended as tasks complete::

    {"result": {...}, "scope": "<run fingerprint>", "seed": 1234}

* ``seed``   — the task's 64-bit derived seed, its identity;
* ``scope``  — a fingerprint of everything else the outcome depends on
  (statement, sample budget, step cap, confidence, early-stop config).
  Two tasks may share a seed across *different* statements (the seed
  hashes the pair identity, not the target), so results are only
  reused within a matching scope; one checkpoint file can therefore
  serve a whole multi-statement ``verify`` run.
* ``result`` — the encoded outcome (see the codecs in
  :mod:`repro.parallel.backend`).

Each record is written in a single ``write`` of one ``\\n``-terminated
line and flushed, so a record is either fully present or entirely
absent.  A process killed mid-append leaves at most one truncated final
line; :meth:`Checkpoint.load` drops undecodable lines (counting them in
``dropped``) instead of failing, so a crash never poisons the work
already saved.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Tuple

from repro import durable_io, obs
from repro.errors import CheckpointError

_RecordKey = Tuple[str, int]


class Checkpoint:
    """An append-only JSONL store of completed task results.

    One instance serves a whole run: experiment runners append every
    completed task through it, and ``--resume`` loads it once up front.
    Opening is lazy — a checkpoint that is never appended to and never
    loaded touches the filesystem not at all.
    """

    def __init__(self, path: str):
        self.path = str(path)
        self.dropped = 0
        self._records: Dict[_RecordKey, dict] = {}
        self._loaded = False
        self._appender: Optional[durable_io.DurableAppender] = None

    def load(self) -> "Checkpoint":
        """Read every intact record from disk (idempotent).

        Undecodable or malformed lines — the truncated tail of a killed
        run — are dropped and counted in ``dropped``, never fatal.  A
        missing file is an empty checkpoint.  Unreadable files raise
        :class:`~repro.errors.CheckpointError`.
        """
        if self._loaded:
            return self
        self._loaded = True
        if not os.path.exists(self.path):
            return self
        try:
            records, undecodable = durable_io.load_jsonl(
                self.path, tolerate="all"
            )
        except OSError as error:
            raise CheckpointError(
                f"cannot read checkpoint {self.path}: {error}"
            ) from error
        self.dropped += undecodable
        for _lineno, record in records:
            if not self._well_formed(record):
                self.dropped += 1
                continue
            self._records[(record["scope"], int(record["seed"]))] = (
                record["result"]
            )
        if self.dropped:
            obs.incr("checkpoint.records_dropped", self.dropped)
        return self

    @staticmethod
    def _well_formed(record: object) -> bool:
        return (
            isinstance(record, dict)
            and isinstance(record.get("scope"), str)
            and isinstance(record.get("seed"), int)
            and isinstance(record.get("result"), dict)
        )

    def __len__(self) -> int:
        self.load()
        return len(self._records)

    def completed(self, scope: str) -> Dict[int, dict]:
        """Stored results for one scope, keyed by task seed."""
        self.load()
        return {
            seed: result
            for (record_scope, seed), result in self._records.items()
            if record_scope == scope
        }

    def append(self, scope: str, seed: int, result: dict) -> None:
        """Persist one completed task's encoded result.

        The record is serialised to a single line and appended through
        :class:`repro.durable_io.DurableAppender` (one write, flushed
        and fsynced) — an interruption between appends never leaves a
        partial record, and one mid-append truncates only the final
        line (which :meth:`load` tolerates).
        """
        line = json.dumps(
            {"scope": scope, "seed": int(seed), "result": result},
            sort_keys=True,
        )
        try:
            if self._appender is None:
                self._appender = durable_io.DurableAppender(self.path)
            self._appender.append_line(line)
        except (OSError, ValueError) as error:
            raise CheckpointError(
                f"cannot append to checkpoint {self.path}: {error}"
            ) from error
        self._records[(scope, int(seed))] = result
        obs.incr("checkpoint.tasks_recorded")

    def close(self) -> None:
        """Close the append handle (reopened lazily if appended again)."""
        if self._appender is not None:
            self._appender.close()
            self._appender = None

    def __enter__(self) -> "Checkpoint":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
