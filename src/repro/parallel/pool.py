"""A fork-based worker pool for deterministic sampling tasks.

The heavy objects a task needs — automata, adversary families, state
predicates — are closures and are not picklable.  On platforms with the
``fork`` start method (Linux, the only place parallelism matters here)
they do not need to be: the pool stashes an execution context in a
module global *before* forking, and every worker inherits it through
the copied address space.  Only the small task descriptors (index +
derived seed) and the plain-data results cross the process boundary.

Determinism does not depend on scheduling: ``run_tasks`` returns
results in task order (``Pool.map`` preserves it), and each task's RNG
stream is a pure function of its derived seed
(:mod:`repro.parallel.seeds`), so ``workers=1`` and ``workers=N``
produce identical results.  Where ``fork`` is unavailable the pool
degrades to sequential execution — same results, no speedup.

When the parent has a recording registry installed, each worker records
into a fresh registry of its own and returns a metrics snapshot; the
parent merges snapshots in task order (:mod:`repro.parallel.merge`), so
``repro stats`` counts every sample exactly once.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro import obs
from repro.errors import VerificationError
from repro.parallel.merge import (
    MetricsSnapshot,
    merge_metrics_snapshot,
    metrics_snapshot,
)

Task = TypeVar("Task")
Result = TypeVar("Result")

# (execute, context, capture_obs) — set in the parent immediately before
# forking, inherited by every worker, cleared when the pool is done.
_WORKER_STATE: Optional[Tuple[Callable, object, bool]] = None


def available_cpus() -> int:
    """The CPUs usable for worker processes (at least 1)."""
    return os.cpu_count() or 1


def fork_available() -> bool:
    """True when the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_workers(workers: Optional[int]) -> int:
    """Validate and normalise a worker count.

    ``None`` means one worker per available CPU.  On platforms without
    ``fork`` every count collapses to 1: sampling results are identical
    by construction, only the speedup is lost.
    """
    if workers is None:
        workers = available_cpus()
    if workers < 1:
        raise VerificationError(f"workers must be >= 1, got {workers}")
    if workers > 1 and not fork_available():
        return 1
    return workers


def _worker_invoke(task):
    """Run one task inside a worker process.

    Installs a fresh recording registry when the parent asked for
    metrics capture, so the worker's copy of the parent registry
    (inherited via fork) never accumulates counts that would be lost.
    """
    execute, context, capture = _WORKER_STATE
    if capture:
        with obs.recording() as registry:
            result = execute(context, task)
        return result, metrics_snapshot(registry.metrics)
    return execute(context, task), None


def run_tasks(
    execute: Callable[[object, Task], Result],
    context: object,
    tasks: Sequence[Task],
    workers: int = 1,
) -> List[Result]:
    """Execute every task and return results in task order.

    ``execute(context, task)`` must depend only on its arguments (plus
    read-only globals) and return picklable plain data.  With one
    worker — or one task — everything runs inline in the parent, where
    metrics flow into the active registry directly; with more, tasks
    fan out over a forked pool and worker metrics are merged back in
    task order.
    """
    global _WORKER_STATE
    workers = resolve_workers(workers)
    tasks = list(tasks)
    if workers <= 1 or len(tasks) <= 1:
        return [execute(context, task) for task in tasks]
    mp_context = multiprocessing.get_context("fork")
    _WORKER_STATE = (execute, context, obs.enabled())
    try:
        with mp_context.Pool(processes=min(workers, len(tasks))) as pool:
            paired: List[Tuple[Result, Optional[MetricsSnapshot]]] = (
                pool.map(_worker_invoke, tasks)
            )
    finally:
        _WORKER_STATE = None
    results: List[Result] = []
    metrics = obs.get_registry().metrics if obs.enabled() else None
    for result, snapshot in paired:
        if snapshot is not None and metrics is not None:
            merge_metrics_snapshot(metrics, snapshot)
        results.append(result)
    return results
