"""A fault-tolerant fork-based worker pool for deterministic sampling.

The heavy objects a task needs — automata, adversary families, state
predicates — are closures and are not picklable.  On platforms with the
``fork`` start method (Linux, the only place parallelism matters here)
they do not need to be: the pool stashes an execution context in a
module global *before* forking, and every worker inherits it through
the copied address space.  Only the small task descriptors (index +
derived seed) and the plain-data results cross the process boundary.

Unlike a bare ``Pool.map``, :func:`run_tasks` survives a hostile
runtime.  Each task runs in its own forked worker wired to the parent
by a pipe, and the parent's submission loop

* detects **crashed workers** (process death with no result on the
  pipe) and retries the task on a fresh fork, with exponential backoff,
  up to ``RunPolicy.retries`` times;
* enforces a per-task **wall-clock timeout**, terminating hung workers
  and retrying the same way;
* verifies every result against a SHA-256 **integrity digest** computed
  in the worker, rejecting and retrying corrupted payloads;
* **degrades to inline serial execution** when worker losses pile up —
  the pool is clearly not viable, and every task is a pure function of
  its seed, so running it in the parent gives the identical result;
* **checkpoints** each completed result (``RunPolicy.checkpoint``) and
  skips already-completed tasks on resume.

None of this perturbs results: a task's RNG stream is a pure function
of its derived seed (:mod:`repro.parallel.seeds`), so a retried,
resumed, or degraded run is bit-identical to an undisturbed
``workers=1`` run.  Failure exhausting the retry budget raises the
taxonomy in :mod:`repro.errors` (:class:`~repro.errors.WorkerCrashError`,
:class:`~repro.errors.TaskTimeoutError`, ...) — after merging the
metrics of every task that did complete, so no completed work is
silently dropped from ``repro stats``.

When the parent has a recording registry installed, each worker records
into a fresh registry of its own and returns a snapshot of its metrics
and spans; the parent merges the winning attempt's snapshot per task,
in task order (:mod:`repro.parallel.merge`), so ``repro stats`` counts
every sample exactly once and ``repro profile`` sees worker spans with
task/attempt attribution.  When a progress reporter is installed
(``--progress``), the submission loop feeds it task completions,
retries, and degradation events through :mod:`repro.obs.progress`.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import signal
import sys
import threading
import time
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro import obs
from repro.obs import progress
from repro.errors import (
    CheckpointError,
    ResultCorruptionError,
    TaskExecutionError,
    TaskTimeoutError,
    VerificationError,
    WorkerCrashError,
)
from repro.parallel.checkpoint import Checkpoint
from repro.parallel.faults import CORRUPT, CRASH, HANG, FaultPlan
from repro.parallel.merge import (
    WorkerSnapshot,
    merge_worker_snapshot,
    worker_snapshot,
)

Task = TypeVar("Task")
Result = TypeVar("Result")

# (execute, context, capture_obs) — set in the parent immediately before
# forking, inherited by every worker, cleared when the pool is done.
_WORKER_STATE: Optional[Tuple[Callable, object, bool]] = None

# Exit status of an injected worker crash; any nonzero status (a real
# segfault, the OOM killer) takes the same recovery path.
_CRASH_EXIT_CODE = 73

# An injected hang sleeps this long; the parent's timeout reclaims the
# worker far earlier (RunPolicy.validate requires a timeout with hangs).
_HANG_SECONDS = 3600.0

# How long the parent blocks waiting for worker pipes per loop turn;
# bounds how stale deadline checks can get.
_POLL_SECONDS = 0.02

# Seam for connection.wait, patchable in interruption tests.
_wait_ready = mp_connection.wait

_degraded_warned = False


def available_cpus() -> int:
    """The CPUs usable for worker processes (at least 1)."""
    return os.cpu_count() or 1


def fork_available() -> bool:
    """True when the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def _warn_degraded(message: str) -> None:
    """Warn (once per process) that parallelism was lost, and gauge it."""
    global _degraded_warned
    obs.gauge("pool.degraded", 1)
    if not _degraded_warned:
        _degraded_warned = True
        print(f"repro: warning: {message}", file=sys.stderr)


def resolve_workers(workers: Optional[int]) -> int:
    """Validate and normalise a worker count.

    ``None`` means one worker per available CPU.  On platforms without
    ``fork`` every count collapses to 1: sampling results are identical
    by construction, only the speedup is lost — the collapse is
    surfaced through a one-time warning and the ``pool.degraded``
    gauge rather than silently.
    """
    if workers is None:
        workers = available_cpus()
    if workers < 1:
        raise VerificationError(f"workers must be >= 1, got {workers}")
    if workers > 1 and not fork_available():
        _warn_degraded(
            f"the 'fork' start method is unavailable on this platform; "
            f"workers={workers} degraded to sequential execution "
            f"(results are identical, only the speedup is lost)"
        )
        return 1
    return workers


@dataclass(frozen=True)
class RunPolicy:
    """Fault-tolerance configuration for one :func:`run_tasks` call.

    The default policy reproduces the pre-hardening behaviour: no
    timeout, no retries, no checkpoint, no injected faults — any
    worker loss is fatal on first occurrence.
    """

    timeout: Optional[float] = None
    retries: int = 0
    backoff: float = 0.05
    faults: Optional[FaultPlan] = None
    checkpoint: Optional[Checkpoint] = None
    resume: bool = False
    degrade_after: Optional[int] = None

    def validate(self) -> None:
        """Reject self-contradictory configurations up front."""
        if self.timeout is not None and self.timeout <= 0:
            raise VerificationError(
                f"timeout must be positive, got {self.timeout}"
            )
        if self.retries < 0:
            raise VerificationError(
                f"retries must be >= 0, got {self.retries}"
            )
        if self.backoff < 0:
            raise VerificationError(
                f"backoff must be >= 0, got {self.backoff}"
            )
        if self.resume and self.checkpoint is None:
            raise VerificationError(
                "resume=True requires a checkpoint to resume from"
            )
        if (
            self.faults is not None
            and self.faults.hang > 0
            and self.timeout is None
        ):
            raise VerificationError(
                "hang injection requires a per-task timeout "
                "(the parent must be able to reclaim hung workers)"
            )
        if self.degrade_after is not None and self.degrade_after < 1:
            raise VerificationError(
                f"degrade_after must be >= 1, got {self.degrade_after}"
            )

    def degrade_threshold(self, workers: int) -> int:
        """Worker losses tolerated before abandoning the pool."""
        if self.degrade_after is not None:
            return self.degrade_after
        return max(4, 2 * workers)


DEFAULT_POLICY = RunPolicy()


def _payload_digest(payload: object) -> str:
    """An integrity digest of a worker's result payload.

    Computed over ``repr`` in the worker and recomputed by the parent
    on the unpickled payload: the payloads are plain data (dataclasses
    of ints/Fractions, snapshot dicts) whose reprs round-trip through
    pickle unchanged, so any mismatch means the bytes were mangled in
    transit.
    """
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


def _describe_error(error: BaseException) -> str:
    return f"{type(error).__name__}: {error}"


def _child_main(conn, task, fault: Optional[str]) -> None:
    """Run one task inside a freshly forked worker and ship the result.

    Installs a fresh recording registry when the parent asked for
    metrics capture, so the worker's copy of the parent registry
    (inherited via fork) never accumulates counts that would be lost.
    Task exceptions are reported over the pipe (they are deterministic
    — the parent must not retry them); injected faults enact the
    requested failure mode instead.
    """
    if fault == CRASH:
        os._exit(_CRASH_EXIT_CODE)
    if fault == HANG:
        time.sleep(_HANG_SECONDS)
        os._exit(_CRASH_EXIT_CODE)
    execute, context, capture = _WORKER_STATE
    try:
        if capture:
            with obs.recording() as registry:
                result = execute(context, task)
            snapshot = worker_snapshot(registry)
        else:
            result = execute(context, task)
            snapshot = None
    except BaseException as error:
        conn.send(("error", _describe_error(error)))
        conn.close()
        return
    payload = (result, snapshot)
    digest = _payload_digest(payload)
    if fault == CORRUPT:
        payload = ("\x00corrupted-payload", None)
    conn.send(("ok", payload, digest))
    conn.close()


@dataclass
class _Running:
    """One live worker process and the task attempt it carries."""

    position: int
    attempt: int
    process: object
    conn: object
    deadline: Optional[float]


class _PooledRun:
    """State machine for one fault-tolerant pooled execution."""

    def __init__(
        self, tasks, positions, workers, policy, mp_context,
        on_result=None,
    ):
        self.tasks = tasks
        self.workers = workers
        self.policy = policy
        self.mp_context = mp_context
        # Called with (position, result) the moment a result is
        # accepted — checkpointing hooks in here so a run killed midway
        # has already persisted everything it completed.
        self.on_result = on_result
        # (position, attempt, eligible_at) triples awaiting a worker.
        self.pending: List[Tuple[int, int, float]] = [
            (position, 1, 0.0) for position in positions
        ]
        self.running: Dict[int, _Running] = {}
        self.results: Dict[int, object] = {}
        self.snapshots: Dict[int, Optional[WorkerSnapshot]] = {}
        # Which attempt delivered each accepted snapshot, for span
        # attribution on retried tasks.
        self.attempts: Dict[int, int] = {}
        self.losses = 0
        self.degraded = False

    # -- lifecycle -----------------------------------------------------

    def spawn_eligible(self) -> None:
        now = time.monotonic()
        while len(self.running) < self.workers:
            slot = next(
                (
                    i for i, (_, _, eligible) in enumerate(self.pending)
                    if eligible <= now
                ),
                None,
            )
            if slot is None:
                return
            position, attempt, _ = self.pending.pop(slot)
            self.spawn(position, attempt)

    def spawn(self, position: int, attempt: int) -> None:
        task = self.tasks[position]
        fault = None
        if self.policy.faults is not None:
            fault = self.policy.faults.decide(
                getattr(task, "seed", position), attempt
            )
        parent_conn, child_conn = self.mp_context.Pipe(duplex=False)
        process = self.mp_context.Process(
            target=_child_main, args=(child_conn, task, fault), daemon=True
        )
        process.start()
        child_conn.close()
        deadline = (
            time.monotonic() + self.policy.timeout
            if self.policy.timeout is not None
            else None
        )
        self.running[position] = _Running(
            position=position, attempt=attempt, process=process,
            conn=parent_conn, deadline=deadline,
        )

    def reap(self, run: _Running) -> None:
        """Terminate and fully reclaim one worker process."""
        if run.process.is_alive():
            run.process.terminate()
        run.process.join()
        run.conn.close()
        self.running.pop(run.position, None)

    def shutdown(self) -> None:
        """Reclaim every live worker (interruption-safe teardown)."""
        for run in list(self.running.values()):
            self.reap(run)

    # -- event handling ------------------------------------------------

    def deliver(self, run: _Running, message) -> None:
        if message[0] == "error":
            self.fail_run(
                TaskExecutionError(
                    f"task {run.position} raised in its worker: "
                    f"{message[1]}"
                )
            )
        _, payload, digest = message
        if _payload_digest(payload) != digest:
            obs.incr("pool.corrupted")
            self.reap(run)
            self.handle_loss(
                run,
                ResultCorruptionError(
                    f"task {run.position} returned a corrupted result "
                    f"(integrity digest mismatch)"
                ),
            )
            return
        self.reap(run)
        result, snapshot = payload
        self.results[run.position] = result
        self.snapshots[run.position] = snapshot
        self.attempts[run.position] = run.attempt
        progress.task_done(result)
        if self.on_result is not None:
            self.on_result(run.position, result)

    def fail_run(self, error: Exception) -> None:
        """Abort: merge completed work, tear down, raise the taxonomy."""
        self.shutdown()
        self.merge_snapshots()
        raise error

    def handle_loss(self, run: _Running, error: Exception) -> None:
        """One worker loss: retry with backoff, degrade, or abort."""
        self.losses += 1
        if run.attempt > self.policy.retries:
            self.fail_run(error)
        obs.incr("pool.retries")
        progress.task_retried()
        if self.losses >= self.policy.degrade_threshold(self.workers):
            self.degrade()
            self.pending.append((run.position, run.attempt + 1, 0.0))
            return
        eligible = (
            time.monotonic()
            + self.policy.backoff * (2 ** (run.attempt - 1))
        )
        self.pending.append((run.position, run.attempt + 1, eligible))

    def degrade(self) -> None:
        """Abandon the pool: remaining tasks will run in the parent."""
        self.degraded = True
        progress.pool_degraded()
        _warn_degraded(
            f"worker pool lost {self.losses} workers; degrading to "
            f"inline serial execution for the remaining tasks "
            f"(results are unaffected)"
        )
        for run in list(self.running.values()):
            self.reap(run)
            self.pending.append((run.position, run.attempt + 1, 0.0))

    def check_timeouts(self) -> None:
        now = time.monotonic()
        for run in list(self.running.values()):
            if run.deadline is not None and now >= run.deadline:
                obs.incr("pool.timeouts")
                self.reap(run)
                self.handle_loss(
                    run,
                    TaskTimeoutError(
                        f"task {run.position} exceeded its "
                        f"{self.policy.timeout}s wall-clock timeout "
                        f"(attempt {run.attempt})"
                    ),
                )

    def crash(self, run: _Running) -> None:
        """One worker died without delivering a result."""
        obs.incr("pool.crashes")
        self.reap(run)  # joins, so the exit status is final
        exitcode = run.process.exitcode
        self.handle_loss(
            run,
            WorkerCrashError(
                f"worker for task {run.position} died with exit "
                f"status {exitcode} before delivering a result "
                f"(attempt {run.attempt})"
            ),
        )

    def merge_snapshots(self) -> None:
        """Merge completed workers' recordings, in task order, exactly once.

        Only snapshots delivered by a *winning* attempt are present (a
        lost attempt never delivers one), so a retried task contributes
        its metrics exactly once; its spans carry the attempt number
        that actually produced them.
        """
        if not obs.enabled():
            self.snapshots.clear()
            return
        registry = obs.get_registry()
        for position in sorted(self.snapshots):
            snapshot = self.snapshots[position]
            if snapshot is not None:
                merge_worker_snapshot(
                    registry,
                    snapshot,
                    task=position,
                    attempt=self.attempts.get(position),
                )
        self.snapshots.clear()

    # -- main loop -----------------------------------------------------

    def execute_degraded(self, execute, context) -> None:
        for position, _, _ in self.pending:
            if position in self.results:
                # A stale retry entry for a task that already delivered
                # (e.g. re-queued by a loss raced with its delivery) —
                # running it again would double-count its metrics.
                continue
            result = execute(context, self.tasks[position])
            self.results[position] = result
            progress.task_done(result)
            if self.on_result is not None:
                self.on_result(position, result)
        self.pending.clear()

    def run(self, execute, context) -> Dict[int, object]:
        while self.pending or self.running:
            if self.degraded:
                self.execute_degraded(execute, context)
                break
            self.spawn_eligible()
            conns = {run.conn: run for run in self.running.values()}
            ready = (
                _wait_ready(list(conns), timeout=_POLL_SECONDS)
                if conns else ()
            )
            for conn in ready:
                run = conns[conn]
                if self.running.get(run.position) is not run:
                    # The run was reaped while draining this batch (a
                    # mid-batch degrade or timeout): its pipe is closed
                    # and its task already re-queued.  Treating the
                    # dead conn as a crash would queue the task a
                    # second time and double-count its metrics.
                    continue
                try:
                    message = run.conn.recv()
                except (EOFError, OSError):
                    # EOF with no message: the worker died before (or
                    # while) sending — a crash, injected or real.
                    self.crash(run)
                    continue
                self.deliver(run, message)
            self.check_timeouts()
            if not ready and not self.running and self.pending:
                # Nothing live and nothing delivered: we are waiting
                # out a retry backoff.
                time.sleep(_POLL_SECONDS)
        self.merge_snapshots()
        return self.results


def _checkpoint_result(
    policy: RunPolicy,
    scope: str,
    task: object,
    result: object,
    encode: Optional[Callable],
) -> None:
    if policy.checkpoint is None:
        return
    seed = getattr(task, "seed", None)
    if seed is None:
        raise CheckpointError(
            f"task {task!r} has no seed attribute to key its "
            f"checkpoint record by"
        )
    policy.checkpoint.append(scope, seed, encode(result))


def _sigterm_to_exception():
    """Route SIGTERM through SystemExit so ``finally`` cleanup runs.

    Only installed when this is the main thread and no one else claimed
    the signal; returns the previous handler to restore (or ``None``
    when nothing was installed).
    """
    if threading.current_thread() is not threading.main_thread():
        return None
    if signal.getsignal(signal.SIGTERM) is not signal.SIG_DFL:
        return None

    def raise_exit(signum, frame):
        raise SystemExit(128 + signum)

    signal.signal(signal.SIGTERM, raise_exit)
    return signal.SIG_DFL


def run_tasks(
    execute: Callable[[object, Task], Result],
    context: object,
    tasks: Sequence[Task],
    workers: int = 1,
    *,
    policy: Optional[RunPolicy] = None,
    scope: str = "",
    encode: Optional[Callable[[Result], dict]] = None,
    decode: Optional[Callable[[dict, Task], Result]] = None,
) -> List[Result]:
    """Execute every task and return results in task order.

    ``execute(context, task)`` must depend only on its arguments (plus
    read-only globals) and return picklable plain data.  With one
    worker — or one task — everything runs inline in the parent, where
    metrics flow into the active registry directly; with more, tasks
    fan out over forked workers under the fault-tolerant submission
    loop, and worker metrics are merged back in task order.

    ``policy`` configures timeouts, retries, fault injection, and
    checkpointing; ``scope`` fingerprints everything a checkpointed
    result depends on besides the task seed; ``encode``/``decode``
    translate results to and from checkpoint JSON (required when the
    policy carries a checkpoint — tasks must then expose a ``seed``
    attribute).
    """
    policy = policy if policy is not None else DEFAULT_POLICY
    policy.validate()
    if policy.checkpoint is not None and (encode is None or decode is None):
        raise CheckpointError(
            "checkpointing these tasks needs encode/decode codecs"
        )
    global _WORKER_STATE
    workers = resolve_workers(workers)
    tasks = list(tasks)
    completed: Dict[int, Result] = {}
    todo: List[int] = list(range(len(tasks)))
    if policy.resume and policy.checkpoint is not None:
        stored = policy.checkpoint.completed(scope)
        remaining: List[int] = []
        for position in todo:
            seed = getattr(tasks[position], "seed", None)
            if seed is not None and seed in stored:
                completed[position] = decode(stored[seed], tasks[position])
            else:
                remaining.append(position)
        todo = remaining
        if completed:
            obs.incr("checkpoint.tasks_skipped", len(completed))
    progress.add_total(len(todo))
    if workers <= 1 or len(todo) <= 1:
        for position in todo:
            result = execute(context, tasks[position])
            completed[position] = result
            progress.task_done(result)
            _checkpoint_result(
                policy, scope, tasks[position], result, encode
            )
        return [completed[position] for position in range(len(tasks))]
    mp_context = multiprocessing.get_context("fork")
    _WORKER_STATE = (execute, context, obs.enabled())

    def on_result(position: int, result: object) -> None:
        # Persist immediately: a run killed after this point resumes
        # past this task even though run_tasks never returned.
        _checkpoint_result(policy, scope, tasks[position], result, encode)

    pooled = _PooledRun(
        tasks, todo, workers, policy, mp_context, on_result=on_result
    )
    previous_sigterm = _sigterm_to_exception()
    try:
        fresh = pooled.run(execute, context)
    finally:
        pooled.shutdown()
        _WORKER_STATE = None
        if previous_sigterm is not None:
            signal.signal(signal.SIGTERM, previous_sigterm)
    completed.update(fresh)
    return [completed[position] for position in range(len(tasks))]
