"""Shipping worker-side observability back to the parent registry.

Worker processes record into their own fresh registries (the parent's
registry, inherited through ``fork``, is replaced on entry so nothing
is double-counted).  When a task finishes, its recording is reduced to
a plain, picklable snapshot; the parent merges snapshots in task order,
so the merged registry is identical no matter how the pool scheduled
the work:

* counters   — summed;
* gauges     — last-write-wins in task order;
* histograms — raw observations re-observed (summaries stay exact);
* spans      — rebuilt under the parent's currently open span, with
  ``task=<position>`` / ``attempt=<n>`` attribution annotated on each
  worker root so ``repro profile`` can attribute time to tasks and
  distinguish retried attempts.

Only the *winning* attempt's snapshot ships: a crashed, timed-out, or
corrupted attempt never delivers one, so a retried task merges exactly
once (``tests/test_pool_obs.py`` pins this).  Production sampling paths
record no spans, so shipping spans does not perturb the byte-identity
of ``repro stats`` across worker counts — worker spans appear only when
worker-side code actually opens spans.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.obs.metrics import Metrics
from repro.obs.registry import Registry
from repro.obs.sinks import span_records
from repro.obs.trace import Span, Tracer

Number = Union[int, float]

MetricsSnapshot = Dict[str, Dict[str, object]]

#: A full worker recording: the metrics snapshot plus a ``spans`` list
#: in :func:`repro.obs.sinks.span_records` shape.
WorkerSnapshot = Dict[str, object]


def metrics_snapshot(metrics: Metrics) -> MetricsSnapshot:
    """Reduce a registry's metrics to a plain picklable dict.

    Histograms keep their raw observations (not just summaries) so the
    parent's merged percentiles are exact, matching a sequential run.
    """
    return {
        "counters": {
            name: counter.value
            for name, counter in metrics.counters.items()
        },
        "gauges": {
            name: gauge.value for name, gauge in metrics.gauges.items()
        },
        "histograms": {
            name: histogram.values
            for name, histogram in metrics.histograms.items()
        },
    }


def worker_snapshot(registry: Registry) -> WorkerSnapshot:
    """A worker's full recording — metrics plus flattened spans."""
    snapshot: WorkerSnapshot = metrics_snapshot(registry.metrics)
    spans = span_records(registry.tracer)
    if spans:
        snapshot["spans"] = spans
    return snapshot


def merge_metrics_snapshot(
    metrics: Metrics, snapshot: MetricsSnapshot
) -> None:
    """Merge one worker snapshot's metrics into ``metrics`` (names sorted)."""
    counters: Dict[str, Number] = snapshot.get("counters", {})
    for name in sorted(counters):
        metrics.counter(name).inc(counters[name])
    gauges: Dict[str, Number] = snapshot.get("gauges", {})
    for name in sorted(gauges):
        metrics.gauge(name).set(gauges[name])
    histograms: Dict[str, List[float]] = snapshot.get("histograms", {})
    for name in sorted(histograms):
        histogram = metrics.histogram(name)
        for value in histograms[name]:
            histogram.observe(value)


def _rebuild_spans(
    tracer: Tracer,
    records: List[Dict[str, object]],
    task: Optional[int],
    attempt: Optional[int],
) -> None:
    """Reattach flattened worker spans under the parent's open span.

    Worker clocks are unrelated to the parent's, so ``started`` is not
    meaningful across the process boundary and is set to the span's
    position in the worker's depth-first order; durations (the quantity
    profiling consumes) survive verbatim.
    """
    rebuilt: Dict[object, Span] = {}
    parent_span = tracer.current
    for index, record in enumerate(records):
        span = Span(
            str(record.get("name")),
            dict(record.get("attributes") or {}),
            float(index),
        )
        span.duration = record.get("duration_s")
        rebuilt[record.get("id")] = span
        parent_id = record.get("parent")
        if parent_id is not None and parent_id in rebuilt:
            rebuilt[parent_id].children.append(span)
        else:
            if task is not None:
                span.annotate(task=task)
            if attempt is not None:
                span.annotate(attempt=attempt)
            if parent_span is not None:
                parent_span.children.append(span)
            else:
                tracer.roots.append(span)


def merge_worker_snapshot(
    registry: Registry,
    snapshot: WorkerSnapshot,
    *,
    task: Optional[int] = None,
    attempt: Optional[int] = None,
) -> None:
    """Merge one worker's full recording into the parent registry.

    Metrics merge as :func:`merge_metrics_snapshot`; any shipped spans
    are rebuilt under the parent tracer's innermost open span (or as new
    roots) with task/attempt attribution on each worker root.
    """
    merge_metrics_snapshot(registry.metrics, snapshot)
    spans = snapshot.get("spans")
    if spans:
        _rebuild_spans(registry.tracer, spans, task, attempt)
