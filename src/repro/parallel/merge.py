"""Shipping worker-side metrics back to the parent registry.

Worker processes record into their own fresh registries (the parent's
registry, inherited through ``fork``, is replaced on entry so nothing
is double-counted).  When a task finishes, its metrics are reduced to
a plain, picklable snapshot; the parent merges snapshots in task order,
so the merged registry is identical no matter how the pool scheduled
the work:

* counters   — summed;
* gauges     — last-write-wins in task order;
* histograms — raw observations re-observed (summaries stay exact).

Spans are deliberately *not* shipped: the samplers record no spans, and
worker wall-clock would be nondeterministic noise in the parent's span
tree.  The parent's own ``verify.*`` spans still bracket the pool run.
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.obs.metrics import Metrics

Number = Union[int, float]

MetricsSnapshot = Dict[str, Dict[str, object]]


def metrics_snapshot(metrics: Metrics) -> MetricsSnapshot:
    """Reduce a registry's metrics to a plain picklable dict.

    Histograms keep their raw observations (not just summaries) so the
    parent's merged percentiles are exact, matching a sequential run.
    """
    return {
        "counters": {
            name: counter.value
            for name, counter in metrics.counters.items()
        },
        "gauges": {
            name: gauge.value for name, gauge in metrics.gauges.items()
        },
        "histograms": {
            name: histogram.values
            for name, histogram in metrics.histograms.items()
        },
    }


def merge_metrics_snapshot(
    metrics: Metrics, snapshot: MetricsSnapshot
) -> None:
    """Merge one worker snapshot into ``metrics`` (names sorted)."""
    counters: Dict[str, Number] = snapshot.get("counters", {})
    for name in sorted(counters):
        metrics.counter(name).inc(counters[name])
    gauges: Dict[str, Number] = snapshot.get("gauges", {})
    for name in sorted(gauges):
        metrics.gauge(name).set(gauges[name])
    histograms: Dict[str, List[float]] = snapshot.get("histograms", {})
    for name in sorted(histograms):
        histogram = metrics.histogram(name)
        for value in histograms[name]:
            histogram.observe(value)
