"""Deterministic fault injection for the worker pool.

The recovery paths in :mod:`repro.parallel.pool` — crash detection,
timeouts, retries, checkpoint/resume — are themselves code, and code
that only runs when hardware misbehaves is code that never runs in CI.
This module makes failures a *scheduled, reproducible* part of a run: a
:class:`FaultPlan` injects worker crashes, hangs, and corrupted results
at configurable rates, with every injection decision a pure function of
the plan's seed, the task's derived seed, and the attempt number.

That purity matters twice over.  First, an injected run is replayable:
the same spec and root seed produce the same failures, so a chaos
regression is debuggable.  Second, retries converge: attempt 2 of a
task draws a *fresh* injection decision (the attempt number is part of
the identity), so a task crashed by a ``crash=0.3`` plan is not doomed
to crash forever — exactly like a real transient fault.  Because the
task's own RNG stream is untouched by any of this, a run that survives
injected faults produces a report bit-identical to an undisturbed run
(``tests/test_faults.py`` pins this).

Spec grammar (the ``--inject-faults`` flag)::

    SPEC  := FIELD ("," FIELD)*
    FIELD := POOL "=" RATE | SERVICE "=" RATE | "seed" "=" INT
    POOL  := "crash" | "hang" | "corrupt"
    SERVICE := "kill" | "steal" | "torn" | "cache"
    RATE  := float in [0, 1]

e.g. ``crash=0.1,hang=0.05,corrupt=0.02,seed=7``.  The pool rates must
sum to at most 1: one uniform draw per (task, attempt) is partitioned
into crash / hang / corrupt / healthy bands, so the three pool faults
are mutually exclusive per attempt.

The service fields target the job runtime in :mod:`repro.service`
instead of the pool, and fire at unrelated sites — a worker killing
itself after claiming a job (``kill``), a simulated lease takeover
(``steal``), a WAL append torn mid-line by a process death (``torn``),
a result-cache entry corrupted after write (``cache``) — so each is an
independent per-site draw (:meth:`FaultPlan.decide_service`) rather
than a band of the shared pool draw.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import VerificationError
from repro.parallel.seeds import derive_rng

# Injection kinds, as the pool's worker entry point receives them.
CRASH = "crash"
HANG = "hang"
CORRUPT = "corrupt"

# Service-level injection kinds, as repro.service receives them.
KILL = "kill"
STEAL = "steal"
TORN = "torn"
CACHE = "cache"

_RATE_FIELDS = (CRASH, HANG, CORRUPT)
_SERVICE_FIELDS = (KILL, STEAL, TORN, CACHE)


@dataclass(frozen=True)
class FaultPlan:
    """A seed-driven schedule of injected worker failures.

    ``crash`` kills the worker process with a nonzero exit before it
    runs its task; ``hang`` makes the worker sleep past any plausible
    timeout (the parent must reclaim it, so a plan with ``hang > 0``
    requires a per-task timeout); ``corrupt`` lets the task complete
    but mangles the result payload after its integrity digest is
    computed, so the parent's digest check must catch it.
    """

    crash: float = 0.0
    hang: float = 0.0
    corrupt: float = 0.0
    kill: float = 0.0
    steal: float = 0.0
    torn: float = 0.0
    cache: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in (*_RATE_FIELDS, *_SERVICE_FIELDS):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise VerificationError(
                    f"fault rate {name}={rate} must lie in [0, 1]"
                )
        if self.crash + self.hang + self.corrupt > 1.0:
            raise VerificationError(
                "fault rates must sum to at most 1 "
                f"(got {self.crash + self.hang + self.corrupt})"
            )

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse an ``--inject-faults`` spec string.

        Raises :class:`~repro.errors.VerificationError` on unknown
        fields, malformed numbers, duplicate fields, or rates outside
        [0, 1].
        """
        values: dict = {}
        for field in spec.split(","):
            field = field.strip()
            if not field:
                continue
            name, separator, raw = field.partition("=")
            name = name.strip()
            if not separator:
                raise VerificationError(
                    f"fault spec field {field!r} is not NAME=VALUE"
                )
            if name not in (*_RATE_FIELDS, *_SERVICE_FIELDS, "seed"):
                raise VerificationError(
                    f"unknown fault spec field {name!r} (choices: "
                    f"crash, hang, corrupt, kill, steal, torn, cache, "
                    f"seed)"
                )
            if name in values:
                raise VerificationError(
                    f"duplicate fault spec field {name!r}"
                )
            try:
                values[name] = int(raw) if name == "seed" else float(raw)
            except ValueError:
                raise VerificationError(
                    f"fault spec field {name!r} has a malformed value "
                    f"{raw.strip()!r}"
                ) from None
        if not any(
            name in values for name in (*_RATE_FIELDS, *_SERVICE_FIELDS)
        ):
            raise VerificationError(
                f"fault spec {spec!r} injects nothing "
                "(set crash=, hang=, corrupt=, kill=, steal=, torn=, "
                "or cache=)"
            )
        return cls(**values)

    @property
    def active(self) -> bool:
        """True when the plan can inject at least one fault."""
        return (self.crash + self.hang + self.corrupt) > 0.0

    def decide(self, task_seed: int, attempt: int) -> Optional[str]:
        """The fault (if any) to inject into one attempt of one task.

        A pure function of ``(plan seed, task seed, attempt)`` — never
        of scheduling, worker count, or how many other tasks exist — so
        injected runs replay exactly and a retried attempt redraws its
        fate independently.  Returns :data:`CRASH`, :data:`HANG`,
        :data:`CORRUPT`, or ``None`` (healthy).
        """
        if not self.active:
            return None
        draw = derive_rng(self.seed, "fault", task_seed, attempt).random()
        if draw < self.crash:
            return CRASH
        if draw < self.crash + self.hang:
            return HANG
        if draw < self.crash + self.hang + self.corrupt:
            return CORRUPT
        return None

    @property
    def service_active(self) -> bool:
        """True when any service-level fault can fire."""
        return (self.kill + self.steal + self.torn + self.cache) > 0.0

    def decide_service(self, kind: str, *identity: object) -> bool:
        """Whether the service fault ``kind`` fires at one site.

        Unlike the pool faults, the service faults strike unrelated
        sites (a claim, a WAL append, a cache write), so each kind
        draws independently.  The draw is a pure function of
        ``(plan seed, kind, identity)``; callers pass an identity that
        names the site stably across restarts — e.g. ``(job_id,
        attempt)`` for a worker kill, or ``(event_kind, job_id,
        attempt_index)`` for a torn WAL append — so a resumed
        campaign replays the same fault schedule and a retried site
        redraws its fate.  The identity must advance on every retry
        even when the fault destroys the evidence of the attempt: a
        torn append leaves no landed event, so its index counts crash
        scars (dropped half-lines), not landed occurrences —
        otherwise a respawned worker redraws the identical tear
        forever.
        """
        if kind not in _SERVICE_FIELDS:
            raise VerificationError(f"unknown service fault kind {kind!r}")
        rate = getattr(self, kind)
        if rate <= 0.0:
            return False
        draw = derive_rng(self.seed, "service-fault", kind, *identity)
        return draw.random() < rate
