"""Task definitions for parallel Monte-Carlo verification.

An arrow statement ``U --t-->_p U'`` quantifies over every adversary in
a schema and every start state in ``U`` (Definition 3.1), so a sampling
check factors into independent (adversary, start state) pair tasks; an
expected-time measurement factors into independent per-start tasks.
This module defines those tasks as plain data plus pure execution
functions, suitable for :func:`repro.parallel.pool.run_tasks` — heavy
objects travel in the (fork-inherited) context, tiny descriptors and
plain-data outcomes cross the process boundary.

Each pair is sampled in chunks from its own derived RNG stream.  With
``early_stop`` enabled, sampling halts once the pair's exact
Clopper-Pearson bounds already decide it against the claimed
probability at the requested confidence — the recorded summary then
still produces the same supported/refuted classification the full
sample budget would have recorded *for that bound* (the decision is
re-derived from the recorded counts, never stored separately; see
``docs/parallel.md`` for the soundness argument).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Hashable, List, Optional, Sequence, Tuple, TypeVar

from repro import obs
from repro.adversary.base import Adversary
from repro.contracts import OFF_CONFIG, GuardConfig
from repro.contracts.guards import (
    check_schema_membership,
    describe_violation,
    spot_check_closure,
)
from repro.errors import CheckpointError, ContractViolation
from repro.automaton.automaton import ProbabilisticAutomaton
from repro.automaton.execution import ExecutionFragment
from repro.parallel.seeds import derive_rng, rng_from_seed
from repro.probability.stats import (
    BernoulliSummary,
    clopper_pearson_lower,
    clopper_pearson_upper,
)
from repro.statespace.engine import Engine, TreeEngine

State = TypeVar("State", bound=Hashable)

DEFAULT_CHUNK_SIZE = 32


# ----------------------------------------------------------------------
# Arrow-statement pair checks
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ArrowPairContext:
    """Everything every pair task needs; inherited by workers via fork."""

    automaton: ProbabilisticAutomaton
    adversaries: Tuple[Tuple[str, Adversary], ...]
    start_states: Tuple[object, ...]
    target: Callable[[object], bool]
    time_bound: object
    time_of: Callable[[object], Fraction]
    samples_per_pair: int
    max_steps: int
    claimed: float
    confidence: float
    early_stop: bool
    chunk_size: int
    #: The schema the adversaries are declared to range over; used by the
    #: guard layer for membership and execution-closure spot checks.
    schema: object = None
    #: Contract-check settings.  Part of the fork-inherited context, so
    #: pooled workers enforce identically to ``workers=1``.
    guards: GuardConfig = OFF_CONFIG
    #: The evaluation engine (``repro.statespace.engine``).  Compiled
    #: and batched flat-array tables ride here, fork-inherited, so
    #: workers never recompile or reflatten.  ``None`` means "build a
    #: tree engine lazily" (kept for callers that assemble contexts by
    #: hand).
    engine: Optional[Engine] = None


@dataclass(frozen=True)
class PairTask:
    """One (adversary, start state) unit of sampling work."""

    index: int
    adversary_index: int
    start_index: int
    seed: int


@dataclass(frozen=True)
class PairOutcome:
    """Plain-data result of one pair task (picklable).

    ``violation`` is ``None`` for a healthy pair; a quarantined pair
    carries the ``(kind, message)`` of the strict-mode
    :class:`~repro.errors.ContractViolation` that poisoned it, and its
    counts are all zero.
    """

    index: int
    successes: int
    trials: int
    truncated: int
    violation: Optional[Tuple[str, str]] = None


def pair_decided(
    successes: int, trials: int, claimed: float, confidence: float
) -> bool:
    """True when the recorded counts already classify the pair.

    Either the exact lower confidence bound certifies the claimed
    probability (the pair supports the statement) or the exact upper
    bound falls below it (the pair refutes it); more samples can only
    re-derive a classification the report would already print.
    """
    summary = BernoulliSummary(successes, trials)
    if clopper_pearson_lower(summary, confidence) >= claimed:
        return True
    return clopper_pearson_upper(summary, confidence) < claimed


def execute_pair(context: ArrowPairContext, task: PairTask) -> PairOutcome:
    """Sample one pair from its own seeded stream, chunked.

    Deterministic in (context, task) alone: the same derived seed
    yields the same outcome whether this runs inline, or in any worker
    of any pool size.  Guard checks draw from a separately derived
    ``"contracts"`` stream, never from the pair's sample stream, so
    warn-mode results are byte-identical to guards-off on healthy
    models.  A strict-mode :class:`~repro.errors.ContractViolation` is
    caught here and returned as a quarantined outcome — one poisoned
    pair must degrade, not abort the whole run.
    """
    adversary_name, adversary = context.adversaries[task.adversary_index]
    engine = context.engine
    if engine is None:
        engine = _tree_engine_for_pairs(context)
    rng = rng_from_seed(task.seed)
    chunk_size = (
        context.chunk_size if context.early_stop else context.samples_per_pair
    )
    guards = context.guards
    checking = guards.checking
    closure_pending = checking and context.schema is not None
    successes = 0
    truncated = 0
    trials = 0
    try:
        if checking:
            check_schema_membership(
                guards, context.schema, adversary, adversary_name
            )
        while trials < context.samples_per_pair:
            for _ in range(min(chunk_size, context.samples_per_pair - trials)):
                result = engine.sample(
                    task.adversary_index,
                    task.start_index,
                    rng,
                    want_fragment=closure_pending,
                )
                if closure_pending:
                    closure_pending = False
                    spot_check_closure(
                        guards,
                        context.schema,
                        adversary,
                        result.final,
                        derive_rng(task.seed, "contracts"),
                        adversary_name,
                    )
                trials += 1
                if result.truncated:
                    truncated += 1
                elif result.verdict:
                    successes += 1
            if context.early_stop and pair_decided(
                successes, trials, context.claimed, context.confidence
            ):
                break
    except ContractViolation as violation:
        if obs.enabled():
            obs.incr("contracts.quarantined")
        return PairOutcome(
            index=task.index, successes=0, trials=0, truncated=0,
            violation=describe_violation(violation),
        )
    if obs.enabled():
        obs.incr("verifier.pairs")
        obs.incr("verifier.samples", trials)
        obs.incr("verifier.successes", successes)
        obs.incr("verifier.truncated", truncated)
        obs.observe("verifier.pair_estimate", successes / trials)
    return PairOutcome(
        index=task.index, successes=successes, trials=trials,
        truncated=truncated,
    )


def _tree_engine_for_pairs(context: ArrowPairContext) -> TreeEngine:
    """The default tree engine for a hand-assembled pair context."""
    return TreeEngine(
        automaton=context.automaton,
        adversaries=context.adversaries,
        start_states=context.start_states,
        target=context.target,
        time_of=context.time_of,
        time_bound=context.time_bound,
        max_steps=context.max_steps,
        guards=context.guards,
    )


# ----------------------------------------------------------------------
# Time-to-target per-start tasks
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TimeStartContext:
    """Shared context for per-start time-to-target tasks."""

    automaton: ProbabilisticAutomaton
    adversary: Adversary
    start_states: Tuple[object, ...]
    target: Callable[[object], bool]
    time_of: Callable[[object], Fraction]
    samples_per_start: int
    max_steps: int
    adversary_name: str = ""
    schema: object = None
    guards: GuardConfig = OFF_CONFIG
    #: Evaluation engine, as in :class:`ArrowPairContext`.
    engine: Optional[Engine] = None


@dataclass(frozen=True)
class TimeStartTask:
    """All the replicates of one start state."""

    index: int
    start_index: int
    seed: int


@dataclass(frozen=True)
class TimeStartOutcome:
    """Reached times (in replicate order) and unreached count.

    ``violation`` marks a quarantined start, as in :class:`PairOutcome`.
    """

    index: int
    times: Tuple[Fraction, ...]
    unreached: int
    violation: Optional[Tuple[str, str]] = None


def execute_time_start(
    context: TimeStartContext, task: TimeStartTask
) -> TimeStartOutcome:
    """Sample every replicate of one start state from its own stream.

    Guard semantics match :func:`execute_pair`: checks draw no
    randomness from the sample stream, and a strict violation
    quarantines this start instead of aborting the run.
    """
    start = context.start_states[task.start_index]
    engine = context.engine
    if engine is None:
        engine = _tree_engine_for_time(context)
    rng = rng_from_seed(task.seed)
    guards = context.guards
    closure_pending = guards.checking and context.schema is not None
    times: List[Fraction] = []
    unreached = 0
    try:
        if guards.checking:
            check_schema_membership(
                guards, context.schema, context.adversary,
                context.adversary_name,
            )
        for _ in range(context.samples_per_start):
            elapsed = engine.time_to_target(0, task.start_index, rng)
            if closure_pending:
                closure_pending = False
                # sample_time_until does not return its final fragment;
                # probe closure on a short prefix resampled from the
                # dedicated contracts stream instead.
                probe = _closure_probe_fragment(context, start, task.seed)
                spot_check_closure(
                    guards,
                    context.schema,
                    context.adversary,
                    probe,
                    derive_rng(task.seed, "contracts", "cut"),
                    context.adversary_name,
                )
            if elapsed is None:
                unreached += 1
            else:
                times.append(elapsed)
    except ContractViolation as violation:
        if obs.enabled():
            obs.incr("contracts.quarantined")
        return TimeStartOutcome(
            index=task.index, times=(), unreached=0,
            violation=describe_violation(violation),
        )
    return TimeStartOutcome(
        index=task.index, times=tuple(times), unreached=unreached
    )


def _tree_engine_for_time(context: TimeStartContext) -> TreeEngine:
    """The default tree engine for a hand-assembled time context."""
    return TreeEngine(
        automaton=context.automaton,
        adversaries=((context.adversary_name, context.adversary),),
        start_states=context.start_states,
        target=context.target,
        time_of=context.time_of,
        time_bound=None,
        max_steps=context.max_steps,
        guards=context.guards,
    )


def _closure_probe_fragment(
    context: TimeStartContext, start, seed: int, probe_steps: int = 8
):
    """A short execution sampled from the dedicated contracts stream.

    Used only to feed the execution-closure spot check; consuming the
    separate ``"contracts"`` stream keeps the measured times identical
    across guard modes.
    """
    rng = derive_rng(seed, "contracts", "walk")
    fragment = ExecutionFragment.initial(start)
    for _ in range(probe_steps):
        chosen = context.adversary.choose(context.automaton, fragment)
        if chosen is None:
            break
        fragment = fragment.extend(chosen.action, chosen.target.sample(rng))
    return fragment


# ----------------------------------------------------------------------
# Checkpoint codecs
# ----------------------------------------------------------------------


def encode_pair_outcome(outcome: PairOutcome) -> dict:
    """A :class:`PairOutcome` as checkpoint JSON (index omitted).

    The task's position in the current run is *not* stored: a resumed
    run may enumerate tasks differently (say, a different number of
    random start states), and the seed — not the position — is the
    task's identity.  ``decode_pair_outcome`` re-attaches the current
    run's index.
    """
    record = {
        "successes": outcome.successes,
        "trials": outcome.trials,
        "truncated": outcome.truncated,
    }
    if outcome.violation is not None:
        record["violation"] = list(outcome.violation)
    return record


def decode_pair_outcome(record: dict, task: PairTask) -> PairOutcome:
    """Rebuild a :class:`PairOutcome` from its checkpoint record."""
    try:
        return PairOutcome(
            index=task.index,
            successes=int(record["successes"]),
            trials=int(record["trials"]),
            truncated=int(record["truncated"]),
            violation=_decode_violation(record.get("violation")),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointError(
            f"checkpoint record for task seed {task.seed} does not "
            f"decode into a pair outcome: {error}"
        ) from error


def encode_time_outcome(outcome: TimeStartOutcome) -> dict:
    """A :class:`TimeStartOutcome` as checkpoint JSON.

    Times are exact rationals; ``str(Fraction)`` round-trips them
    losslessly (``"7/2"`` / ``"3"``), keeping resumed reports
    bit-identical to uninterrupted ones.
    """
    record = {
        "times": [str(elapsed) for elapsed in outcome.times],
        "unreached": outcome.unreached,
    }
    if outcome.violation is not None:
        record["violation"] = list(outcome.violation)
    return record


def decode_time_outcome(
    record: dict, task: TimeStartTask
) -> TimeStartOutcome:
    """Rebuild a :class:`TimeStartOutcome` from its checkpoint record."""
    try:
        return TimeStartOutcome(
            index=task.index,
            times=tuple(Fraction(elapsed) for elapsed in record["times"]),
            unreached=int(record["unreached"]),
            violation=_decode_violation(record.get("violation")),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointError(
            f"checkpoint record for task seed {task.seed} does not "
            f"decode into a time-to-target outcome: {error}"
        ) from error


def _decode_violation(raw) -> Optional[Tuple[str, str]]:
    """Decode an optional ``[kind, message]`` checkpoint field."""
    if raw is None:
        return None
    if (
        not isinstance(raw, (list, tuple))
        or len(raw) != 2
        or not all(isinstance(part, str) for part in raw)
    ):
        raise CheckpointError(
            f"checkpoint violation field does not decode: {raw!r}"
        )
    return (raw[0], raw[1])


def occurrence_indices(keys: Sequence[object]) -> List[int]:
    """The occurrence index of each key among its equals, in order.

    Seed derivation includes this index so duplicate (adversary, start)
    pairs still draw independent streams, while *unrelated* additions
    to the family never shift an existing pair's stream (a global
    enumeration index would).
    """
    seen: dict = {}
    indices: List[int] = []
    for key in keys:
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        indices.append(occurrence)
    return indices
