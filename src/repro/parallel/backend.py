"""Task definitions for parallel Monte-Carlo verification.

An arrow statement ``U --t-->_p U'`` quantifies over every adversary in
a schema and every start state in ``U`` (Definition 3.1), so a sampling
check factors into independent (adversary, start state) pair tasks; an
expected-time measurement factors into independent per-start tasks.
This module defines those tasks as plain data plus pure execution
functions, suitable for :func:`repro.parallel.pool.run_tasks` — heavy
objects travel in the (fork-inherited) context, tiny descriptors and
plain-data outcomes cross the process boundary.

Each pair is sampled in chunks from its own derived RNG stream.  With
``early_stop`` enabled, sampling halts once the pair's exact
Clopper-Pearson bounds already decide it against the claimed
probability at the requested confidence — the recorded summary then
still produces the same supported/refuted classification the full
sample budget would have recorded *for that bound* (the decision is
re-derived from the recorded counts, never stored separately; see
``docs/parallel.md`` for the soundness argument).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Hashable, List, Sequence, Tuple, TypeVar

from repro import obs
from repro.adversary.base import Adversary
from repro.errors import CheckpointError
from repro.automaton.automaton import ProbabilisticAutomaton
from repro.automaton.execution import ExecutionFragment
from repro.events.reach import ReachWithinTime
from repro.execution.sampler import sample_event, sample_time_until
from repro.probability.stats import (
    BernoulliSummary,
    clopper_pearson_lower,
    clopper_pearson_upper,
)

State = TypeVar("State", bound=Hashable)

DEFAULT_CHUNK_SIZE = 32


# ----------------------------------------------------------------------
# Arrow-statement pair checks
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ArrowPairContext:
    """Everything every pair task needs; inherited by workers via fork."""

    automaton: ProbabilisticAutomaton
    adversaries: Tuple[Tuple[str, Adversary], ...]
    start_states: Tuple[object, ...]
    target: Callable[[object], bool]
    time_bound: object
    time_of: Callable[[object], Fraction]
    samples_per_pair: int
    max_steps: int
    claimed: float
    confidence: float
    early_stop: bool
    chunk_size: int


@dataclass(frozen=True)
class PairTask:
    """One (adversary, start state) unit of sampling work."""

    index: int
    adversary_index: int
    start_index: int
    seed: int


@dataclass(frozen=True)
class PairOutcome:
    """Plain-data result of one pair task (picklable)."""

    index: int
    successes: int
    trials: int
    truncated: int


def pair_decided(
    successes: int, trials: int, claimed: float, confidence: float
) -> bool:
    """True when the recorded counts already classify the pair.

    Either the exact lower confidence bound certifies the claimed
    probability (the pair supports the statement) or the exact upper
    bound falls below it (the pair refutes it); more samples can only
    re-derive a classification the report would already print.
    """
    summary = BernoulliSummary(successes, trials)
    if clopper_pearson_lower(summary, confidence) >= claimed:
        return True
    return clopper_pearson_upper(summary, confidence) < claimed


def execute_pair(context: ArrowPairContext, task: PairTask) -> PairOutcome:
    """Sample one pair from its own seeded stream, chunked.

    Deterministic in (context, task) alone: the same derived seed
    yields the same outcome whether this runs inline, or in any worker
    of any pool size.
    """
    _, adversary = context.adversaries[task.adversary_index]
    start = context.start_states[task.start_index]
    schema = ReachWithinTime(
        target=context.target,
        time_bound=context.time_bound,
        time_of=context.time_of,
    )
    fragment = ExecutionFragment.initial(start)
    rng = random.Random(task.seed)
    chunk_size = (
        context.chunk_size if context.early_stop else context.samples_per_pair
    )
    successes = 0
    truncated = 0
    trials = 0
    while trials < context.samples_per_pair:
        for _ in range(min(chunk_size, context.samples_per_pair - trials)):
            result = sample_event(
                context.automaton, adversary, fragment, schema, rng,
                context.max_steps,
            )
            trials += 1
            if result.truncated:
                truncated += 1
            elif result.verdict:
                successes += 1
        if context.early_stop and pair_decided(
            successes, trials, context.claimed, context.confidence
        ):
            break
    if obs.enabled():
        obs.incr("verifier.pairs")
        obs.incr("verifier.samples", trials)
        obs.incr("verifier.successes", successes)
        obs.incr("verifier.truncated", truncated)
        obs.observe("verifier.pair_estimate", successes / trials)
    return PairOutcome(
        index=task.index, successes=successes, trials=trials,
        truncated=truncated,
    )


# ----------------------------------------------------------------------
# Time-to-target per-start tasks
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TimeStartContext:
    """Shared context for per-start time-to-target tasks."""

    automaton: ProbabilisticAutomaton
    adversary: Adversary
    start_states: Tuple[object, ...]
    target: Callable[[object], bool]
    time_of: Callable[[object], Fraction]
    samples_per_start: int
    max_steps: int


@dataclass(frozen=True)
class TimeStartTask:
    """All the replicates of one start state."""

    index: int
    start_index: int
    seed: int


@dataclass(frozen=True)
class TimeStartOutcome:
    """Reached times (in replicate order) and unreached count."""

    index: int
    times: Tuple[Fraction, ...]
    unreached: int


def execute_time_start(
    context: TimeStartContext, task: TimeStartTask
) -> TimeStartOutcome:
    """Sample every replicate of one start state from its own stream."""
    start = context.start_states[task.start_index]
    rng = random.Random(task.seed)
    times: List[Fraction] = []
    unreached = 0
    for _ in range(context.samples_per_start):
        elapsed = sample_time_until(
            context.automaton,
            context.adversary,
            ExecutionFragment.initial(start),
            context.target,
            context.time_of,
            rng,
            context.max_steps,
        )
        if elapsed is None:
            unreached += 1
        else:
            times.append(elapsed)
    return TimeStartOutcome(
        index=task.index, times=tuple(times), unreached=unreached
    )


# ----------------------------------------------------------------------
# Checkpoint codecs
# ----------------------------------------------------------------------


def encode_pair_outcome(outcome: PairOutcome) -> dict:
    """A :class:`PairOutcome` as checkpoint JSON (index omitted).

    The task's position in the current run is *not* stored: a resumed
    run may enumerate tasks differently (say, a different number of
    random start states), and the seed — not the position — is the
    task's identity.  ``decode_pair_outcome`` re-attaches the current
    run's index.
    """
    return {
        "successes": outcome.successes,
        "trials": outcome.trials,
        "truncated": outcome.truncated,
    }


def decode_pair_outcome(record: dict, task: PairTask) -> PairOutcome:
    """Rebuild a :class:`PairOutcome` from its checkpoint record."""
    try:
        return PairOutcome(
            index=task.index,
            successes=int(record["successes"]),
            trials=int(record["trials"]),
            truncated=int(record["truncated"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointError(
            f"checkpoint record for task seed {task.seed} does not "
            f"decode into a pair outcome: {error}"
        ) from error


def encode_time_outcome(outcome: TimeStartOutcome) -> dict:
    """A :class:`TimeStartOutcome` as checkpoint JSON.

    Times are exact rationals; ``str(Fraction)`` round-trips them
    losslessly (``"7/2"`` / ``"3"``), keeping resumed reports
    bit-identical to uninterrupted ones.
    """
    return {
        "times": [str(elapsed) for elapsed in outcome.times],
        "unreached": outcome.unreached,
    }


def decode_time_outcome(
    record: dict, task: TimeStartTask
) -> TimeStartOutcome:
    """Rebuild a :class:`TimeStartOutcome` from its checkpoint record."""
    try:
        return TimeStartOutcome(
            index=task.index,
            times=tuple(Fraction(elapsed) for elapsed in record["times"]),
            unreached=int(record["unreached"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointError(
            f"checkpoint record for task seed {task.seed} does not "
            f"decode into a time-to-target outcome: {error}"
        ) from error


def occurrence_indices(keys: Sequence[object]) -> List[int]:
    """The occurrence index of each key among its equals, in order.

    Seed derivation includes this index so duplicate (adversary, start)
    pairs still draw independent streams, while *unrelated* additions
    to the family never shift an existing pair's stream (a global
    enumeration index would).
    """
    seen: dict = {}
    indices: List[int] = []
    for key in keys:
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        indices.append(occurrence)
    return indices
