"""Parallel Monte-Carlo verification backend.

The paper's arrow statements quantify over every adversary and start
state, so sampling checks factor into independent pair tasks.  This
package fans those tasks out across a fork-based worker pool while
keeping results *bit-identical* to a sequential run:

* :mod:`repro.parallel.seeds`   — stable per-task seed derivation;
* :mod:`repro.parallel.backend` — pair / time-to-target task
  definitions, chunked sampling, Clopper-Pearson early stop;
* :mod:`repro.parallel.pool`    — the fork pool, ordered results;
* :mod:`repro.parallel.merge`   — worker metrics back into the parent
  registry.

See ``docs/parallel.md`` for the seed-derivation scheme, the worker
model, and the early-stop soundness argument.
"""

from __future__ import annotations

from repro.parallel.backend import (
    DEFAULT_CHUNK_SIZE,
    ArrowPairContext,
    PairOutcome,
    PairTask,
    TimeStartContext,
    TimeStartOutcome,
    TimeStartTask,
    execute_pair,
    execute_time_start,
    occurrence_indices,
    pair_decided,
)
from repro.parallel.merge import merge_metrics_snapshot, metrics_snapshot
from repro.parallel.pool import (
    available_cpus,
    fork_available,
    resolve_workers,
    run_tasks,
)
from repro.parallel.seeds import derive_rng, derive_seed

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "ArrowPairContext",
    "PairOutcome",
    "PairTask",
    "TimeStartContext",
    "TimeStartOutcome",
    "TimeStartTask",
    "available_cpus",
    "derive_rng",
    "derive_seed",
    "execute_pair",
    "execute_time_start",
    "fork_available",
    "merge_metrics_snapshot",
    "metrics_snapshot",
    "occurrence_indices",
    "pair_decided",
    "resolve_workers",
    "run_tasks",
]
