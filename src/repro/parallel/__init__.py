"""Parallel Monte-Carlo verification backend.

The paper's arrow statements quantify over every adversary and start
state, so sampling checks factor into independent pair tasks.  This
package fans those tasks out across a fork-based worker pool while
keeping results *bit-identical* to a sequential run:

* :mod:`repro.parallel.seeds`      — stable per-task seed derivation;
* :mod:`repro.parallel.backend`    — pair / time-to-target task
  definitions, chunked sampling, Clopper-Pearson early stop, and the
  checkpoint codecs;
* :mod:`repro.parallel.pool`       — the fault-tolerant fork pool:
  crash detection, per-task timeouts, retries with backoff, and
  graceful degradation to inline execution;
* :mod:`repro.parallel.checkpoint` — crash-safe JSONL checkpoints and
  ``--resume`` support;
* :mod:`repro.parallel.faults`     — deterministic fault injection
  (crashes, hangs, corrupted results) for testing the recovery paths;
* :mod:`repro.parallel.merge`      — worker metrics back into the
  parent registry.

See ``docs/parallel.md`` for the seed-derivation scheme and worker
model, and ``docs/robustness.md`` for the failure model, checkpoint
format, and fault-injection spec grammar.
"""

from __future__ import annotations

from repro.parallel.backend import (
    DEFAULT_CHUNK_SIZE,
    ArrowPairContext,
    PairOutcome,
    PairTask,
    TimeStartContext,
    TimeStartOutcome,
    TimeStartTask,
    decode_pair_outcome,
    decode_time_outcome,
    encode_pair_outcome,
    encode_time_outcome,
    execute_pair,
    execute_time_start,
    occurrence_indices,
    pair_decided,
)
from repro.parallel.checkpoint import Checkpoint
from repro.parallel.faults import FaultPlan
from repro.parallel.merge import merge_metrics_snapshot, metrics_snapshot
from repro.parallel.pool import (
    RunPolicy,
    available_cpus,
    fork_available,
    resolve_workers,
    run_tasks,
)
from repro.parallel.seeds import derive_rng, derive_seed

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "ArrowPairContext",
    "Checkpoint",
    "FaultPlan",
    "PairOutcome",
    "PairTask",
    "RunPolicy",
    "TimeStartContext",
    "TimeStartOutcome",
    "TimeStartTask",
    "available_cpus",
    "decode_pair_outcome",
    "decode_time_outcome",
    "derive_rng",
    "derive_seed",
    "encode_pair_outcome",
    "encode_time_outcome",
    "execute_pair",
    "execute_time_start",
    "fork_available",
    "merge_metrics_snapshot",
    "metrics_snapshot",
    "occurrence_indices",
    "pair_decided",
    "resolve_workers",
    "run_tasks",
]
