"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting genuine programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ProbabilityError(ReproError):
    """Raised when a probability space or distribution is ill-formed.

    Examples: weights that do not sum to one, negative weights, an empty
    sample space, or conditioning on a null event.
    """


class AutomatonError(ReproError):
    """Raised when a probabilistic automaton definition is inconsistent.

    Examples: a start state that is not a state, a transition from an
    unknown state, overlapping internal/external action sets, or a target
    distribution whose support leaves the state set.
    """


class ExecutionError(ReproError):
    """Raised when an execution fragment is ill-formed.

    Examples: concatenating fragments whose endpoint states disagree, or
    building a fragment whose steps do not exist in the automaton.
    """


class AdversaryError(ReproError):
    """Raised when an adversary violates its contract.

    Examples: returning a step that is not enabled in the fragment's last
    state, or a Unit-Time adversary missing a scheduling deadline.
    """


class EventError(ReproError):
    """Raised when an event schema is ill-formed.

    Examples: a ``next`` schema built from non-distinct actions
    (Section 4 requires ``a_i != a_j``), or evaluating an event against
    an incompatible execution automaton.
    """


class ProofError(ReproError):
    """Raised when a proof rule is applied to incompatible statements.

    Examples: composing ``U --t1-->_p U'`` with ``V --t2-->_q U''`` when
    ``U' != V`` (Theorem 3.4 requires the intermediate sets to match), or
    composing statements proved against different adversary schemas.
    """


class VerificationError(ReproError):
    """Raised when a verification run cannot produce a sound answer.

    Examples: a sampling plan with zero samples, or an exact checker
    asked to explore an unboundedly large state space.
    """


class ObservabilityError(ReproError):
    """Raised when the instrumentation layer is misused.

    Examples: registering one metric name as both a counter and a
    histogram, querying a percentile of an empty histogram, or a span
    stack corrupted by mismatched enter/exit.
    """
