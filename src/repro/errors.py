"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting genuine programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ProbabilityError(ReproError):
    """Raised when a probability space or distribution is ill-formed.

    Examples: weights that do not sum to one, negative weights, an empty
    sample space, or conditioning on a null event.
    """


class AutomatonError(ReproError):
    """Raised when a probabilistic automaton definition is inconsistent.

    Examples: a start state that is not a state, a transition from an
    unknown state, overlapping internal/external action sets, or a target
    distribution whose support leaves the state set.
    """


class ExecutionError(ReproError):
    """Raised when an execution fragment is ill-formed.

    Examples: concatenating fragments whose endpoint states disagree, or
    building a fragment whose steps do not exist in the automaton.
    """


class AdversaryError(ReproError):
    """Raised when an adversary violates its contract.

    Examples: returning a step that is not enabled in the fragment's last
    state, or a Unit-Time adversary missing a scheduling deadline.
    """


class EventError(ReproError):
    """Raised when an event schema is ill-formed.

    Examples: a ``next`` schema built from non-distinct actions
    (Section 4 requires ``a_i != a_j``), or evaluating an event against
    an incompatible execution automaton.
    """


class ProofError(ReproError):
    """Raised when a proof rule is applied to incompatible statements.

    Examples: composing ``U --t1-->_p U'`` with ``V --t2-->_q U''`` when
    ``U' != V`` (Theorem 3.4 requires the intermediate sets to match), or
    composing statements proved against different adversary schemas.
    """


class VerificationError(ReproError):
    """Raised when a verification run cannot produce a sound answer.

    Examples: a sampling plan with zero samples, or an exact checker
    asked to explore an unboundedly large state space.
    """


class ModelRegistryError(VerificationError):
    """Base class for model front-end failures.

    Raised by :mod:`repro.models` when a requested case study cannot be
    resolved or registered.  A distinct taxonomy family (mirroring the
    pool-fault and service families) so the defect corpus can pin how
    every engine classifies registry failures.
    """


class UnknownModelError(ModelRegistryError):
    """Raised when a model name is not in the model registry.

    ``--model`` selects a case study from
    :mod:`repro.models`; an unregistered name cannot be resolved into
    an automaton or adversary family, so no sound answer is possible.
    Maps to the usage exit status (2) at the CLI, like an unknown
    proposition.  Carries the known model names for the error message.
    """

    def __init__(self, name: str, known: tuple = ()):  # type: ignore[assignment]
        known_names = ", ".join(sorted(known)) or "none registered"
        super().__init__(
            f"unknown model {name!r} (registered models: {known_names})"
        )
        self.name = name
        self.known = tuple(known)


class StateSpaceError(VerificationError):
    """Raised when a state space cannot be compiled as requested.

    Examples: a space specification whose quotient key collides two
    dynamically distinct states, or an adversary that cannot be
    tabulated into a finite decision table.
    """


class StateBudgetExceeded(StateSpaceError):
    """Raised when compile-time exploration exceeds its state budget.

    ``--engine compiled`` surfaces this to the caller; ``--engine auto``
    catches it and falls back to the tree-walk engine instead.
    """

    def __init__(self, message: str, *, budget: int = 0, explored: int = 0):
        super().__init__(message)
        self.budget = budget
        self.explored = explored


class ObservabilityError(ReproError):
    """Raised when the instrumentation layer is misused.

    Examples: registering one metric name as both a counter and a
    histogram, querying a percentile of an empty histogram, or a span
    stack corrupted by mismatched enter/exit.
    """


class PoolFaultError(ReproError):
    """Base class for worker-pool execution failures.

    Raised by :mod:`repro.parallel.pool` when a pooled run cannot
    complete: a worker process died, a task overran its wall-clock
    budget, or a result failed its integrity check — and the per-task
    retry budget is exhausted.  Results already completed are merged
    and checkpointed before the error propagates, so a rerun with
    ``--resume`` loses no work.
    """


class WorkerCrashError(PoolFaultError):
    """Raised when a worker process dies without delivering a result.

    Examples: a worker killed by the OOM killer, a segfault in an
    extension, or an injected crash from the fault harness — observed
    by the parent as a nonzero exit status with no result on the pipe.
    """


class TaskTimeoutError(PoolFaultError):
    """Raised when a task exceeds its per-task wall-clock timeout.

    The parent terminates the hung worker and retries the task on a
    fresh process; this error propagates only once the retry budget is
    exhausted.
    """


class ResultCorruptionError(PoolFaultError):
    """Raised when a worker's result fails its integrity digest.

    Every pooled result travels with a SHA-256 digest computed in the
    worker; a mismatch on the parent side means the payload was
    corrupted in transit (or by the fault harness) and must not enter
    the report.
    """


class TaskExecutionError(PoolFaultError):
    """Raised when the task function itself raised inside a worker.

    Unlike a crash or timeout this is deterministic — retrying would
    fail identically — so it aborts the run immediately, after merging
    the metrics of tasks that did complete.
    """


class CheckpointError(ReproError):
    """Raised when a checkpoint file cannot be read or written.

    Examples: an unreadable checkpoint path, an append failing
    mid-run, or a stored record whose payload does not decode into the
    expected task result shape.
    """


class ServiceError(ReproError):
    """Base class for durable job-service failures.

    Raised by :mod:`repro.service` when the job runtime cannot make
    progress: a worker lost the lease on its job, the WAL-style job
    store holds records that cannot be trusted, or the supervisor
    detected a worker crash-looping.  Like pool faults these map to
    exit status 3 at the CLI — infrastructure failed, not the
    verification logic.
    """


class LeaseExpiredError(ServiceError):
    """Raised when a worker acts on a job whose lease it no longer holds.

    A worker that stalls past its lease (or loses a claim race to a
    takeover after the lease expired) must not record results for the
    job — another worker may already be re-running it.  Heartbeats and
    completion both verify holdership against the folded WAL state and
    raise this when it is gone; the worker abandons the job and the
    eventual re-run reproduces the identical result from the same
    derived seeds.
    """


class JobStoreCorruptionError(ServiceError):
    """Raised when the job store's WAL cannot be trusted.

    A torn final line from a crash is *not* corruption — the store
    repairs and tolerates it.  This error means something stronger: an
    unreadable store file, a record that decodes but has the wrong
    shape, or an event of an unknown kind — states that no crash of a
    correct writer produces, so continuing could hand out the same job
    twice or lose results silently.
    """


class SupervisorCrashLoopError(ServiceError):
    """Raised when a worker slot keeps dying immediately after restart.

    The supervisor restarts crashed workers with exponential backoff;
    a slot whose workers die young ``max_restarts`` times in a row is
    crash-looping (a poisoned job or broken environment), and endless
    restarts would burn the machine without progress.  The supervisor
    stops the campaign instead — the WAL keeps every completed result,
    so a fixed environment resumes where it left off.
    """


class ContractViolation(ReproError):
    """A model broke a semantic contract of the paper's definitions.

    Raised (``strict``) or counted (``warn``) by the guard layer in
    :mod:`repro.contracts` when user-supplied model code violates
    Definition 2.1 (ill-formed probability space), Definition 2.2 (an
    adversary scheduling a non-enabled step), or Definition 3.3 (a
    schema falsely claiming execution closure) — or runs away entirely
    (fuel exhaustion).  Carries the offending ``state``, ``action``,
    and execution-fragment ``prefix`` as a minimal repro; ``site`` is
    the deduplication key for once-per-site warnings.
    """

    #: Short classification used for ``contracts.<kind>`` counters and
    #: quarantine records; subclasses override.
    kind = "contract"

    def __init__(
        self,
        message: str,
        *,
        state: object = None,
        action: object = None,
        prefix: object = None,
        site: str = "",
    ):
        details = []
        if state is not None:
            details.append(f"state={state!r}")
        if action is not None:
            details.append(f"action={action!r}")
        if prefix is not None:
            details.append(f"prefix={prefix}")
        full = message if not details else f"{message} [{', '.join(details)}]"
        super().__init__(full)
        self.state = state
        self.action = action
        self.prefix = prefix
        self.site = site or full

    def to_dict(self) -> dict:
        """A stable, JSON-ready record of this violation."""
        return {
            "kind": type(self).kind,
            "message": str(self),
            "state": repr(self.state) if self.state is not None else None,
            "action": repr(self.action) if self.action is not None else None,
        }


class DistributionError(ContractViolation, ProbabilityError):
    """A transition target is not a probability space (Definition 2.1).

    Examples: weights that do not sum exactly to one as ``Fraction``s,
    a nonpositive weight, or an empty support — smuggled past the
    :class:`~repro.probability.space.FiniteDistribution` constructor by
    a duck-typed or mutated distribution object.
    """

    kind = "distribution"


class AdversaryContractError(ContractViolation, AdversaryError):
    """An adversary broke its Definition 2.2 contract at runtime.

    Examples: returning a step whose source is not the fragment's last
    state, a step not enabled there, or an adversary outside the schema
    the run declared.
    """

    kind = "adversary"


class ExecutionClosureError(ContractViolation, AdversaryError):
    """A schema's execution-closure claim failed a spot check.

    Definition 3.3 is the side condition Theorem 3.4 rests on: the
    guard layer shifts a schema member by a sampled fragment and checks
    the shift stays inside the schema.  A failure means composed
    statements proved against this schema are unsound.
    """

    kind = "closure"


class QuotientInvarianceError(ContractViolation, StateSpaceError):
    """A predicate disagreed across members of one quotient class.

    The symmetry quotient of :class:`repro.statespace.compile.SpaceSpec`
    is only sound for predicates that are constant on each equivalence
    class; the spot check in ``CompiledSpace.flags`` evaluates the
    predicate on sampled class members and raises (strict) or warns
    (warn) when a member disagrees with its class representative —
    a non-invariant predicate would silently misflag whole classes.
    """

    kind = "quotient"


class FuelExhaustedError(ContractViolation):
    """One execution exceeded its step or wall-clock fuel budget.

    Surfaces a nonterminating (or absurdly slow) adversary or automaton
    as a structured violation, with the fragment prefix as a minimal
    repro, instead of an indefinite hang.
    """

    kind = "fuel"
