"""Command-line interface: ``python -m repro <command>``.

Each subcommand regenerates one slice of the reproduction and prints a
plain-text report:

* ``prove``          — the Section 6.2 ledger derivation and bounds;
* ``verify``         — Monte-Carlo checks of the leaf and composed
  statements under the hostile adversary family;
* ``check``          — Monte-Carlo check of one named statement, with a
  canonical JSON report (``--json``) for byte-identity comparisons;
* ``chain``          — the composed ``T --13-->_1/8 C`` chain: its
  ledger derivation plus a Monte-Carlo check of the final statement;
* ``exact``          — exact worst-case minima over the
  round-synchronous Unit-Time subclass;
* ``appendix``       — the appendix lemmas, exactly;
* ``expected-time``  — measured time-to-critical vs the bound 63;
* ``sweep``          — ring-size and deadline ablations;
* ``election``       — the leader-election case study;
* ``benor``          — the Ben-Or consensus case study;
* ``independence``   — Example 4.1 / Proposition 4.2, exactly;
* ``stats``          — an instrumented Lehmann-Rabin run: span tree and
  metric tables (samples drawn, steps simulated, value-iteration
  residuals);
* ``audit``          — static well-formedness audit of the selected
  model's automaton (Definition 2.1 obligations);
* ``models``         — list the registered case-study models with
  their instance-size range, adversary family, and quotient support;
* ``trace``          — run any other subcommand with instrumentation on
  and render its span tree and metric tables afterwards;
* ``runs``           — list, show, and diff the provenance manifests
  every run appends to ``.repro/runs`` (opt-out: ``--no-manifest``);
* ``profile``        — fold a recorded span tree (a ``--trace-out``
  file or a manifest) into per-phase self/cumulative hotspots, with
  ``--folded`` flamegraph output;
* ``submit``         — append a verification command to the durable
  job store (validated now, run by ``serve`` later);
* ``serve``          — run supervised workers over the job store:
  leases with heartbeats, crash restarts with backoff, a
  content-addressed result cache, graceful SIGTERM drain;
* ``jobs``           — list, show, and cancel stored jobs
  (see ``docs/service.md``).

Every subcommand accepts ``--trace-out FILE.jsonl`` to record spans and
metrics to a JSONL trace file (see ``docs/observability.md``).  The
sampling subcommands accept ``--progress`` for a live stderr status
line (tasks done, rate, ETA, retry/quarantine/degradation counters);
stdout is byte-identical with progress on or off.  The
sampling subcommands accept ``--workers N`` to fan (adversary, start
state) pair checks out over a process pool; reports are bit-identical
for every worker count (see ``docs/parallel.md``).  They also accept
the fault-tolerance flags ``--timeout``, ``--retries``,
``--checkpoint FILE``, ``--resume``, and ``--inject-faults SPEC``
(crash-safe pooling, checkpoint/resume, and deterministic chaos
testing — see ``docs/robustness.md``); none of them changes a report's
bytes.  ``--guards {off,warn,strict}`` and ``--fuel SPEC`` select the
model-contract enforcement mode (Definitions 2.1/2.2/3.3) and
per-execution budgets; on healthy models ``warn`` output is
byte-identical to ``off`` for every worker count, and strict-mode
violations exit with the dedicated status 4 (see ``docs/contracts.md``).
``--engine {tree,compiled,batched,auto}`` selects the evaluation
strategy — the historical tree walk, the compile-once interned state
space, or its flattened array form sampling uniforms in blocks — and
``--state-budget`` caps the compile; reports are byte-identical
whichever engine ran (see ``docs/statespace.md``).  The sampling
subcommands, ``audit``, and ``fuzz`` accept ``--model NAME`` to select
a registered case study from :mod:`repro.models`; the default ``lr``
is the paper's Lehmann-Rabin ring and reproduces the historical output
byte for byte (see ``docs/models.md``).
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext
from typing import Optional, Sequence

# Retries a pooled task gets by default before its failure aborts the
# run: survives transient worker losses at zero cost on healthy runs.
DEFAULT_RETRIES = 2

# Exit status for model-contract violations: a strict-mode guard
# raised, or a run completed with quarantined (adversary, start) pairs.
# Distinct from 1 (statement refuted) so callers can tell "the model is
# broken" from "the claim is false".
EXIT_CONTRACT = 4

# Exit status for engine divergence: a defect-corpus replay or a fuzz
# campaign found two engines classifying the same case differently (or
# an entry classified other than its registry expectation).  Distinct
# from every other failure — it means the *harness itself* is broken,
# not the model or the claim.
EXIT_DIVERGENCE = 5

EXIT_STATUS_EPILOG = """\
exit status:
  0  success: every checked claim held
  1  a checked claim was refuted (or a measured bound failed)
  2  usage error (unknown flags or propositions, contradictory flags,
     or --engine compiled/batched blew its --state-budget)
  3  infrastructure failure: a pooled run exhausted its
     fault-tolerance budget, a checkpoint file was unusable, or the
     job service failed (lease lost, job store corrupt, workers
     crash-looping — docs/service.md)
  4  model-contract violation: a --guards strict check failed, the
     audit found findings, or pairs were quarantined (docs/contracts.md)
  5  engine divergence: a corpus replay or fuzz campaign saw two
     engines disagree, or an entry defied its expected classification
     (docs/corpus.md)
"""

MODELS_EPILOG = """\
models:
  the sampling subcommands (verify, check, chain, expected-time,
  stats, sweep), audit, and fuzz take --model NAME to select a
  registered case study; the default 'lr' is the paper's Lehmann-Rabin
  ring and reproduces the historical output byte for byte.
  'repro models' lists every registered model with its instance-size
  range, adversary family, and quotient support (docs/models.md)

"""


def _build_policy(args: argparse.Namespace):
    """The fault-tolerance policy described by the CLI flags.

    Raises :class:`~repro.errors.VerificationError` for contradictory
    flags (``--resume`` without ``--checkpoint``, hang injection
    without ``--timeout``, malformed ``--inject-faults`` specs).
    """
    from repro.parallel import Checkpoint, FaultPlan, RunPolicy

    policy = RunPolicy(
        timeout=args.timeout,
        retries=args.retries,
        faults=(
            FaultPlan.parse(args.inject_faults)
            if args.inject_faults else None
        ),
        checkpoint=(
            Checkpoint(args.checkpoint) if args.checkpoint else None
        ),
        resume=args.resume,
    )
    policy.validate()
    return policy


def _checkpoint_scope(policy):
    """Context manager closing the policy's checkpoint, if any."""
    if policy.checkpoint is not None:
        return policy.checkpoint
    return nullcontext()


def _build_guards(args: argparse.Namespace):
    """The contract-guard configuration described by the CLI flags.

    Raises :class:`~repro.errors.VerificationError` for contradictory
    flags (``--fuel`` with ``--guards off``, malformed fuel specs).
    Resets the once-per-site warning dedup so repeated in-process
    invocations (tests, ``trace``) warn afresh.
    """
    from repro import contracts

    contracts.reset_warnings()
    config = contracts.GuardConfig.from_flags(
        getattr(args, "guards", "off"), getattr(args, "fuel", None)
    )
    config.validate()
    return config


def _quarantine_lines(*reports) -> list:
    """Human-readable skip lines for every quarantined pair."""
    lines = []
    for report in reports:
        for pair in getattr(report, "quarantined", ()):
            lines.append(f"repro: {pair.describe()}")
    return lines


def _resolve_model(args: argparse.Namespace):
    """The registry model named by ``--model``, with defaults filled in.

    The parser leaves the model-dependent flags (``--n``, ``--prop``,
    ``--sizes``) as ``None``; this resolves them to the selected
    model's own defaults, so downstream code and the run manifest
    always see concrete values.  Raises
    :class:`~repro.errors.UnknownModelError` for unregistered names
    (mapped to exit status 2 in :func:`main`).
    """
    from repro.models import get_model

    model = get_model(getattr(args, "model", "lr"))
    if hasattr(args, "n"):
        if args.n is None:
            args.n = model.n_default
        model.validate_n(args.n)
    if getattr(args, "prop", 0) is None:
        args.prop = model.default_prop
    if getattr(args, "sizes", 0) is None:
        args.sizes = ",".join(str(size) for size in model.sweep_sizes)
    return model


def _cmd_prove(args: argparse.Namespace) -> int:
    from repro.models.lr import lr_exact_commands

    return lr_exact_commands().cmd_prove(args)


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.analysis.montecarlo import check_all_leaves, check_statement
    from repro.analysis.reporting import arrow_report_row, banner, format_table

    model = _resolve_model(args)
    policy = _build_policy(args)
    guards = _build_guards(args)
    setup = model.build(args.n)
    print(banner(f"Monte-Carlo verification, {model.size_noun} {args.n}"))
    with _checkpoint_scope(policy):
        reports = check_all_leaves(
            setup, seed=args.seed, samples_per_pair=args.samples,
            workers=args.workers, policy=policy, guards=guards,
            engine=args.engine, state_budget=args.state_budget,
        )
        rows = []
        failures = 0
        for name, report in sorted(reports.items()):
            failures += report.refuted
            rows.append(arrow_report_row(f"Prop {name}", report))
        chain = model.proof_chain(args.n)
        final = check_statement(
            chain.final_statement, setup, seed=args.seed,
            samples_per_pair=args.samples, workers=args.workers,
            policy=policy, guards=guards, engine=args.engine,
            state_budget=args.state_budget,
        )
    failures += final.refuted
    rows.append(arrow_report_row("composed", final))
    print(format_table(("claim", "statement", "worst estimate", "verdict"),
                       rows))
    skips = _quarantine_lines(final, *reports.values())
    if skips:
        print()
        print("\n".join(skips))
    if failures:
        return 1
    return EXIT_CONTRACT if skips else 0


def _resolve_statement(model, n: int, prop: str):
    """The arrow statement named ``prop`` ('composed' or a leaf name).

    ``composed`` always names the model's end-to-end chain conclusion;
    anything else is looked up among the leaf statements.  Returns
    ``None`` when the name is unknown (the caller reports the
    available choices).
    """
    if prop == "composed":
        return model.proof_chain(n).final_statement
    return model.leaf_statements(n).get(prop)


def _cmd_check(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.montecarlo import check_statement
    from repro.analysis.reporting import arrow_report_row, banner, format_table

    model = _resolve_model(args)
    statement = _resolve_statement(model, args.n, args.prop)
    if statement is None:
        choices = ", ".join(
            ["composed", *sorted(model.leaf_statements(args.n))]
        )
        print(
            f"repro: error: unknown proposition {args.prop!r} "
            f"(choices: {choices})",
            file=sys.stderr,
        )
        return 2
    policy = _build_policy(args)
    guards = _build_guards(args)
    setup = model.build(args.n)
    with _checkpoint_scope(policy):
        report = check_statement(
            statement, setup, seed=args.seed, samples_per_pair=args.samples,
            workers=args.workers, early_stop=args.early_stop, policy=policy,
            guards=guards, engine=args.engine,
            state_budget=args.state_budget,
        )
    if args.json:
        print(json.dumps(report.to_dict(), sort_keys=True, indent=2))
    else:
        print(banner(
            f"Monte-Carlo check of {args.prop}, {model.size_noun} {args.n}"
        ))
        print(format_table(
            ("claim", "statement", "worst estimate", "verdict"),
            [arrow_report_row(args.prop, report)],
        ))
        print()
        print(report.summary_line())
        skips = _quarantine_lines(report)
        if skips:
            print("\n".join(skips))
    if report.refuted:
        return 1
    return EXIT_CONTRACT if report.quarantined else 0


def _cmd_chain(args: argparse.Namespace) -> int:
    from repro.analysis.montecarlo import check_statement
    from repro.analysis.reporting import banner

    model = _resolve_model(args)
    chain = model.proof_chain(args.n)
    setup = model.build(args.n)
    print(banner(f"The composed chain, {model.size_noun} {args.n}"))
    print(chain.ledger.explain(chain.final_id))
    print()
    policy = _build_policy(args)
    guards = _build_guards(args)
    with _checkpoint_scope(policy):
        report = check_statement(
            chain.final_statement, setup, seed=args.seed,
            samples_per_pair=args.samples, workers=args.workers,
            early_stop=args.early_stop, policy=policy, guards=guards,
            engine=args.engine, state_budget=args.state_budget,
        )
    print(report.summary_line())
    skips = _quarantine_lines(report)
    if skips:
        print("\n".join(skips))
    if report.refuted:
        return 1
    return EXIT_CONTRACT if report.quarantined else 0


def _cmd_exact(args: argparse.Namespace) -> int:
    from repro.models.lr import lr_exact_commands

    return lr_exact_commands().cmd_exact(args)


def _cmd_appendix(args: argparse.Namespace) -> int:
    from repro.models.lr import lr_exact_commands

    return lr_exact_commands().cmd_appendix(args)


def _cmd_expected_time(args: argparse.Namespace) -> int:
    from repro.analysis.montecarlo import measure_expected_time
    from repro.analysis.reporting import banner, format_table, time_report_row

    model = _resolve_model(args)
    bound = model.expected_time_bound(args.n)
    setup = model.build(args.n)
    print(banner(f"Time to {model.target_label}, {model.size_noun} {args.n} "
                 f"(bound: {bound})"))
    policy = _build_policy(args)
    guards = _build_guards(args)
    with _checkpoint_scope(policy):
        reports = measure_expected_time(
            setup, seed=args.seed, samples=args.samples,
            workers=args.workers, policy=policy, guards=guards,
            engine=args.engine, state_budget=args.state_budget,
        )
    rows = []
    failures = 0
    quarantined = 0
    for name, report in sorted(reports.items()):
        quarantined += len(report.quarantined)
        if not report.times:
            # Every start was quarantined (or nothing reached the
            # target): there is no mean to compare against the bound.
            verdict = "QUARANTINED" if report.quarantined else "FAILS"
            failures += verdict == "FAILS"
            rows.append(time_report_row(name, report) + (verdict,))
            continue
        ok = report.unreached == 0 and report.mean <= float(bound)
        failures += not ok
        rows.append(time_report_row(name, report) + ("ok" if ok else "FAILS",))
    print(format_table(
        ("adversary", "mean", "max", "unreached", "verdict"), rows
    ))
    skips = _quarantine_lines(*reports.values())
    if skips:
        print()
        print("\n".join(skips))
    if failures:
        return 1
    return EXIT_CONTRACT if quarantined else 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import horizon_sweep, ring_size_sweep
    from repro.analysis.reporting import banner, format_table

    model = _resolve_model(args)
    policy = _build_policy(args)
    guards = _build_guards(args)
    sizes = tuple(int(s) for s in args.sizes.split(","))
    final = model.proof_chain(model.n_default).final_statement
    source, target = final.source.name, final.target.name
    print(banner(f"{model.sweep_noun} sweep"))
    with _checkpoint_scope(policy):
        rows = ring_size_sweep(
            sizes=sizes, seed=args.seed, samples_per_pair=args.samples,
            time_samples=args.samples, workers=args.workers, policy=policy,
            guards=guards, engine=args.engine,
            state_budget=args.state_budget, model=model,
        )
    print(format_table(
        ("n", f"min P[{source} -{final.time_bound}-> {target}]",
         "claimed", "worst mean time"),
        [
            (r.n, f"{r.min_success_estimate:.3f}", f"{r.claimed:.3f}",
             f"{r.mean_time_to_c:.2f}")
            for r in rows
        ],
    ))
    print()
    print(banner(f"Deadline sweep (n = {model.n_default})"))
    with _checkpoint_scope(policy):
        hrows = horizon_sweep(
            n=model.n_default, seed=args.seed,
            samples_per_pair=args.samples,
            workers=args.workers, policy=policy, guards=guards,
            engine=args.engine, state_budget=args.state_budget,
            model=model,
        )
    print(format_table(
        ("deadline", f"min P[{source} -t-> {target}]"),
        [(r.time_bound, f"{r.min_success_estimate:.3f}") for r in hrows],
    ))
    return 0


def _cmd_election(args: argparse.Namespace) -> int:
    from repro.algorithms import election as el
    from repro.analysis.reporting import banner

    chain = el.election_proof(args.n)
    print(banner(f"Leader election, {args.n} candidates"))
    print(chain.ledger.explain(chain.final_id))
    print(f"\nexpected-time bound: {el.election_expected_time_bound(args.n)}")
    return 0


def _cmd_benor(args: argparse.Namespace) -> int:
    from repro.algorithms import benor as bo
    from repro.analysis.reporting import banner

    statement = bo.benor_progress_statement(args.n)
    print(banner(f"Ben-Or consensus, {args.n} processes"))
    print(f"progress statement: {statement!r}")
    print(f"expected-time bound: {bo.benor_expected_time_bound(args.n)}")
    return 0


def _cmd_independence(args: argparse.Namespace) -> int:
    from repro.algorithms.coins import (
        FLIP_P,
        FLIP_Q,
        HEADS,
        TAILS,
        both_flip_adversary,
        never_flip_q_adversary,
        p_heads,
        peek_adversary,
        q_tails,
        two_coin_automaton,
    )
    from repro.analysis.reporting import banner, format_table
    from repro.automaton.execution import ExecutionFragment
    from repro.events.independence import proposition_4_2_claims
    from repro.execution.automaton import ExecutionAutomaton
    from repro.execution.measure import exact_event_probability

    automaton = two_coin_automaton()
    first_claim, next_claim = proposition_4_2_claims(
        automaton,
        [(FLIP_P, p_heads), (FLIP_Q, q_tails)],
        automaton.states,
    )
    start = ExecutionFragment.initial((None, None))
    print(banner("Example 4.1 / Proposition 4.2 (exact)"))
    rows = []
    failures = 0
    for name, adversary in [
        ("both-flip", both_flip_adversary()),
        ("peek-q-on-H", peek_adversary(HEADS)),
        ("peek-q-on-T", peek_adversary(TAILS)),
        ("never-flip-q", never_flip_q_adversary()),
    ]:
        tree = ExecutionAutomaton(automaton, adversary, start)
        conj = exact_event_probability(tree, first_claim.event, 4)
        nxt = exact_event_probability(tree, next_claim.event, 4)
        ok = conj >= first_claim.lower_bound and nxt >= next_claim.lower_bound
        failures += not ok
        rows.append((name, str(conj), str(nxt), "ok" if ok else "FAILS"))
    print(format_table(
        ("adversary", f"conjunction (>= {first_claim.lower_bound})",
         f"next (>= {next_claim.lower_bound})", "verdict"),
        rows,
    ))
    return 1 if failures else 0


def _write_trace(registry, path: str, reports: Sequence[dict] = ()) -> int:
    """Write the run's trace as JSONL; returns a process exit code."""
    from repro.obs.sinks import JsonlSink

    try:
        written = JsonlSink(path).write_run(registry, reports=reports)
    except OSError as error:
        print(f"repro: error: cannot write trace to {path}: {error}",
              file=sys.stderr)
        return 1
    print(f"\nwrote {written} trace records to {path}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.analysis.montecarlo import check_all_leaves
    from repro.analysis.reporting import banner
    from repro.mdp.expected_time import extremal_expected_time_rounds
    from repro.obs.profile import profile_tracer
    from repro.obs.sinks import (
        metric_records,
        render_metric_tables,
        render_span_tree,
    )

    model = _resolve_model(args)
    target_name = model.proof_chain(args.n).final_statement.target.name
    policy = _build_policy(args)
    guards = _build_guards(args)
    with obs.recording() as registry, _checkpoint_scope(policy):
        with obs.span(
            "stats.run", n=args.n, seed=args.seed, samples=args.samples
        ):
            setup = model.build(args.n)
            reports = check_all_leaves(
                setup, seed=args.seed, samples_per_pair=args.samples,
                workers=args.workers, policy=policy, guards=guards,
                engine=args.engine, state_budget=args.state_budget,
            )
            with obs.span("stats.value_iteration", n=args.n):
                worst_rounds = extremal_expected_time_rounds(
                    setup.automaton,
                    setup.view,
                    model.target,
                    model.mdp_reference(args.n),
                    model.untimed,
                    maximise=True,
                )
    # Stash the recording for the run manifest main() writes.
    args.final_metrics = metric_records(registry.metrics)
    args.final_profile = profile_tracer(registry.tracer)
    failures = sum(report.refuted for report in reports.values())
    print(banner(f"Instrumented {model.title} run, "
                 f"{model.size_noun} {args.n}"))
    print("\nspan tree")
    print("---------")
    print(render_span_tree(registry.tracer))
    print()
    print(render_metric_tables(registry.metrics))
    print(f"\nworst-case expected rounds to {target_name} "
          f"(round-synchronous): {worst_rounds:.4f}")
    print(f"refuted statements: {failures}")
    skips = _quarantine_lines(*reports.values())
    if skips:
        print()
        print("\n".join(skips))
    sink_code = _write_trace(
        registry, args.trace_out,
        reports=[report.to_dict() for report in reports.values()],
    ) if args.trace_out else 0
    if failures:
        return 1
    return EXIT_CONTRACT if skips else sink_code


def _cmd_audit(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.reporting import banner
    from repro.contracts import audit_automaton

    model = _resolve_model(args)
    automaton = model.build(args.n).automaton
    report = audit_automaton(automaton, horizon=args.horizon)
    if args.json:
        print(json.dumps(report.to_dict(), sort_keys=True, indent=2))
    else:
        print(banner(
            f"Definition 2.1 audit of the {model.title} automaton, "
            f"{model.size_noun} {args.n}"
        ))
        print(report.summary_line())
        for finding in report.findings:
            print(f"  {finding.describe()}")
        if report.findings_dropped:
            print(f"  ... and {report.findings_dropped} more finding(s)")
        if report.exhausted:
            print(
                "note: the reachable-state walk hit the horizon "
                f"({args.horizon} states); raise --horizon for full "
                "coverage"
            )
    return 0 if report.ok else EXIT_CONTRACT


def _cmd_models(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.reporting import banner, format_table
    from repro.models import registered_models

    records = []
    for model in registered_models():
        setup = model.build(model.n_default)
        records.append({
            "name": model.name,
            "title": model.title,
            "description": model.description,
            "schema": model.schema_name,
            "n_default": model.n_default,
            "n_range": model.n_range,
            "default_prop": model.default_prop,
            "adversaries": [name for name, _ in setup.adversaries],
            "quotient": (
                "untimed+symmetry" if model.symmetry_spec is not None
                else "untimed"
            ),
            "sweep_sizes": list(model.sweep_sizes),
        })
    if args.json:
        print(json.dumps(records, sort_keys=True, indent=2))
        return 0
    print(banner("Registered models"))
    print(format_table(
        ("model", "title", "default n", "n-range", "adversaries",
         "quotient"),
        [
            (
                record["name"],
                record["title"],
                record["n_default"],
                record["n_range"],
                len(record["adversaries"]),
                record["quotient"],
            )
            for record in records
        ],
    ))
    for record in records:
        print(f"\n{record['name']}: {record['description']}")
        print(f"  adversary family: {', '.join(record['adversaries'])}")
        print(f"  schema: {record['schema']}; default proposition: "
              f"{record['default_prop']}; sweep sizes: "
              f"{','.join(str(s) for s in record['sweep_sizes'])}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.analysis.reporting import banner
    from repro.obs.profile import profile_tracer
    from repro.obs.sinks import (
        metric_records,
        render_metric_tables,
        render_span_tree,
    )

    parser = build_parser()
    inner = parser.parse_args(args.rest)
    if getattr(inner, "manages_tracing", False):
        parser.error(
            f"cannot trace {inner.command!r}: it manages instrumentation "
            "itself"
        )
    with obs.recording() as registry:
        code = inner.func(inner)
    args.final_metrics = metric_records(registry.metrics)
    args.final_profile = profile_tracer(registry.tracer)
    print()
    print(banner(f"trace of 'repro {' '.join(args.rest)}'"))
    print(render_span_tree(registry.tracer))
    print()
    print(render_metric_tables(registry.metrics))
    trace_out = args.trace_out or getattr(inner, "trace_out", None)
    sink_code = _write_trace(registry, trace_out) if trace_out else 0
    return code or sink_code


def _cmd_runs(args: argparse.Namespace) -> int:
    import json

    from repro.obs import manifest as mf

    if args.runs_cmd == "list":
        manifests = mf.load_manifests(args.runs_dir)
        if args.json:
            print(json.dumps(manifests, sort_keys=True, indent=2))
        else:
            print(mf.render_runs_table(manifests))
        return 0
    if args.runs_cmd == "show":
        record = mf.find_manifest(args.id, args.runs_dir)
        if record is None:
            print(f"repro: error: no recorded run matches {args.id!r}",
                  file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(record, sort_keys=True, indent=2))
        else:
            print(mf.render_manifest(record))
        return 0
    # diff
    old = mf.find_manifest(args.old, args.runs_dir)
    new = mf.find_manifest(args.new, args.runs_dir)
    missing = [
        run_id for run_id, record in ((args.old, old), (args.new, new))
        if record is None
    ]
    if missing:
        print(
            f"repro: error: no recorded run matches "
            f"{', '.join(repr(run_id) for run_id in missing)}",
            file=sys.stderr,
        )
        return 2
    comparison = mf.diff_manifests(old, new)
    if args.json:
        print(json.dumps(comparison, sort_keys=True, indent=2))
    else:
        print(mf.render_diff(comparison))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs import manifest as mf
    from repro.obs import profile as prof
    from repro.obs.sinks import read_jsonl

    if args.run and args.source:
        print("repro: error: give a trace file or --run, not both",
              file=sys.stderr)
        return 2
    if args.run:
        record = mf.find_manifest(args.run, args.runs_dir)
        if record is None:
            print(f"repro: error: no recorded run matches {args.run!r}",
                  file=sys.stderr)
            return 2
        rows = prof.merge_profiles([record.get("profile") or []])
    elif args.source:
        try:
            records = read_jsonl(args.source)
        except OSError as error:
            print(f"repro: error: cannot read {args.source}: {error}",
                  file=sys.stderr)
            return 2
        rows = prof.aggregate_spans(records)
    else:
        print("repro: error: give a --trace-out JSONL file or --run ID",
              file=sys.stderr)
        return 2
    if args.folded:
        print(prof.render_folded(rows))
    else:
        print(prof.render_profile(rows, top=args.top))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Lynch/Saias/Segala, 'Proving Time Bounds "
            "for Randomized Distributed Algorithms' (PODC 1994)."
        ),
        epilog=MODELS_EPILOG + EXIT_STATUS_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    traceable = argparse.ArgumentParser(add_help=False)
    traceable.add_argument(
        "--trace-out", metavar="FILE.jsonl", default=None,
        help="record spans and metrics to a JSONL trace file",
    )
    traceable.add_argument(
        "--no-manifest", action="store_false", dest="manifest",
        help="do not append a provenance record for this run to the "
             "manifest store (default: record one)",
    )
    traceable.add_argument(
        "--runs-dir", metavar="DIR", default=None, dest="runs_dir",
        help="manifest store location (default: $REPRO_RUNS_DIR or "
             ".repro/runs)",
    )

    def add_command(name, **kwargs):
        return sub.add_parser(name, parents=[traceable], **kwargs)

    def robust(p):
        """Fault-tolerance flags shared by the sampling subcommands."""
        p.add_argument(
            "--progress", action="store_true",
            help="render a live progress line (tasks done, rate, ETA, "
                 "retry/quarantine/degradation counters) on stderr; "
                 "stdout stays byte-identical with or without it",
        )
        p.add_argument(
            "--timeout", type=float, default=None, metavar="SECONDS",
            help="per-task wall-clock timeout; hung workers are "
                 "terminated and the task is retried",
        )
        p.add_argument(
            "--retries", type=int, default=DEFAULT_RETRIES, metavar="N",
            help="retries per task after a worker crash, timeout, or "
                 "corrupted result (default: %(default)s)",
        )
        p.add_argument(
            "--checkpoint", metavar="FILE.jsonl", default=None,
            help="append completed task results to a crash-safe JSONL "
                 "checkpoint",
        )
        p.add_argument(
            "--resume", action="store_true",
            help="skip tasks already recorded in --checkpoint; the "
                 "resumed report is bit-identical to an uninterrupted run",
        )
        p.add_argument(
            "--inject-faults", metavar="SPEC", default=None,
            help="deterministically inject worker failures, e.g. "
                 "'crash=0.1,hang=0.05,corrupt=0.02,seed=7' "
                 "(see docs/robustness.md)",
        )
        p.add_argument(
            "--guards", choices=("off", "warn", "strict"), default="warn",
            help="model-contract enforcement: 'off' skips all checks, "
                 "'warn' reports violations once per site on stderr, "
                 "'strict' quarantines the offending (adversary, start) "
                 "pair and exits with status 4 (default: %(default)s; "
                 "see docs/contracts.md)",
        )
        p.add_argument(
            "--fuel", metavar="SPEC", default=None,
            help="per-execution budget surfacing nontermination, e.g. "
                 "'5000' (steps) or 'steps=5000,seconds=2.5'; requires "
                 "--guards warn or strict",
        )
        p.add_argument(
            "--engine",
            choices=("tree", "compiled", "batched", "batched-pure", "auto"),
            default="tree",
            help="evaluation strategy: 'tree' walks the live object "
                 "graph, 'compiled' interns the reachable state space "
                 "once and samples index tables (errors when the "
                 "--state-budget is exceeded), 'batched' additionally "
                 "flattens the tables into arrays and draws uniforms in "
                 "blocks (numpy-accelerated when available), "
                 "'batched-pure' is 'batched' with the numpy filler "
                 "forced off, 'auto' prefers the batched walk when the "
                 "space fits and falls back to the tree walk otherwise; "
                 "reports are byte-identical whichever engine ran "
                 "(default: %(default)s; see docs/statespace.md)",
        )
        p.add_argument(
            "--state-budget", type=int, default=None, metavar="N",
            dest="state_budget",
            help="cap on interned states (and per-adversary product "
                 "nodes) for --engine compiled/batched/auto "
                 "(default: 200000)",
        )

    def model_flag(p):
        p.add_argument(
            "--model", default="lr", metavar="NAME",
            help="registered case-study model to verify (default: "
                 "%(default)s; list them with 'repro models')",
        )

    def common(p, samples_default=80):
        model_flag(p)
        p.add_argument(
            "--n", type=int, default=None,
            help="instance size (default: the model's own, 3 for lr)",
        )
        p.add_argument("--seed", type=int, default=0, help="RNG seed")
        p.add_argument(
            "--samples", type=int, default=samples_default,
            help="Monte-Carlo samples per (adversary, start) pair",
        )
        p.add_argument(
            "--workers", type=int, default=1,
            help="sampling worker processes (1 = sequential; results "
                 "are identical for every count)",
        )
        robust(p)

    add_command("prove", help="print the Section 6.2 derivation")\
        .set_defaults(func=_cmd_prove)

    p = add_command("verify", help="Monte-Carlo check of all statements")
    common(p)
    p.set_defaults(func=_cmd_verify)

    p = add_command(
        "check", help="Monte-Carlo check of one statement (see --prop)"
    )
    common(p)
    p.add_argument(
        "--prop", default=None,
        help="leaf proposition name (e.g. A.14) or 'composed' "
             "(default: the model's own, 'composed' for lr)",
    )
    p.add_argument(
        "--early-stop", action="store_true", dest="early_stop",
        help="stop a pair early once its confidence bounds decide it",
    )
    p.add_argument(
        "--json", action="store_true",
        help="print the full report as canonical JSON",
    )
    p.set_defaults(func=_cmd_check)

    p = add_command(
        "chain", help="derive and check the composed T --13-->_1/8 C chain"
    )
    common(p)
    p.add_argument(
        "--early-stop", action="store_true", dest="early_stop",
        help="stop a pair early once its confidence bounds decide it",
    )
    p.set_defaults(func=_cmd_chain)

    p = add_command("exact", help="exact round-synchronous minima")
    p.add_argument("--n", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--states", type=int, default=6,
                   help="sampled start states per region")
    p.set_defaults(func=_cmd_exact)

    p = add_command("appendix", help="check the appendix lemmas exactly")
    p.add_argument("--n", type=int, default=3)
    p.set_defaults(func=_cmd_appendix)

    p = add_command("expected-time", help="measured time-to-critical")
    common(p)
    p.set_defaults(func=_cmd_expected_time)

    p = add_command("sweep", help="instance-size and deadline ablations")
    model_flag(p)
    p.add_argument(
        "--sizes", default=None,
        help="comma-separated instance sizes (default: the model's "
             "own, 3,4,5 for lr)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--samples", type=int, default=40)
    p.add_argument("--workers", type=int, default=1)
    robust(p)
    p.set_defaults(func=_cmd_sweep)

    p = add_command("election", help="the leader-election case study")
    p.add_argument("--n", type=int, default=4)
    p.set_defaults(func=_cmd_election)

    p = add_command("benor", help="the Ben-Or consensus case study")
    p.add_argument("--n", type=int, default=3)
    p.set_defaults(func=_cmd_benor)

    add_command(
        "independence", help="Example 4.1 / Proposition 4.2, exactly"
    ).set_defaults(func=_cmd_independence)

    p = sub.add_parser(
        "models",
        help="list the registered case-study models "
             "(see docs/models.md)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="print the model table as canonical JSON",
    )
    p.set_defaults(func=_cmd_models, manages_tracing=True,
                   skip_manifest=True)

    p = add_command(
        "exhaustive",
        help="leaf propositions over their entire regions (n = 3), "
        "optionally the composed statement over all T states",
    )
    p.add_argument("--composed", action="store_true",
                   help="also sweep T --13--> C over all 3896 T states "
                        "(about 40 seconds)")
    p.set_defaults(func=_cmd_exhaustive)

    p = add_command(
        "all", help="the fast exact suite: prove, exact, appendix, "
        "independence",
    )
    p.add_argument("--n", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--states", type=int, default=5)
    p.set_defaults(func=_cmd_all)

    p = add_command(
        "audit",
        help="static Definition 2.1 audit of the selected model's "
             "automaton",
    )
    model_flag(p)
    p.add_argument(
        "--n", type=int, default=None,
        help="instance size (default: the model's own, 3 for lr)",
    )
    p.add_argument(
        "--horizon", type=int, default=2000,
        help="cap on reachable states to expand before reporting "
             "'unknown' (default: %(default)s)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="print the full audit report as canonical JSON",
    )
    p.set_defaults(func=_cmd_audit)

    p = add_command(
        "stats",
        help="instrumented Lehmann-Rabin run: span tree and metric tables",
    )
    common(p, samples_default=40)
    p.set_defaults(func=_cmd_stats, manages_tracing=True)

    p = add_command(
        "trace",
        help="run another subcommand with instrumentation on and render "
        "its span tree and metric tables",
    )
    p.add_argument(
        "rest", nargs=argparse.REMAINDER, metavar="command ...",
        help="the subcommand (and its arguments) to trace",
    )
    p.set_defaults(func=_cmd_trace, manages_tracing=True)

    p = sub.add_parser(
        "runs",
        help="list, show, and diff recorded run manifests "
        "(see docs/observability.md)",
    )
    runs_sub = p.add_subparsers(dest="runs_cmd", required=True)

    def runs_store_flags(rp):
        rp.add_argument(
            "--runs-dir", metavar="DIR", default=None, dest="runs_dir",
            help="manifest store location (default: $REPRO_RUNS_DIR or "
                 ".repro/runs)",
        )
        rp.add_argument(
            "--json", action="store_true",
            help="print the result as canonical JSON",
        )

    rp = runs_sub.add_parser("list", help="one row per recorded run")
    runs_store_flags(rp)
    rp = runs_sub.add_parser("show", help="one manifest, fully expanded")
    rp.add_argument("id", help="run id (any unique prefix)")
    runs_store_flags(rp)
    rp = runs_sub.add_parser(
        "diff", help="metric and timing deltas between two runs "
        "(meaningful for runs of the same scope)",
    )
    rp.add_argument("old", help="baseline run id (any unique prefix)")
    rp.add_argument("new", help="comparison run id (any unique prefix)")
    runs_store_flags(rp)
    p.set_defaults(
        func=_cmd_runs, manages_tracing=True, skip_manifest=True
    )

    p = sub.add_parser(
        "profile",
        help="fold a recorded span tree into per-phase self/cumulative "
        "hotspots (from a --trace-out JSONL file or a run manifest)",
    )
    p.add_argument(
        "source", nargs="?", default=None, metavar="FILE.jsonl",
        help="a --trace-out JSONL trace file to profile",
    )
    p.add_argument(
        "--run", metavar="ID", default=None,
        help="profile the span aggregate stored in this run's manifest",
    )
    p.add_argument(
        "--runs-dir", metavar="DIR", default=None, dest="runs_dir",
        help="manifest store location for --run (default: "
             "$REPRO_RUNS_DIR or .repro/runs)",
    )
    p.add_argument(
        "--top", type=int, default=20, metavar="N",
        help="hotspots to show, ranked by self time (default: "
             "%(default)s)",
    )
    p.add_argument(
        "--folded", action="store_true",
        help="emit folded 'stack self_microseconds' lines for "
             "flamegraph tooling instead of the table",
    )
    p.set_defaults(
        func=_cmd_profile, manages_tracing=True, skip_manifest=True
    )

    p = sub.add_parser(
        "corpus",
        help="list, replay, and extend the standing defect corpus "
        "(see docs/corpus.md)",
    )
    corpus_sub = p.add_subparsers(dest="corpus_cmd", required=True)

    def corpus_file_flag(cp):
        cp.add_argument(
            "--corpus-file", metavar="FILE.jsonl", default=None,
            dest="corpus_file",
            help="fuzz-emitted / user-added entries replayed alongside "
                 "the built-ins (default: .repro/corpus/extra.jsonl)",
        )

    cp = corpus_sub.add_parser(
        "list", help="one row per corpus entry (built-in and file)"
    )
    corpus_file_flag(cp)
    cp.add_argument(
        "--json", action="store_true",
        help="print the entry table as canonical JSON",
    )
    cp.set_defaults(skip_manifest=True)

    cp = corpus_sub.add_parser(
        "run", parents=[traceable],
        help="replay entries across engines x guard modes x worker "
             "counts, asserting identical classification",
    )
    corpus_file_flag(cp)
    cp.add_argument(
        "--entry", metavar="NAME", default=None,
        help="replay only the named entry (default: all)",
    )
    cp.add_argument(
        "--json", action="store_true",
        help="print the full matrix report as canonical JSON",
    )

    cp = corpus_sub.add_parser(
        "add", help="validate fuzz finding records and append them to "
                    "the corpus file",
    )
    cp.add_argument(
        "finding", metavar="FINDINGS.jsonl",
        help="a JSONL file of finding records (e.g. from "
             "'repro fuzz --emit')",
    )
    corpus_file_flag(cp)
    cp.set_defaults(skip_manifest=True)
    p.set_defaults(func=_cmd_corpus)

    p = add_command(
        "fuzz",
        help="deterministic differential fuzzing of the sampling "
        "engines (see docs/corpus.md)",
    )
    p.add_argument(
        "--budget", type=int, default=50, metavar="N",
        help="generated cases to diff before declaring the campaign "
             "clean (default: %(default)s)",
    )
    p.add_argument(
        "--seed", type=int, default=0,
        help="campaign root seed; the same seed and budget reproduce "
             "the identical campaign byte for byte",
    )
    p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes per engine run (results are identical "
             "for every count)",
    )
    p.add_argument(
        "--sabotage", metavar="ENGINE", default=None,
        help="deliberately perturb this engine's classification before "
             "diffing — a smoke test that the harness catches, shrinks, "
             "and reports a divergence",
    )
    p.add_argument(
        "--model", default=None, metavar="NAME",
        help="also target this registered model's automaton: every "
             "generated case runs the model with a deterministically "
             "mutated (or healthy) build (default: the tiny synthetic "
             "automaton only)",
    )
    p.add_argument(
        "--emit", metavar="FILE.jsonl", default=None,
        help="append ready-to-commit corpus records for any findings "
             "(replay with 'repro corpus run --corpus-file FILE.jsonl')",
    )
    p.add_argument(
        "--json", action="store_true",
        help="print the campaign report as canonical JSON",
    )
    p.set_defaults(func=_cmd_fuzz)

    def service_store_flag(sp):
        sp.add_argument(
            "--store", metavar="DIR", default=None,
            help="job store location (default: $REPRO_SERVICE_DIR or "
                 ".repro/service)",
        )

    p = sub.add_parser(
        "submit",
        help="validate a verification command and append it to the "
             "durable job store (see docs/service.md)",
    )
    service_store_flag(p)
    p.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        dest="max_attempts",
        help="execution failures before the job is marked failed "
             "(default: %(default)s)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="print the submitted job record as canonical JSON",
    )
    p.add_argument(
        "spec", nargs=argparse.REMAINDER, metavar="command ...",
        help="the verification command to run, e.g. "
             "'check --prop A.14 --samples 200'",
    )
    p.set_defaults(func=_cmd_submit, skip_manifest=True)

    p = sub.add_parser(
        "serve", parents=[traceable],
        help="run supervised workers over the job store until drained "
             "or stopped (see docs/service.md)",
    )
    service_store_flag(p)
    p.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes to supervise (default: %(default)s)",
    )
    p.add_argument(
        "--lease", type=float, default=30.0, metavar="SECONDS",
        help="job lease duration; a worker silent this long is "
             "presumed dead and its job is reclaimed (default: "
             "%(default)s)",
    )
    p.add_argument(
        "--drain", action="store_true",
        help="exit once every job is settled instead of serving "
             "forever",
    )
    p.add_argument(
        "--poll", type=float, default=0.1, metavar="SECONDS",
        help="supervisor/worker polling interval (default: "
             "%(default)s)",
    )
    p.add_argument(
        "--backoff", type=float, default=0.2, metavar="SECONDS",
        help="base restart backoff, doubled per consecutive young "
             "crash (default: %(default)s)",
    )
    p.add_argument(
        "--max-restarts", type=int, default=5, metavar="N",
        dest="max_restarts",
        help="consecutive young unclean worker exits a slot tolerates "
             "before the supervisor declares a crash loop (default: "
             "%(default)s)",
    )
    p.add_argument(
        "--healthy-seconds", type=float, default=5.0, metavar="SECONDS",
        dest="healthy_seconds",
        help="a worker living this long resets its slot's crash "
             "streak (default: %(default)s)",
    )
    p.add_argument(
        "--inject-faults", metavar="SPEC", default=None,
        help="deterministically inject service failures, e.g. "
             "'kill=0.3,steal=0.2,torn=0.1,cache=0.1,seed=7' "
             "(see docs/service.md)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="print the serve summary as canonical JSON",
    )
    p.set_defaults(func=_cmd_serve, skip_manifest=True)

    p = sub.add_parser(
        "jobs",
        help="list, show, and cancel jobs in the durable job store "
             "(see docs/service.md)",
    )
    jobs_sub = p.add_subparsers(dest="jobs_cmd", required=True)
    jp = jobs_sub.add_parser("list", help="one row per stored job")
    service_store_flag(jp)
    jp.add_argument(
        "--json", action="store_true",
        help="print the job table as canonical JSON",
    )
    jp = jobs_sub.add_parser("show", help="one job, fully expanded")
    jp.add_argument("id", help="job id (any unique prefix)")
    service_store_flag(jp)
    jp.add_argument(
        "--json", action="store_true",
        help="print the job record as canonical JSON",
    )
    jp = jobs_sub.add_parser(
        "cancel", help="cancel a pending or running job"
    )
    jp.add_argument("id", help="job id (any unique prefix)")
    service_store_flag(jp)
    jp.add_argument(
        "--json", action="store_true",
        help="print the cancelled job record as canonical JSON",
    )
    p.set_defaults(func=_cmd_jobs, skip_manifest=True)

    return parser


def _cmd_exhaustive(args: argparse.Namespace) -> int:
    from repro.models.lr import lr_exact_commands

    return lr_exact_commands().cmd_exhaustive(args)


def _cmd_all(args: argparse.Namespace) -> int:
    """Run the exact (non-sampling) commands back to back."""
    failures = 0
    failures += _cmd_prove(args)
    print()
    failures += _cmd_exact(args)
    print()
    failures += _cmd_appendix(args)
    print()
    failures += _cmd_independence(args)
    return 1 if failures else 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro import corpus
    from repro.analysis.reporting import banner, format_table
    from repro.errors import VerificationError

    corpus_file = Path(
        getattr(args, "corpus_file", None) or corpus.DEFAULT_CORPUS_FILE
    )

    if args.corpus_cmd == "list":
        try:
            entries = list(corpus.builtin_entries()) + list(
                corpus.load_file_entries(corpus_file)
            )
        except VerificationError as error:
            print(f"repro: error: {error}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(
                [
                    {
                        "name": entry.name,
                        "source": entry.source,
                        "kind": entry.kind,
                        "expected_class": entry.expected_class,
                        "engines": list(entry.engines),
                        "workers": list(entry.workers),
                        "description": entry.description,
                    }
                    for entry in entries
                ],
                sort_keys=True, indent=2,
            ))
            return 0
        print(banner("Defect corpus"))
        print(format_table(
            ("entry", "kind", "expected class", "source"),
            [
                (
                    entry.name,
                    entry.kind,
                    entry.expected_class or "(agreement)",
                    entry.source,
                )
                for entry in entries
            ],
        ))
        return 0

    if args.corpus_cmd == "add":
        source = Path(args.finding)
        if not source.exists():
            print(
                f"repro: error: finding file {source} does not exist",
                file=sys.stderr,
            )
            return 2
        records = []
        try:
            for lineno, line in enumerate(
                source.read_text(encoding="utf-8").splitlines(), start=1
            ):
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                if not isinstance(record, dict) or "case" not in record:
                    raise VerificationError(
                        f"{source}:{lineno}: expected an object with a "
                        f"'case' field"
                    )
                # Validation: the record must materialise into a
                # runnable case before it is allowed into the corpus.
                corpus.entry_from_record(record, source=str(source)).build()
                records.append(record)
        except (json.JSONDecodeError, VerificationError, KeyError) as error:
            print(f"repro: error: bad finding record: {error}",
                  file=sys.stderr)
            return 2
        if not records:
            print(f"repro: error: no records found in {source}",
                  file=sys.stderr)
            return 2
        from repro import durable_io

        corpus_file.parent.mkdir(parents=True, exist_ok=True)
        with durable_io.DurableAppender(str(corpus_file)) as appender:
            for record in records:
                appender.append_json(record)
        print(
            f"corpus: added {len(records)} entr"
            f"{'y' if len(records) == 1 else 'ies'} to {corpus_file}"
        )
        return 0

    # corpus run
    try:
        entries = list(corpus.builtin_entries()) + list(
            corpus.load_file_entries(corpus_file)
        )
        if args.entry:
            entries = [corpus.entry_by_name(args.entry, tuple(entries))]
    except VerificationError as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 2
    report = corpus.run_corpus(entries)
    if args.json:
        print(json.dumps(report.to_dict(), sort_keys=True, indent=2))
    else:
        print(report.describe())
        for problem in report.problems:
            print(f"repro: corpus divergence: {problem}")
    return report.exit_status


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro import corpus
    from repro.errors import VerificationError

    try:
        report = corpus.run_fuzz(
            seed=args.seed,
            budget=args.budget,
            workers=args.workers,
            sabotage=args.sabotage,
            model=args.model,
        )
    except VerificationError as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 2
    if args.emit and report.findings:
        from repro import durable_io

        emit_path = Path(args.emit)
        if emit_path.parent != Path("."):
            emit_path.parent.mkdir(parents=True, exist_ok=True)
        with durable_io.DurableAppender(str(emit_path)) as appender:
            for finding in report.findings:
                appender.append_json(
                    corpus.corpus_record(finding, seed=args.seed)
                )
    if args.json:
        print(json.dumps(report.to_dict(), sort_keys=True, indent=2))
    else:
        print(report.describe())
        for finding in report.findings:
            print("minimal repro (ready for 'repro corpus add'):")
            print(json.dumps(
                corpus.corpus_record(finding, seed=args.seed),
                sort_keys=True,
            ))
    return 0 if report.ok else EXIT_DIVERGENCE


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro import service
    from repro.errors import VerificationError

    spec_argv = list(args.spec)
    if spec_argv and spec_argv[0] == "--":
        spec_argv = spec_argv[1:]
    try:
        spec = service.JobSpec.parse(spec_argv)
        store = service.JobStore(service.resolve_store_dir(args.store))
        with store:
            view = store.submit(spec, max_attempts=args.max_attempts)
    except VerificationError as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(view.to_dict(), sort_keys=True, indent=2))
    else:
        print(
            f"submitted {view.job_id} "
            f"(command: {' '.join(spec.argv)}; scope {spec.scope[:12]})"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from repro import service
    from repro.errors import VerificationError
    from repro.parallel.faults import FaultPlan

    try:
        if args.inject_faults:
            FaultPlan.parse(args.inject_faults)  # fail fast on typos
        supervisor = service.Supervisor(
            root=service.resolve_store_dir(args.store),
            workers=args.workers,
            lease_seconds=args.lease,
            drain=args.drain,
            fault_spec=args.inject_faults,
            poll_seconds=args.poll,
            backoff_seconds=args.backoff,
            max_restarts=args.max_restarts,
            healthy_seconds=args.healthy_seconds,
        )
        summary = supervisor.run()
    except VerificationError as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(summary, sort_keys=True, indent=2))
    else:
        states = ", ".join(
            f"{state}={count}"
            for state, count in sorted(summary["jobs"].items())
        )
        print(
            f"serve: {summary['completed_this_run']} job(s) completed "
            f"this run ({summary['served_from_cache']} from cache), "
            f"{summary['workers_restarted']} worker restart(s), "
            f"{summary['leases_reclaimed']} lease(s) reclaimed"
        )
        print(f"jobs: {states or 'none submitted'}")
    return 3 if summary["jobs"].get("failed") else 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    import json

    from repro import service
    from repro.errors import VerificationError
    from repro.obs.sinks import _table

    store = service.JobStore(service.resolve_store_dir(args.store))
    try:
        with store:
            if args.jobs_cmd == "list":
                views = sorted(
                    store.jobs().values(), key=lambda view: view.seq
                )
                if args.json:
                    print(json.dumps(
                        [view.to_dict() for view in views],
                        sort_keys=True, indent=2,
                    ))
                elif not views:
                    print("jobs: none submitted")
                else:
                    print(_table(
                        ("job", "state", "command", "claims", "fails",
                         "exit", "cached"),
                        [
                            (
                                view.job_id,
                                view.state,
                                " ".join(view.argv)[:48],
                                view.claims,
                                view.failures,
                                "" if view.exit_status is None
                                else view.exit_status,
                                "yes" if view.cached else "",
                            )
                            for view in views
                        ],
                    ))
                return 0
            view = store.find(args.id)
            if args.jobs_cmd == "cancel":
                view = store.cancel(view.job_id)
    except VerificationError as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(view.to_dict(), sort_keys=True, indent=2))
    else:
        record = view.to_dict()
        record["argv"] = " ".join(view.argv)
        for key in sorted(record):
            print(f"{key:>12}: {record[key]}")
    return 0


# Namespace attributes that never belong in a manifest's scope
# fingerprint: plumbing (parser internals, store location), output-only
# switches, and the robustness/engine flags whose reports are
# byte-identical by construction (docs/parallel.md, docs/robustness.md,
# docs/statespace.md) — two runs differing only in these must share a
# scope so ``repro runs diff`` can compare them.
_NON_SCOPE_KEYS = frozenset({
    "func", "command", "manages_tracing", "skip_manifest",
    "manifest", "runs_dir", "trace_out", "progress", "json",
    "workers", "engine", "state_budget",
    "timeout", "retries", "checkpoint", "resume", "inject_faults",
    "emit",
})


def _manifest_config(args: argparse.Namespace) -> dict:
    """The result-affecting configuration a manifest's scope hashes.

    The model-dependent flags the parser leaves as ``None`` (``--n``,
    ``--prop``, ``--sizes``) are resolved to the selected model's
    defaults, so a run spelling out a default and one omitting it share
    a scope fingerprint — and the job service's result cache is keyed
    per model.
    """
    config = {
        key: value
        for key, value in sorted(vars(args).items())
        if key not in _NON_SCOPE_KEYS
        and not key.startswith("final_")
        and not callable(value)
    }
    if config.get("model"):
        from repro.errors import UnknownModelError
        from repro.models import get_model

        try:
            model = get_model(config["model"])
        except UnknownModelError:
            # The run itself already failed with a usage error; hash
            # the unresolved flags rather than fail manifest writing.
            return config
        if "n" in config and config["n"] is None:
            config["n"] = model.n_default
        if "prop" in config and config["prop"] is None:
            config["prop"] = model.default_prop
        if "sizes" in config and config["sizes"] is None:
            config["sizes"] = ",".join(
                str(size) for size in model.sweep_sizes
            )
    return config


def _maybe_write_manifest(
    args: argparse.Namespace,
    argv: Sequence[str],
    started_at: str,
    wall_s: float,
    exit_status: int,
) -> None:
    """Append this run's provenance record, unless opted out.

    Meta-commands (``runs``, ``profile``) set ``skip_manifest`` — they
    inspect the store, they are not verification runs.  Failures are
    soft and stderr-only: provenance must never break or reorder the
    run's own output.
    """
    if getattr(args, "skip_manifest", False):
        return
    if not getattr(args, "manifest", True):
        return
    from repro.obs import manifest as mf

    record = mf.new_manifest(
        args.command,
        argv,
        _manifest_config(args),
        started_at=started_at,
        wall_s=wall_s,
        exit_status=exit_status,
        metrics=getattr(args, "final_metrics", None),
        profile=getattr(args, "final_profile", None),
        git_rev=mf.git_revision(),
    )
    mf.append_manifest(record, getattr(args, "runs_dir", None))


def _dispatch(args: argparse.Namespace) -> int:
    """Run the selected subcommand, wiring tracing and progress."""
    from contextlib import ExitStack

    with ExitStack() as stack:
        if getattr(args, "progress", False):
            from repro.obs import progress as progress_mod

            stack.enter_context(progress_mod.reporting(
                progress_mod.ProgressReporter(label=args.command)
            ))
        trace_out = getattr(args, "trace_out", None)
        if trace_out and not getattr(args, "manages_tracing", False):
            from repro import obs
            from repro.obs.profile import profile_tracer
            from repro.obs.sinks import metric_records

            with obs.recording() as registry:
                code = args.func(args)
            args.final_metrics = metric_records(registry.metrics)
            args.final_profile = profile_tracer(registry.tracer)
            return code or _write_trace(registry, trace_out)
        return args.func(args)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code.

    ``--trace-out`` on an ordinary subcommand wraps it in a recording
    registry and writes the JSONL trace afterwards; ``trace`` and
    ``stats`` manage their own recording.  A pooled run that exhausts
    its fault-tolerance budget exits with status 3 (completed work is
    already checkpointed when ``--checkpoint`` was given); a
    model-contract violation that escapes quarantine (strict guards on
    a non-pooled code path) exits with status 4.  Whatever the outcome,
    a provenance manifest is appended to the run store unless
    ``--no-manifest`` was given (``repro runs`` inspects the store).
    """
    import time
    from datetime import datetime, timezone

    from repro.errors import (
        CheckpointError,
        ContractViolation,
        PoolFaultError,
        ServiceError,
        StateBudgetExceeded,
        UnknownModelError,
    )

    parser = build_parser()
    args = parser.parse_args(argv)
    recorded_argv = list(argv) if argv is not None else sys.argv[1:]
    started_at = datetime.now(timezone.utc).isoformat()
    started = time.perf_counter()
    try:
        code = _dispatch(args)
    except ContractViolation as error:
        print(f"repro: contract violation: {error}", file=sys.stderr)
        code = EXIT_CONTRACT
    except UnknownModelError as error:
        print(f"repro: error: {error}", file=sys.stderr)
        code = 2
    except StateBudgetExceeded as error:
        print(f"repro: error: {error}", file=sys.stderr)
        code = 2
    except (PoolFaultError, CheckpointError, ServiceError) as error:
        print(f"repro: error: {error}", file=sys.stderr)
        if getattr(args, "checkpoint", None) and not isinstance(
            error, (CheckpointError, ServiceError)
        ):
            print(
                "repro: completed tasks were checkpointed; rerun with "
                "--resume to pick up where this run stopped",
                file=sys.stderr,
            )
        code = 3
    _maybe_write_manifest(
        args, recorded_argv, started_at,
        time.perf_counter() - started, code,
    )
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
