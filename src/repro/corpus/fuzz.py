"""Deterministic differential fuzzing of the four sampling engines.

The fuzzer generates small randomized models — automaton shape,
transition distributions, guard mode, adversary choice, optional
contract mutations, optional fault-injection plans — from the repo's
one seeding discipline (:func:`repro.parallel.seeds.derive_rng`), runs
every engine on each case, and diffs the resulting
:class:`~repro.corpus.runner.Classification` labels.  Two invocations
with the same ``--seed`` and ``--budget`` produce byte-identical
output, at any worker count: case generation never touches global
randomness, reports are engine- and worker-invariant by the repo's
core guarantee, and findings carry no timestamps.

On a divergence the fuzzer *shrinks*: a fixed, ordered list of
simplifying rewrites (drop the mutation, drop the faults, lower the
guard mode, halve the sampling plan, dirac-ify distributions, drop
states and transitions) is applied greedily — a rewrite is kept only
if the divergence survives — until no rewrite applies.  The shrunk
case is emitted as a ready-to-commit corpus entry
(``repro fuzz --emit FILE``, replayed by ``repro corpus run
--corpus-file FILE`` in agreement mode).

Because the engines are *supposed* to agree everywhere, the harness's
own plumbing is validated with ``--sabotage``, which perturbs one
engine's report digest before diffing: the injected divergence must be
caught, shrunk to the minimal case, and reported with the dedicated
divergence exit status.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.adversary.deterministic import (
    FirstEnabledAdversary,
    RoundRobinAdversary,
)
from repro.automaton.automaton import ExplicitAutomaton
from repro.automaton.signature import ActionSignature
from repro.automaton.transition import Transition
from repro.corpus import cases
from repro.corpus.cases import CheckCase
from repro.corpus.registry import ENGINES
from repro.corpus.runner import Classification, classify_check
from repro.errors import VerificationError
from repro.parallel.faults import FaultPlan
from repro.parallel.pool import RunPolicy, fork_available
from repro.parallel.seeds import derive_rng
from repro.probability.space import FiniteDistribution
from repro.proofs.statements import ArrowStatement, StateClass

_ACTIONS = ("go", "step", "loop")
_MODES = ("off", "warn", "strict")
_ADVERSARIES = ("first", "cycler")
_MUTATIONS = (None, None, "distribution", "adversary")
_MODEL_MUTATIONS = (None, None, None, "distribution")
_FAULT_SPECS = (None, None, None, "crash=0.5,seed=3", "corrupt=0.5,seed=3")


def generate_case(
    root_seed: int, index: int, model: Optional[str] = None
) -> dict:
    """Case ``index`` of the stream rooted at ``root_seed``.

    Pure function of its arguments: all randomness flows through
    :func:`derive_rng` — never the process-global ``random`` module —
    so the stream is identical across machines, runs, and worker
    counts.  With ``model`` set the case targets that registered
    model's real automaton instead of a synthetic shape; the
    ``model=None`` stream is untouched, so historical campaigns replay
    byte for byte.
    """
    rng = derive_rng(root_seed, "fuzz", "case", index)
    if model is not None:
        return _generate_model_case(rng, model)
    n_states = rng.randint(2, 5)
    states = [f"s{i}" for i in range(n_states)]
    transitions: List[list] = []
    for state in states:
        for _ in range(rng.randint(1, 2)):
            action = rng.choice(_ACTIONS)
            if any(
                t[0] == state and t[1] == action for t in transitions
            ):
                continue
            k = rng.randint(1, min(2, n_states))
            targets = rng.sample(states, k)
            if k == 1:
                weights = [[targets[0], 1, 1]]
            else:
                num = rng.choice((1, 1, 1, 2))
                den = {1: 2, 2: 5}[num] if num == 2 else rng.choice((2, 3, 4))
                weights = [
                    [targets[0], num, den],
                    [targets[1], den - num, den],
                ]
            transitions.append([state, action, weights])
    n_starts = 1 if n_states < 3 else rng.choice((1, 1, 2))
    starts = states[:n_starts]
    target_pool = [s for s in states if s not in starts] or states
    targets = rng.sample(target_pool, rng.randint(1, len(target_pool)))
    case = {
        "seed": rng.randint(0, 2**31 - 1),
        "states": states,
        "starts": starts,
        "targets": sorted(targets),
        "transitions": transitions,
        "samples": rng.randint(2, 6),
        "max_steps": rng.randint(4, 12),
        "guards": rng.choice(_MODES),
        "adversary": rng.choice(_ADVERSARIES),
        "mutation": rng.choice(_MUTATIONS),
        "faults": rng.choice(_FAULT_SPECS),
    }
    if case["mutation"] == "distribution" and not any(
        len(t[2]) > 1 for t in transitions
    ):
        case["mutation"] = None
    return case


def _generate_model_case(rng, model_name: str) -> dict:
    """A case over a registered model's own automaton.

    The automaton shape is the model's — there is nothing to
    randomise there — so the draws cover the harness knobs instead:
    the sampling plan (kept tiny; registered automata dwarf the
    synthetic five-state shapes), the guard mode, which member of the
    model's adversary family runs, and an optional distribution skim
    (:func:`repro.corpus.cases.skimmed_automaton`) standing in for the
    synthetic mutations.
    """
    from repro.models import get_model

    model = get_model(model_name)
    return {
        "model": model.name,
        "n": model.n_default,
        "seed": rng.randint(0, 2**31 - 1),
        "samples": rng.randint(2, 4),
        "max_steps": rng.randint(4, 10),
        "guards": rng.choice(_MODES),
        "adversary_index": rng.randint(0, 7),
        "mutation": rng.choice(_MODEL_MUTATIONS),
    }


def _cycler_adversary() -> RoundRobinAdversary:
    """History-dependent (via the fragment length), hence uncompilable
    by design: every engine falls back to the per-pair tree walk and
    the differential harness checks the fallbacks agree."""
    return RoundRobinAdversary()


def _build_automaton(case: dict) -> ExplicitAutomaton:
    mutate = case.get("mutation") == "distribution"
    mutated = False
    steps = []
    for src, action, weights in case["transitions"]:
        pairs = {
            target: Fraction(num, den) for target, num, den in weights
        }
        if mutate and not mutated and len(pairs) > 1:
            first = next(iter(pairs))
            pairs[first] = pairs[first] - Fraction(1, 100)
            steps.append(
                Transition(src, action, cases.smuggled_distribution(pairs))
            )
            mutated = True
            continue
        steps.append(Transition(src, action, FiniteDistribution(pairs)))
    return ExplicitAutomaton(
        states=list(case["states"]),
        start_states=list(case["starts"]),
        signature=ActionSignature(internal=frozenset(_ACTIONS)),
        steps=steps,
    )


def _model_check_case(case: dict) -> CheckCase:
    """Materialise a registry-model fuzz case as a runnable CheckCase.

    Automaton, adversary family, clock, and compile quotient all come
    from the registered model; starts are its canonical states in
    sorted-name order, and the statement is the trivially-true zero
    bound over the model's target region, so a healthy case classifies
    ``ok`` and only the skim mutation can change the outcome.
    """
    from repro.models import get_model

    model = get_model(case["model"])
    n = case["n"]
    skim = case.get("mutation") == "distribution"

    def automaton_factory():
        automaton = model.build(n).automaton
        return cases.skimmed_automaton(automaton) if skim else automaton

    def adversaries_factory():
        family = model.build(n).adversaries
        return (family[case["adversary_index"] % len(family)],)

    canonical = model.canonical_states(n)
    starts = tuple(canonical[name] for name in sorted(canonical))
    source = StateClass(f"{model.name}-start", lambda s: True)
    target = StateClass(f"{model.name}-target", model.target)
    statement = ArrowStatement(source, target, 0, Fraction(0), "fuzz")
    return CheckCase(
        automaton_factory=automaton_factory,
        adversaries_factory=adversaries_factory,
        statement=statement,
        start_states=starts,
        time_of=model.time_of,
        samples=case["samples"],
        max_steps=case["max_steps"],
        seed=case["seed"],
        space_spec=model.space_spec(n),
    )


def check_case_from_dict(case: dict) -> CheckCase:
    """Materialise a serialized fuzz case as a runnable CheckCase."""
    if case.get("model"):
        return _model_check_case(case)
    starts = tuple(case["starts"])
    targets = frozenset(case["targets"])
    source = StateClass("FuzzStart", lambda s, _m=frozenset(starts): s in _m)
    target = StateClass("FuzzTarget", lambda s, _m=targets: s in _m)
    statement = ArrowStatement(source, target, 0, Fraction(0), "fuzz")

    if case.get("mutation") == "adversary":
        adversaries_factory: Callable[[], tuple] = lambda: (
            ("rogue", cases.rogue_adversary()),
        )
    elif case["adversary"] == "cycler":
        adversaries_factory = lambda: (("cycler", _cycler_adversary()),)
    else:
        adversaries_factory = lambda: (("first", FirstEnabledAdversary()),)

    policy_factory = None
    if case.get("faults"):
        spec = case["faults"]

        def policy_factory(_spec=spec) -> RunPolicy:
            # retries=99 >> the degradation threshold: an injected
            # fault storm degrades the pool to inline and completes,
            # keeping the report worker-count-invariant.
            return RunPolicy(retries=99, faults=FaultPlan.parse(_spec))

    return CheckCase(
        automaton_factory=lambda: _build_automaton(case),
        adversaries_factory=adversaries_factory,
        statement=statement,
        start_states=starts,
        samples=case["samples"],
        max_steps=case["max_steps"],
        seed=case["seed"],
        policy_factory=policy_factory,
    )


def _sabotage_classification(cls: Classification) -> Classification:
    """The synthetic divergence: flip one bit of observable output."""
    return Classification(
        status=cls.status,
        detail=cls.detail,
        exit_status=cls.exit_status,
        digest=(cls.digest or "0") + "-sabotaged",
        flagged=cls.flagged,
    )


def diff_case(
    case: dict, *, workers: int = 1, sabotage: Optional[str] = None
) -> Optional[Dict[str, str]]:
    """Run every engine on ``case``; None when all agree.

    On disagreement returns ``{engine: label}`` for the reference
    (tree) label plus every divergent engine's label.  ``sabotage``
    names an engine whose classification is deliberately perturbed —
    the harness's own smoke test.
    """
    check = check_case_from_dict(case)
    mode = case["guards"]
    labels: Dict[str, str] = {}
    for engine in ENGINES:
        cls = classify_check(check, mode=mode, engine=engine, workers=workers)
        if sabotage == engine:
            cls = _sabotage_classification(cls)
        labels[engine] = cls.label
    reference = labels[ENGINES[0]]
    divergent = {
        engine: label
        for engine, label in labels.items()
        if label != reference
    }
    if not divergent:
        return None
    divergent[ENGINES[0]] = reference
    return divergent


def _shrink_candidates(case: dict) -> List[dict]:
    """Simplifying rewrites of ``case``, most aggressive first.

    Deterministically ordered; every candidate is strictly simpler, so
    greedy adoption terminates.
    """
    out: List[dict] = []

    def variant(**changes) -> dict:
        candidate = {key: value for key, value in case.items()}
        candidate.update(changes)
        return candidate

    if case.get("model"):
        # Registry-model cases own their automaton shape — only the
        # harness knobs shrink.
        if case.get("mutation"):
            out.append(variant(mutation=None))
        if case["guards"] != "off":
            out.append(variant(guards="off"))
        if case["adversary_index"] != 0:
            out.append(variant(adversary_index=0))
        if case["samples"] > 1:
            out.append(variant(samples=max(1, case["samples"] // 2)))
        if case["max_steps"] > 1:
            out.append(variant(max_steps=max(1, case["max_steps"] // 2)))
        return out

    if case.get("mutation"):
        out.append(variant(mutation=None))
    if case.get("faults"):
        out.append(variant(faults=None))
    if case["guards"] != "off":
        out.append(variant(guards="off"))
    if case["adversary"] != "first":
        out.append(variant(adversary="first"))
    if case["samples"] > 1:
        out.append(variant(samples=max(1, case["samples"] // 2)))
    if case["max_steps"] > 1:
        out.append(variant(max_steps=max(1, case["max_steps"] // 2)))
    if len(case["starts"]) > 1:
        out.append(variant(starts=case["starts"][:1]))
    if len(case["targets"]) > 1:
        out.append(variant(targets=case["targets"][:1]))
    # Drop the last state (and everything referencing it), keeping
    # starts and at least one target alive.
    if len(case["states"]) > 2:
        last = case["states"][-1]
        if last not in case["starts"]:
            kept_transitions = [
                t
                for t in case["transitions"]
                if t[0] != last
                and all(target != last for target, _, _ in t[2])
            ]
            kept_targets = [t for t in case["targets"] if t != last]
            if kept_transitions and kept_targets:
                out.append(
                    variant(
                        states=case["states"][:-1],
                        transitions=kept_transitions,
                        targets=kept_targets,
                    )
                )
    # Drop each transition in turn (never below one).
    if len(case["transitions"]) > 1:
        for index in range(len(case["transitions"])):
            kept = [
                t
                for i, t in enumerate(case["transitions"])
                if i != index
            ]
            out.append(variant(transitions=kept))
    # Dirac-ify each probabilistic transition.
    for index, (src, action, weights) in enumerate(case["transitions"]):
        if len(weights) > 1:
            rewritten = [t for t in case["transitions"]]
            rewritten[index] = [src, action, [[weights[0][0], 1, 1]]]
            out.append(variant(transitions=rewritten))
    return out


def shrink_case(
    case: dict,
    *,
    workers: int = 1,
    sabotage: Optional[str] = None,
    max_rounds: int = 100,
) -> Tuple[dict, int]:
    """Greedily minimise ``case`` while the divergence survives."""
    steps = 0
    current = case
    for _ in range(max_rounds):
        adopted = False
        for candidate in _shrink_candidates(current):
            if diff_case(candidate, workers=workers, sabotage=sabotage):
                current = candidate
                steps += 1
                obs.incr("fuzz.shrink_steps")
                adopted = True
                break
        if not adopted:
            break
    return current, steps


@dataclass(frozen=True)
class FuzzReport:
    """The outcome of one fuzzing campaign (deterministic, no clocks)."""

    seed: int
    budget: int
    cases_run: int
    findings: Tuple[dict, ...] = field(default=())

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "kind": "fuzz_run",
            "seed": self.seed,
            "budget": self.budget,
            "cases": self.cases_run,
            "ok": self.ok,
            "findings": list(self.findings),
        }

    def describe(self) -> str:
        if self.ok:
            return (
                f"fuzz: {self.cases_run} cases x {len(ENGINES)} engines "
                f"(seed {self.seed}): no divergence"
            )
        finding = self.findings[0]
        return (
            f"fuzz: divergence at case {finding['index']} "
            f"(seed {self.seed}); shrunk in "
            f"{finding['shrink_steps']} step(s) — engines "
            f"{sorted(finding['divergence'])} disagree"
        )


def run_fuzz(
    *,
    seed: int,
    budget: int,
    workers: int = 1,
    sabotage: Optional[str] = None,
    model: Optional[str] = None,
) -> FuzzReport:
    """Fuzz ``budget`` cases; stop and shrink at the first divergence.

    ``model`` switches the campaign from the synthetic shapes to a
    registered model's automaton (resolved up front so an unknown name
    fails with the usage error before any case runs).
    """
    if budget < 1:
        raise VerificationError(f"--budget must be >= 1, got {budget}")
    if sabotage is not None and sabotage not in ENGINES:
        raise VerificationError(
            f"--sabotage must name an engine in {ENGINES}, got {sabotage!r}"
        )
    if model is not None:
        from repro.models import get_model

        model = get_model(model).name
    if workers > 1 and not fork_available():
        workers = 1
    findings: List[dict] = []
    cases_run = 0
    for index in range(budget):
        case = generate_case(seed, index, model=model)
        cases_run += 1
        obs.incr("fuzz.cases")
        divergence = diff_case(case, workers=workers, sabotage=sabotage)
        if divergence is None:
            continue
        obs.incr("fuzz.divergences")
        shrunk, steps = shrink_case(
            case, workers=workers, sabotage=sabotage
        )
        final = diff_case(shrunk, workers=workers, sabotage=sabotage)
        findings.append(
            {
                "index": index,
                "case": shrunk,
                "original_case": case,
                "divergence": final or divergence,
                "shrink_steps": steps,
            }
        )
        break
    return FuzzReport(seed, budget, cases_run, tuple(findings))


def corpus_record(finding: dict, *, seed: int) -> dict:
    """A ready-to-commit corpus-file record for one fuzz finding."""
    case = finding["case"]
    return {
        "name": f"fuzz-{seed}-{finding['index']}",
        "description": (
            f"fuzz finding (root seed {seed}, case {finding['index']}, "
            f"shrunk in {finding['shrink_steps']} steps): engines "
            f"{sorted(finding['divergence'])} disagreed"
        ),
        "case": case,
        "workers": [1],
    }
