"""Replay corpus entries across engines x guard modes x worker counts.

The runner turns one matrix cell (entry, guard mode, engine, workers)
into a :class:`Classification` — a small frozen summary of everything
observable about the run: verdict, quarantine kinds, warn-mode contract
counters, the taxonomy class of any escaping error, the CLI exit status
the outcome maps to, and a SHA-256 digest of the canonical report JSON.
Two classifications are *identical* when their labels match; the corpus
contract is that every engine and worker count produces identical
classifications for every entry, and that the strict/warn/off outcomes
match the entry's declared expectations.

Warn-mode contract counters are *diagnostics*, not part of the
cross-engine identity label: compiled engines validate every reachable
transition eagerly at compile time while the tree walk checks lazily,
only what the adversary actually schedules — so a mutation parked on a
never-scheduled transition is counted by the compiled engines and
invisible to the tree, with byte-identical reports either way (the
differential fuzzer found exactly this asymmetry on its first
campaign).  Counters still back the ``flagged:<kind>`` expectation
grammar, where the entry's reference engine is known to walk the
mutated transition.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro import obs
from repro.contracts import GuardConfig, reset_warnings
from repro.corpus.cases import CheckCase, FlagsCase, ServiceCase
from repro.corpus.registry import (
    MODES,
    CorpusEntry,
)
from repro.errors import (
    CheckpointError,
    ContractViolation,
    PoolFaultError,
    ServiceError,
    StateBudgetExceeded,
    UnknownModelError,
)
from repro.parallel.pool import fork_available
from repro.proofs.verifier import check_arrow_by_sampling
from repro.statespace.compile import compile_space

# CLI exit statuses the classifications map to.  Kept in lockstep with
# src/repro/cli.py (asserted by tests/test_corpus.py) but defined here
# so the corpus layer does not import the CLI.
EXIT_OK = 0
EXIT_REFUTED = 1
EXIT_USAGE = 2
EXIT_POOL = 3
EXIT_CONTRACT = 4
EXIT_DIVERGENCE = 5


@dataclass(frozen=True)
class Classification:
    """Everything observable about one corpus matrix cell."""

    status: str  # ok | refuted | quarantined | error
    detail: str  # quarantine kinds / taxonomy class name / ""
    exit_status: int
    digest: str  # sha256 of canonical report JSON ("" when no report)
    flagged: Tuple[str, ...]  # contract kinds counted in warn mode

    @property
    def label(self) -> str:
        """The canonical identity string two cells must share.

        ``flagged`` is deliberately excluded: warn-counter coverage is
        eager on compiled engines and lazy on the tree walk, so the
        flagged-kind set is an engine diagnostic, not an observable the
        identity contract ranges over (see the module docstring).
        """
        return "|".join(
            (
                self.status,
                self.detail,
                str(self.exit_status),
                self.digest,
            )
        )

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "detail": self.detail,
            "exit_status": self.exit_status,
            "digest": self.digest,
            "flagged": list(self.flagged),
        }

    def matches(self, expectation: str) -> bool:
        """Does this cell satisfy an expectation-grammar string?"""
        if expectation == "ok":
            return self.status == "ok" and not self.flagged
        if expectation == "refuted":
            return self.status == "refuted"
        if expectation.startswith("flagged:"):
            kind = expectation.split(":", 1)[1]
            return self.status == "ok" and kind in self.flagged
        if expectation.startswith("quarantined:"):
            kind = expectation.split(":", 1)[1]
            return (
                self.status == "quarantined"
                and kind in self.detail.split(",")
            )
        if expectation.startswith("error:"):
            name = expectation.split(":", 1)[1]
            return self.status == "error" and self.detail == name
        raise ValueError(f"unknown corpus expectation {expectation!r}")


def report_digest(report_dict: dict) -> str:
    """SHA-256 over the canonical JSON form of a report dict."""
    blob = json.dumps(
        report_dict, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _guard_config(mode: str, case: CheckCase) -> GuardConfig:
    """A fresh guard config for one cell.

    Fuel only exists in the checking modes — ``off`` rejects it by
    construction, so off-mode cells of fuel entries run unfuelled.
    """
    if mode == "off":
        return GuardConfig().validate()
    return GuardConfig(mode=mode, fuel_steps=case.fuel_steps).validate()


def _flagged_kinds(counters: Dict[str, object]) -> Tuple[str, ...]:
    kinds = []
    for name, value in counters.items():
        if not name.startswith("contracts."):
            continue
        kind = name.split(".", 1)[1]
        if kind == "violations":
            continue
        if isinstance(value, (int, float)) and value > 0:
            kinds.append(kind)
    return tuple(sorted(kinds))


def classify_check(
    case: CheckCase, *, mode: str, engine: str, workers: int
) -> Classification:
    """Run one arrow-check cell and classify its outcome.

    Exceptions are mapped to exit statuses in the same order the CLI
    maps them; anything outside the taxonomy propagates — an
    unclassifiable crash is a harness bug, not a corpus verdict.
    """
    guards = _guard_config(mode, case)
    policy = case.policy_factory() if case.policy_factory else None
    schema = case.schema_factory() if case.schema_factory else None
    reset_warnings()
    with obs.recording() as registry:
        try:
            report = check_arrow_by_sampling(
                case.automaton_factory(),
                case.statement,
                case.adversaries_factory(),
                list(case.start_states),
                case.time_of,
                samples_per_pair=case.samples,
                max_steps=case.max_steps,
                seed=case.seed,
                workers=workers,
                policy=policy,
                schema=schema,
                guards=guards,
                engine=engine,
                space_spec=case.space_spec,
                state_budget=case.state_budget,
            )
        except ContractViolation as error:
            return Classification(
                "error", type(error).__name__, EXIT_CONTRACT, "", ()
            )
        except StateBudgetExceeded as error:
            return Classification(
                "error", type(error).__name__, EXIT_USAGE, "", ()
            )
        except UnknownModelError as error:
            return Classification(
                "error", type(error).__name__, EXIT_USAGE, "", ()
            )
        except (PoolFaultError, CheckpointError) as error:
            return Classification(
                "error", type(error).__name__, EXIT_POOL, "", ()
            )
        counters = registry.metrics.snapshot()["counters"]
    flagged = _flagged_kinds(counters)
    digest = report_digest(report.to_dict())
    if report.quarantined:
        kinds = ",".join(
            sorted({pair.kind for pair in report.quarantined})
        )
        return Classification(
            "quarantined", kinds, EXIT_CONTRACT, digest, flagged
        )
    if report.refuted:
        return Classification("refuted", "", EXIT_REFUTED, digest, flagged)
    return Classification("ok", "", EXIT_OK, digest, flagged)


def classify_flags(case: FlagsCase, *, mode: str) -> Classification:
    """Run one compile-level flags cell and classify its outcome."""
    guards = GuardConfig(mode=mode).validate() if mode != "off" else None
    reset_warnings()
    with obs.recording() as registry:
        try:
            space = compile_space(
                case.automaton_factory(),
                list(case.roots),
                case.spec_factory(),
                max_states=case.max_states,
                guards=guards,
            )
            values = space.flags(case.predicate, guards)
        except ContractViolation as error:
            return Classification(
                "error", type(error).__name__, EXIT_CONTRACT, "", ()
            )
        except StateBudgetExceeded as error:
            return Classification(
                "error", type(error).__name__, EXIT_USAGE, "", ()
            )
        counters = registry.metrics.snapshot()["counters"]
    flagged = _flagged_kinds(counters)
    digest = report_digest({"kind": "flags", "values": values})
    return Classification("ok", "", EXIT_OK, digest, flagged)


def classify_service(case: ServiceCase) -> Classification:
    """Run one job-service scenario cell and classify its outcome.

    Guard modes do not reach the service layer, so the same scenario
    replays identically in every mode — the matrix still runs all
    three to pin that independence.  A :class:`ServiceError` escaping
    maps to the infrastructure exit status, mirroring the CLI.
    """
    reset_warnings()
    with obs.recording():
        try:
            payload = case.run()
        except ServiceError as error:
            return Classification(
                "error", type(error).__name__, EXIT_POOL, "", ()
            )
    return Classification("ok", "", EXIT_OK, report_digest(payload), ())


@dataclass(frozen=True)
class EntryResult:
    """The outcome of replaying one entry across its full matrix."""

    name: str
    ok: bool
    skipped: bool
    cells: Dict[Tuple[str, str, int], Classification]
    problems: Tuple[str, ...]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "skipped": self.skipped,
            "problems": list(self.problems),
            "cells": {
                f"{mode}/{engine}/w{workers}": cls.to_dict()
                for (mode, engine, workers), cls in sorted(
                    self.cells.items()
                )
            },
        }


def _runnable_workers(counts: Tuple[int, ...]) -> Tuple[int, ...]:
    if fork_available():
        return counts
    return tuple(count for count in counts if count <= 1)


def run_entry(entry: CorpusEntry) -> EntryResult:
    """Replay one entry over its matrix; never raises on divergence."""
    problems: List[str] = []
    cells: Dict[Tuple[str, str, int], Classification] = {}
    if entry.kind == "flags":
        off_cls: Optional[Classification] = None
        for mode in MODES:
            cls = classify_flags(entry.build(), mode=mode)
            cells[(mode, "space", 1)] = cls
            if mode == "off":
                off_cls = cls
            if not entry.agreement_only and not cls.matches(
                entry.expect[mode]
            ):
                problems.append(
                    f"{entry.name}: mode {mode} expected "
                    f"{entry.expect[mode]!r}, observed {cls.label}"
                )
        if (
            entry.warn_matches_off
            and off_cls is not None
            and cells[("warn", "space", 1)].digest
            and off_cls.digest
            and cells[("warn", "space", 1)].digest != off_cls.digest
        ):
            problems.append(
                f"{entry.name}: warn-mode flag values diverge from off"
            )
        return EntryResult(
            entry.name, not problems, False, cells, tuple(problems)
        )

    if entry.kind == "service":
        first_cls: Optional[Classification] = None
        for mode in MODES:
            cls = classify_service(entry.build())
            cells[(mode, "service", 1)] = cls
            if first_cls is None:
                first_cls = cls
            elif cls.label != first_cls.label:
                problems.append(
                    f"{entry.name}: mode {mode} classified "
                    f"[{cls.label}] but off classified "
                    f"[{first_cls.label}]"
                )
            if not entry.agreement_only and not cls.matches(
                entry.expect[mode]
            ):
                problems.append(
                    f"{entry.name}: mode {mode} expected "
                    f"{entry.expect[mode]!r}, observed [{cls.label}]"
                )
        return EntryResult(
            entry.name, not problems, False, cells, tuple(problems)
        )

    workers = _runnable_workers(entry.workers)
    if not workers:
        return EntryResult(entry.name, True, True, {}, ())

    baseline_engines: Tuple[str, ...] = ()
    if entry.baseline_ok:
        from repro.corpus.registry import ENGINES

        baseline_engines = tuple(
            engine for engine in ENGINES if engine not in entry.engines
        )

    mode_digests: Dict[str, str] = {}
    for mode in MODES:
        matrix: List[Tuple[str, int, Classification]] = []
        for engine in entry.engines:
            for count in workers:
                cls = classify_check(
                    entry.build(), mode=mode, engine=engine, workers=count
                )
                cells[(mode, engine, count)] = cls
                matrix.append((engine, count, cls))
        first_engine, first_count, first = matrix[0]
        for engine, count, cls in matrix[1:]:
            if cls.label != first.label:
                problems.append(
                    f"{entry.name}: mode {mode}: {engine}/w{count} "
                    f"classified [{cls.label}] but "
                    f"{first_engine}/w{first_count} classified "
                    f"[{first.label}]"
                )
        if not entry.agreement_only and not first.matches(
            entry.expect[mode]
        ):
            problems.append(
                f"{entry.name}: mode {mode} expected "
                f"{entry.expect[mode]!r}, observed [{first.label}]"
            )
        mode_digests[mode] = first.digest

        baseline_first: Optional[Classification] = None
        for engine in baseline_engines:
            for count in workers:
                cls = classify_check(
                    entry.build(), mode=mode, engine=engine, workers=count
                )
                cells[(mode, engine, count)] = cls
                if cls.status != "ok":
                    problems.append(
                        f"{entry.name}: mode {mode}: baseline engine "
                        f"{engine}/w{count} expected ok, observed "
                        f"[{cls.label}]"
                    )
                if baseline_first is None:
                    baseline_first = cls
                elif cls.label != baseline_first.label:
                    problems.append(
                        f"{entry.name}: mode {mode}: baseline engines "
                        f"disagree ({engine}/w{count})"
                    )

    if (
        entry.warn_matches_off
        and mode_digests.get("off")
        and mode_digests.get("warn")
        and mode_digests["off"] != mode_digests["warn"]
    ):
        problems.append(
            f"{entry.name}: warn-mode report bytes diverge from off-mode "
            f"(digest {mode_digests['warn'][:12]} != "
            f"{mode_digests['off'][:12]})"
        )

    return EntryResult(
        entry.name, not problems, False, cells, tuple(problems)
    )


@dataclass(frozen=True)
class CorpusReport:
    """The outcome of a full corpus sweep."""

    results: Tuple[EntryResult, ...] = field(default=())

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def problems(self) -> Tuple[str, ...]:
        out: List[str] = []
        for result in self.results:
            out.extend(result.problems)
        return tuple(out)

    @property
    def exit_status(self) -> int:
        return EXIT_OK if self.ok else EXIT_DIVERGENCE

    def to_dict(self) -> dict:
        return {
            "kind": "corpus_run",
            "ok": self.ok,
            "entries": len(self.results),
            "skipped": sum(1 for r in self.results if r.skipped),
            "cells": sum(len(r.cells) for r in self.results),
            "problems": list(self.problems),
            "results": [result.to_dict() for result in self.results],
        }

    def describe(self) -> str:
        ran = [r for r in self.results if not r.skipped]
        skipped = len(self.results) - len(ran)
        cells = sum(len(r.cells) for r in self.results)
        line = (
            f"corpus: {len(ran)} entries x {cells} cells "
            f"classified{f' ({skipped} skipped)' if skipped else ''}"
        )
        if self.ok:
            return line + ": all identical and as expected"
        return line + f": {len(self.problems)} problem(s)"


def run_corpus(
    entries: Union[Tuple[CorpusEntry, ...], List[CorpusEntry]],
) -> CorpusReport:
    """Replay every entry; emit ``corpus.*`` counters when recording."""
    results = []
    for entry in entries:
        result = run_entry(entry)
        results.append(result)
        obs.incr("corpus.entries")
        obs.incr("corpus.cells", len(result.cells))
        if not result.ok:
            obs.incr("corpus.mismatches", len(result.problems))
    return CorpusReport(tuple(results))
