"""The standing defect corpus: declarative entries with expected verdicts.

Each :class:`CorpusEntry` names one known-bad (or known-good) model /
adversary / schema / runtime mutation, the taxonomy class it must be
classified as, and the expected observable outcome *per guard mode*.
The runner (:mod:`repro.corpus.runner`) replays every entry across
engines x guard modes x worker counts and fails loudly if any cell
disagrees — the corpus is the acceptance gate every new engine,
backend, cache, or model front-end must pass unchanged.

The expectation grammar (values of ``CorpusEntry.expect``):

``ok``
    The check completes, nothing is quarantined, no contract counters
    fire.
``flagged:<kind>``
    The check completes but warn-mode guards incremented a
    ``contracts.<kind>`` counter at least once.
``quarantined:<kind>``
    The report carries >= 1 quarantined pair whose violation kind is
    ``<kind>`` (strict mode's graceful degradation).
``error:<ClassName>``
    The named taxonomy exception escapes the run.
``refuted``
    The statement's claimed bound fails its Clopper–Pearson test.

``expected_class`` is written as a keyword with a string literal on
every entry **on purpose**: ``tools/lint.py`` AST-parses this file and
cross-checks the literals against the error-taxonomy classes in
``src/repro/errors.py`` in both directions (every public taxonomy
class needs an entry; every entry must name a real class).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Optional, Tuple, Union

from repro import durable_io
from repro.corpus import cases
from repro.corpus.cases import CheckCase, FlagsCase, ServiceCase
from repro.errors import VerificationError
from repro.parallel.faults import FaultPlan
from repro.parallel.pool import RunPolicy

#: Every engine the corpus replays.  ``batched-pure`` is the
#: first-class name for the BatchedEngine with the numpy transplant
#: disabled — the path machines without numpy take implicitly.
ENGINES = ("tree", "compiled", "batched", "batched-pure")

#: Guard modes every entry is replayed under.
MODES = ("off", "warn", "strict")

#: Worker counts for the differential matrix (pooled counts skip
#: cleanly on platforms without the ``fork`` start method).
WORKER_COUNTS = (1, 4)

#: Default on-disk location for fuzz-emitted / user-added entries.
DEFAULT_CORPUS_FILE = Path(".repro") / "corpus" / "extra.jsonl"

OK = "ok"


@dataclass(frozen=True)
class CorpusEntry:
    """One defect (or control) with its expected classification.

    ``build`` returns a fresh :class:`CheckCase` or :class:`FlagsCase`
    per replay; entries themselves are immutable and stateless.

    ``engines`` restricts the identity matrix when a defect is only
    *observable* on some engines (e.g. a blown compile budget cannot
    fire on ``tree``, which never compiles).  When ``baseline_ok`` is
    true the excluded engines are still run and must classify ``ok``
    — the defect must degrade, not corrupt.

    ``warn_matches_off`` asserts warn-mode reports are byte-identical
    to off-mode reports; true for every defect that only *counts* in
    warn mode, false when warn changes the trajectory (fuel truncates
    executions).
    """

    name: str
    description: str
    expected_class: Optional[str]
    expected_kind: Optional[str]
    expect: Mapping[str, str]
    exit_status: int
    build: Callable[[], Union[CheckCase, FlagsCase, ServiceCase]]
    kind: str = "check"
    engines: Tuple[str, ...] = ENGINES
    baseline_ok: bool = False
    workers: Tuple[int, ...] = WORKER_COUNTS
    warn_matches_off: bool = True
    agreement_only: bool = False
    source: str = "builtin"
    raw: Optional[dict] = field(default=None, compare=False)

    def modes_expectations(self) -> Mapping[str, str]:
        missing = [mode for mode in MODES if mode not in self.expect]
        if missing:
            raise VerificationError(
                f"corpus entry {self.name!r} lacks expectations for "
                f"guard modes {missing}"
            )
        return self.expect


def _pool_policy(
    faults: str, timeout: Optional[float] = None
) -> Callable[[], RunPolicy]:
    def factory() -> RunPolicy:
        return RunPolicy(
            timeout=timeout, retries=0, faults=FaultPlan.parse(faults)
        )

    return factory


def _healthy_case() -> CheckCase:
    return CheckCase(
        automaton_factory=cases.tiny_automaton,
        adversaries_factory=cases.first_enabled_family,
    )


def _broken_distribution_case() -> CheckCase:
    return CheckCase(
        automaton_factory=cases.broken_automaton,
        adversaries_factory=cases.first_enabled_family,
    )


def _rogue_adversary_case() -> CheckCase:
    return CheckCase(
        automaton_factory=cases.tiny_automaton,
        adversaries_factory=cases.rogue_family,
    )


def _liar_schema_case() -> CheckCase:
    return CheckCase(
        automaton_factory=cases.tiny_automaton,
        adversaries_factory=cases.first_enabled_family,
        schema_factory=cases.liar_schema,
    )


def _fuel_case() -> CheckCase:
    return CheckCase(
        automaton_factory=cases.tiny_automaton,
        adversaries_factory=cases.first_enabled_family,
        statement=cases.NEVER_STATEMENT,
        fuel_steps=1,
    )


def _quotient_flags_case() -> FlagsCase:
    return FlagsCase(
        automaton_factory=cases.tiny_automaton,
        spec_factory=cases.noninvariant_orbit_spec,
        predicate=lambda state: state == "c",
    )


def _budget_case() -> CheckCase:
    return CheckCase(
        automaton_factory=cases.tiny_automaton,
        adversaries_factory=cases.first_enabled_family,
        state_budget=2,
    )


def _crash_case() -> CheckCase:
    return CheckCase(
        automaton_factory=cases.tiny_automaton,
        adversaries_factory=cases.two_pair_family,
        policy_factory=_pool_policy("crash=1.0,seed=5"),
    )


def _hang_case() -> CheckCase:
    return CheckCase(
        automaton_factory=cases.tiny_automaton,
        adversaries_factory=cases.two_pair_family,
        policy_factory=_pool_policy("hang=1.0,seed=5", timeout=0.2),
    )


def _corrupt_case() -> CheckCase:
    return CheckCase(
        automaton_factory=cases.tiny_automaton,
        adversaries_factory=cases.two_pair_family,
        policy_factory=_pool_policy("corrupt=1.0,seed=5"),
    )


def _raising_case() -> CheckCase:
    return CheckCase(
        automaton_factory=cases.tiny_automaton,
        adversaries_factory=cases.raising_family,
    )


BUILTIN_ENTRIES: Tuple[CorpusEntry, ...] = (
    CorpusEntry(
        name="healthy-tiny",
        description=(
            "The unmutated three-state model: every engine, guard mode "
            "and worker count must agree on a clean supported report."
        ),
        expected_class=None,
        expected_kind=None,
        expect={"off": OK, "warn": OK, "strict": OK},
        exit_status=0,
        build=_healthy_case,
        baseline_ok=False,
    ),
    CorpusEntry(
        name="distribution-sum-99-100",
        description=(
            "A transition target smuggled past the constructor whose "
            "weights sum to 99/100 — a Definition 2.1 breach."
        ),
        expected_class="DistributionError",
        expected_kind="distribution",
        expect={
            "off": OK,
            "warn": "flagged:distribution",
            "strict": "quarantined:distribution",
        },
        exit_status=4,
        build=_broken_distribution_case,
    ),
    CorpusEntry(
        name="herman-distribution-skim",
        description=(
            "Herman's ring (n=3) built through the model registry with "
            "every coin-flip target skimmed to 99/100 — the Definition "
            "2.1 guards must fire for registered models exactly as "
            "they do for the hand-built tiny model."
        ),
        expected_class="DistributionError",
        expected_kind="distribution",
        expect={
            "off": OK,
            "warn": "flagged:distribution",
            "strict": "quarantined:distribution",
        },
        exit_status=4,
        build=cases.herman_skimmed_case,
    ),
    CorpusEntry(
        name="unknown-model-name",
        description=(
            "A --model name absent from the registry: resolution must "
            "raise UnknownModelError before any sampling starts, in "
            "every guard mode, mapping to the usage exit status like "
            "an unknown proposition."
        ),
        expected_class="UnknownModelError",
        expected_kind=None,
        expect={
            "off": "error:UnknownModelError",
            "warn": "error:UnknownModelError",
            "strict": "error:UnknownModelError",
        },
        exit_status=2,
        build=cases.unknown_model_case,
        workers=(1,),
    ),
    CorpusEntry(
        name="adversary-disabled-step",
        description=(
            "An adversary scheduling a fabricated 'stop' step from "
            "states where it is not enabled — a Definition 2.2 breach."
        ),
        expected_class="AdversaryContractError",
        expected_kind="adversary",
        expect={
            "off": OK,
            "warn": "flagged:adversary",
            "strict": "quarantined:adversary",
        },
        exit_status=4,
        build=_rogue_adversary_case,
    ),
    CorpusEntry(
        name="schema-false-closure",
        description=(
            "A schema claiming execution closure while rejecting every "
            "shifted member — the Definition 3.3 spot check must fire."
        ),
        expected_class="ExecutionClosureError",
        expected_kind="closure",
        expect={
            "off": OK,
            "warn": "flagged:closure",
            "strict": "quarantined:closure",
        },
        exit_status=4,
        build=_liar_schema_case,
    ),
    CorpusEntry(
        name="fuel-exhausted-never-target",
        description=(
            "An unreachable target with a one-step fuel budget: every "
            "execution exhausts its fuel.  Tree-only — the compiled "
            "engines refuse fuel by contract, and warn-mode fuel "
            "truncates executions so warn is not byte-identical to off."
        ),
        expected_class="FuelExhaustedError",
        expected_kind="fuel",
        expect={
            "off": OK,
            "warn": "flagged:fuel",
            "strict": "quarantined:fuel",
        },
        exit_status=4,
        build=_fuel_case,
        engines=("tree",),
        baseline_ok=False,
        warn_matches_off=False,
    ),
    CorpusEntry(
        name="quotient-noninvariant-flag",
        description=(
            "A symmetry spec whose orbit merges states a flag predicate "
            "tells apart — the CompiledSpace.flags spot check must "
            "refuse the quotient."
        ),
        expected_class="QuotientInvarianceError",
        expected_kind="quotient",
        expect={
            "off": OK,
            "warn": "flagged:quotient",
            "strict": "error:QuotientInvarianceError",
        },
        exit_status=4,
        build=_quotient_flags_case,
        kind="flags",
        workers=(1,),
    ),
    CorpusEntry(
        name="state-budget-blown",
        description=(
            "A two-node budget for a three-state space: compiling "
            "engines must raise StateBudgetExceeded in every guard "
            "mode while tree (which never compiles) stays clean."
        ),
        expected_class="StateBudgetExceeded",
        expected_kind=None,
        expect={
            "off": "error:StateBudgetExceeded",
            "warn": "error:StateBudgetExceeded",
            "strict": "error:StateBudgetExceeded",
        },
        exit_status=2,
        build=_budget_case,
        engines=("compiled", "batched", "batched-pure"),
        baseline_ok=True,
    ),
    CorpusEntry(
        name="pool-worker-crash",
        description=(
            "Deterministic crash injection at rate 1.0 with a zero "
            "retry budget: the first worker loss must abort with "
            "WorkerCrashError under every engine."
        ),
        expected_class="WorkerCrashError",
        expected_kind=None,
        expect={
            "off": "error:WorkerCrashError",
            "warn": "error:WorkerCrashError",
            "strict": "error:WorkerCrashError",
        },
        exit_status=3,
        build=_crash_case,
        workers=(4,),
    ),
    CorpusEntry(
        name="pool-task-timeout",
        description=(
            "Deterministic hang injection with a 0.2s task timeout and "
            "zero retries: the parent must reclaim the worker and abort "
            "with TaskTimeoutError."
        ),
        expected_class="TaskTimeoutError",
        expected_kind=None,
        expect={
            "off": "error:TaskTimeoutError",
            "warn": "error:TaskTimeoutError",
            "strict": "error:TaskTimeoutError",
        },
        exit_status=3,
        build=_hang_case,
        workers=(4,),
    ),
    CorpusEntry(
        name="pool-result-corruption",
        description=(
            "Deterministic payload corruption at rate 1.0: the parent's "
            "integrity digest must reject the result and abort with "
            "ResultCorruptionError."
        ),
        expected_class="ResultCorruptionError",
        expected_kind=None,
        expect={
            "off": "error:ResultCorruptionError",
            "warn": "error:ResultCorruptionError",
            "strict": "error:ResultCorruptionError",
        },
        exit_status=3,
        build=_corrupt_case,
        workers=(4,),
    ),
    CorpusEntry(
        name="task-raises-runtime-error",
        description=(
            "An adversary whose choose() raises RuntimeError inside the "
            "worker: the pool must surface it as TaskExecutionError, "
            "identically under every engine (the history-dependent "
            "adversary is uncompilable, so all engines fall back to the "
            "tree walk for that pair)."
        ),
        expected_class="TaskExecutionError",
        expected_kind=None,
        expect={
            "off": "error:TaskExecutionError",
            "warn": "error:TaskExecutionError",
            "strict": "error:TaskExecutionError",
        },
        exit_status=3,
        build=_raising_case,
        workers=(4,),
    ),
    CorpusEntry(
        name="service-lease-expired",
        description=(
            "A worker heartbeats after its lease expired and a rival "
            "claim took the job over: the store must raise "
            "LeaseExpiredError rather than revive the lost lease."
        ),
        expected_class="LeaseExpiredError",
        expected_kind=None,
        expect={
            "off": "error:LeaseExpiredError",
            "warn": "error:LeaseExpiredError",
            "strict": "error:LeaseExpiredError",
        },
        exit_status=3,
        build=cases.lease_expiry_case,
        kind="service",
        workers=(1,),
    ),
    CorpusEntry(
        name="service-store-unknown-event",
        description=(
            "A whole, decodable WAL record of an unknown event kind — "
            "damage no correct writer and no crash produces — must "
            "raise JobStoreCorruptionError, not be folded around."
        ),
        expected_class="JobStoreCorruptionError",
        expected_kind=None,
        expect={
            "off": "error:JobStoreCorruptionError",
            "warn": "error:JobStoreCorruptionError",
            "strict": "error:JobStoreCorruptionError",
        },
        exit_status=3,
        build=cases.store_corruption_case,
        kind="service",
        workers=(1,),
    ),
    CorpusEntry(
        name="service-worker-crash-loop",
        description=(
            "Three young unclean worker exits in a row against a "
            "max_restarts=2 budget: the supervisor's detector must "
            "raise SupervisorCrashLoopError instead of restarting "
            "forever."
        ),
        expected_class="SupervisorCrashLoopError",
        expected_kind=None,
        expect={
            "off": "error:SupervisorCrashLoopError",
            "warn": "error:SupervisorCrashLoopError",
            "strict": "error:SupervisorCrashLoopError",
        },
        exit_status=3,
        build=cases.crash_loop_case,
        kind="service",
        workers=(1,),
    ),
)


def builtin_entries() -> Tuple[CorpusEntry, ...]:
    """The registry of built-in defect-corpus entries."""
    return BUILTIN_ENTRIES


def entry_by_name(
    name: str, entries: Optional[Tuple[CorpusEntry, ...]] = None
) -> CorpusEntry:
    pool = entries if entries is not None else BUILTIN_ENTRIES
    for entry in pool:
        if entry.name == name:
            return entry
    known = ", ".join(e.name for e in pool)
    raise VerificationError(
        f"unknown corpus entry {name!r}; known entries: {known}"
    )


def load_file_entries(path: Path) -> Tuple[CorpusEntry, ...]:
    """Load fuzz-emitted / user-added entries from a JSONL corpus file.

    File entries carry a serialized fuzz case instead of a builder;
    they are replayed in *agreement* mode — every engine must produce
    an identical classification — without a hand-written expected
    verdict (the fuzzer cannot know which engine was right, only that
    they must not diverge).
    """
    if not path.exists():
        return ()
    entries = []
    try:
        records, _torn = durable_io.load_jsonl(str(path), tolerate="tail")
    except ValueError as error:
        raise VerificationError(
            f"corpus file {path}: malformed JSON ({error})"
        ) from None
    for lineno, record in records:
        if not isinstance(record, dict) or "case" not in record:
            raise VerificationError(
                f"corpus file {path}:{lineno}: expected an object with "
                f"a 'case' field"
            )
        entries.append(entry_from_record(record, source=str(path)))
    return tuple(entries)


def entry_from_record(record: dict, *, source: str) -> CorpusEntry:
    """Build an agreement-mode entry from a serialized fuzz case."""
    from repro.corpus import fuzz

    case_dict = record["case"]
    name = record.get("name") or f"fuzz-{case_dict.get('seed', 'unknown')}"
    description = record.get(
        "description", "fuzz-emitted case (agreement mode)"
    )
    mode = case_dict.get("guards", "off")
    return CorpusEntry(
        name=name,
        description=description,
        expected_class=None,
        expected_kind=None,
        expect={m: OK for m in MODES},
        exit_status=0,
        build=lambda: fuzz.check_case_from_dict(case_dict),
        engines=ENGINES,
        workers=tuple(record.get("workers", (1,))),
        warn_matches_off=False,
        agreement_only=True,
        source=source,
        raw={"case": case_dict, "name": name, "mode": mode},
    )
