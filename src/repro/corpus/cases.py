"""The tiny model, its mutations, and the case shapes the corpus replays.

Every known-bad model in the defect corpus is built from the same
three-state automaton (``a --go--> {b: 1/2, c: 1/2}; b --go--> c;
c --stop--> c``) that the contracts mutation matrix has always used:
small enough that a full engines x guards x workers replay costs
milliseconds, rich enough to exercise a probabilistic branch, a
deterministic step, and a self-loop.  The builders here are the single
source of truth — ``tests/test_contracts.py`` imports them instead of
carrying its own copies, and :mod:`repro.corpus.registry` wires them
into declarative corpus entries.

Two case shapes exist:

* :class:`CheckCase` — everything :func:`check_arrow_by_sampling`
  needs for one full differential replay (model, adversary family,
  statement, sampling plan, optional fault-injection policy);
* :class:`FlagsCase` — a compile-level case for defects that live in
  the state-space layer rather than the sampling path (today: the
  quotient-invariance spot check of ``CompiledSpace.flags``);
* :class:`ServiceCase` — a job-service failure scenario replayed
  in-process with injected clocks and hand-written log damage, so the
  service error taxonomy (lease expiry, store corruption, crash
  loops) is pinned by the corpus like every other defect class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Optional, Tuple

from repro.adversary.base import AdversarySchema, FunctionAdversary, ShiftedAdversary
from repro.adversary.deterministic import FirstEnabledAdversary
from repro.automaton.automaton import ExplicitAutomaton, ProbabilisticAutomaton
from repro.automaton.signature import ActionSignature
from repro.automaton.transition import Transition
from repro.probability.space import FiniteDistribution
from repro.proofs.statements import ArrowStatement, StateClass
from repro.statespace.compile import SpaceSpec


def zero_time(state) -> Fraction:
    """The untimed clock: every state reads time zero."""
    return Fraction(0)


def tiny_signature() -> ActionSignature:
    return ActionSignature(internal=frozenset({"go", "stop"}))


def smuggled_distribution(weights) -> FiniteDistribution:
    """A duck-typed ``FiniteDistribution`` bypassing the constructor.

    This is how a broken model reaches the hot path in practice: the
    constructor validates Definition 2.1, so the mutation enters via a
    mutated or hand-rolled object.
    """
    dist = FiniteDistribution.__new__(FiniteDistribution)
    dist._weights = {point: Fraction(raw) for point, raw in weights.items()}
    dist._hash = None
    return dist


def tiny_automaton(first_target=None) -> ExplicitAutomaton:
    """``a --go--> {b: 1/2, c: 1/2};  b --go--> c;  c --stop--> c``."""
    if first_target is None:
        first_target = FiniteDistribution(
            {"b": Fraction(1, 2), "c": Fraction(1, 2)}
        )
    steps = [
        Transition("a", "go", first_target),
        Transition("b", "go", FiniteDistribution.dirac("c")),
        Transition("c", "stop", FiniteDistribution.dirac("c")),
    ]
    return ExplicitAutomaton(
        states=["a", "b", "c"],
        start_states=["a"],
        signature=tiny_signature(),
        steps=steps,
    )


def broken_automaton() -> ExplicitAutomaton:
    """The ``a --go-->`` target sums to 99/100: a Definition 2.1 breach."""
    return tiny_automaton(
        smuggled_distribution({"b": Fraction(49, 100), "c": Fraction(1, 2)})
    )


class _SkimmedAutomaton(ProbabilisticAutomaton):
    """A proxy skimming 1/100 off every probabilistic branch.

    Wraps any automaton — including the registry models' functional,
    lazily-expanded ones — and rewrites each multi-support transition
    target through :func:`smuggled_distribution`, shaving ``1/100`` off
    the first weight so the target sums to ``99/100``.  A pure
    function of the wrapped automaton's transition order, so every
    engine and worker sees the identical mutation.
    """

    def __init__(self, inner):
        self._inner = inner

    @property
    def start_states(self):
        return self._inner.start_states

    @property
    def signature(self):
        return self._inner.signature

    def transitions(self, state):
        out = []
        for step in self._inner.transitions(state):
            if len(step.target.support) > 1:
                weights = dict(step.target.items())
                first = next(iter(weights))
                weights[first] = weights[first] - Fraction(1, 100)
                out.append(
                    Transition(
                        step.source,
                        step.action,
                        smuggled_distribution(weights),
                    )
                )
            else:
                out.append(step)
        return tuple(out)


def skimmed_automaton(automaton) -> ProbabilisticAutomaton:
    """``automaton`` with every coin flip skimmed to sum 99/100."""
    return _SkimmedAutomaton(automaton)


def unknown_model_case() -> "CheckCase":
    """``--model`` resolution failure as a corpus defect.

    The builder resolves a name no model registered, so
    :class:`~repro.errors.UnknownModelError` escapes before any
    sampling starts — pinning that registry failures classify as usage
    errors identically under every engine and guard mode.
    """

    def automaton_factory():
        from repro.models import get_model

        return get_model("no-such-model").build(3).automaton

    return CheckCase(
        automaton_factory=automaton_factory,
        adversaries_factory=first_enabled_family,
    )


def herman_skimmed_case() -> "CheckCase":
    """Herman's ring (n=3) with skimmed coin flips, via the registry.

    The first registered model defect that is not hand-built: the
    automaton, adversary family, clock, and compile quotient all come
    from ``get_model("herman")``, and the mutation is the generic
    distribution skim — the Definition 2.1 guards must fire for a
    registered model exactly as they do for the tiny model.
    """
    from repro.models import get_model

    model = get_model("herman")
    canonical = model.canonical_states(3)
    statement = ArrowStatement(
        StateClass("HermanStart", lambda s: True),
        StateClass("HermanTarget", model.target),
        0,
        Fraction(0),
        "herman",
    )
    return CheckCase(
        automaton_factory=lambda: skimmed_automaton(
            model.build(3).automaton
        ),
        adversaries_factory=lambda: model.build(3).adversaries[:1],
        statement=statement,
        start_states=tuple(
            canonical[name] for name in sorted(canonical)
        ),
        time_of=model.time_of,
        samples=4,
        max_steps=12,
        space_spec=model.space_spec(3),
    )


def rogue_adversary() -> FunctionAdversary:
    """Schedules a fabricated ``stop`` step everywhere: a Definition 2.2
    breach from ``a`` and ``b``, where ``stop`` is not enabled."""
    return FunctionAdversary(
        lambda automaton, fragment: Transition(
            fragment.lstate, "stop", FiniteDistribution.dirac("c")
        ),
        name="rogue",
    )


def _raise_inside_task(automaton, fragment):
    raise RuntimeError("injected adversary bug (corpus raising-adversary)")


def raising_adversary() -> FunctionAdversary:
    """An adversary whose ``choose`` raises a non-library error.

    In a pooled run the worker dies deterministically and the parent
    surfaces :class:`~repro.errors.TaskExecutionError`; inline the raw
    ``RuntimeError`` propagates instead, so corpus entries built on
    this adversary constrain themselves to pooled worker counts.
    """
    return FunctionAdversary(_raise_inside_task, name="raiser")


def honest_schema() -> AdversarySchema:
    return AdversarySchema(
        name="tiny-honest", contains=lambda adv: True, execution_closed=True
    )


def liar_schema() -> AdversarySchema:
    """Claims execution closure but rejects every shifted member."""
    return AdversarySchema(
        name="tiny-liar",
        contains=lambda adv: not isinstance(adv, ShiftedAdversary),
        execution_closed=True,
    )


A_CLASS = StateClass("A", lambda s: s == "a")
C_CLASS = StateClass("C", lambda s: s == "c")
NEVER_CLASS = StateClass("Never", lambda s: False)

TINY_STATEMENT = ArrowStatement(A_CLASS, C_CLASS, 0, Fraction(1, 4), "tiny")
NEVER_STATEMENT = ArrowStatement(A_CLASS, NEVER_CLASS, 0, 0, "tiny")


def noninvariant_orbit_spec() -> SpaceSpec:
    """An identity-key spec whose orbit merges ``b`` and ``c``.

    The orbit claims ``{b, c}`` form one symmetry class while the
    predicate ``s == 'c'`` tells them apart — exactly the misdeclared
    symmetry the ``CompiledSpace.flags`` spot check exists to catch.
    """
    return SpaceSpec(
        orbit=lambda state: ("b", "c") if state in ("b", "c") else (state,)
    )


@dataclass(frozen=True)
class CheckCase:
    """One full arrow-check replay: model, family, and sampling plan.

    ``policy_factory`` builds a *fresh* :class:`RunPolicy` per matrix
    cell (policies can carry stateful checkpoints) and ``fuel_steps``
    is applied only in the checking guard modes — ``off`` forbids fuel
    by construction.
    """

    automaton_factory: Callable[[], object]
    adversaries_factory: Callable[[], Tuple[Tuple[str, object], ...]]
    statement: ArrowStatement = TINY_STATEMENT
    start_states: Tuple[object, ...] = ("a",)
    schema_factory: Optional[Callable[[], AdversarySchema]] = None
    time_of: Callable[[object], Fraction] = zero_time
    samples: int = 8
    max_steps: int = 24
    seed: int = 11
    fuel_steps: Optional[int] = None
    space_spec: Optional[SpaceSpec] = None
    state_budget: Optional[int] = None
    policy_factory: Optional[Callable[[], object]] = None


@dataclass(frozen=True)
class FlagsCase:
    """A compile-level case: quotient the space, evaluate a predicate."""

    automaton_factory: Callable[[], object]
    spec_factory: Callable[[], SpaceSpec]
    predicate: Callable[[object], bool]
    roots: Tuple[object, ...] = ("a",)
    max_states: int = 10_000


@dataclass(frozen=True)
class ServiceCase:
    """A deterministic job-service failure scenario.

    ``run`` either returns a small report dict (the "nothing went
    wrong" outcome — a corpus mismatch for these entries) or raises
    the :class:`~repro.errors.ServiceError` subclass the entry
    declares.  Scenarios use injected clocks and scripted log damage,
    never real time or real worker processes, so every replay is
    exact.
    """

    run: Callable[[], dict]


def _service_spec() -> object:
    """A hand-built job spec: the corpus layer never imports the CLI."""
    from repro.service.jobs import JobSpec

    return JobSpec(
        argv=("check", "--prop", "A.14"),
        command="check",
        scope="0" * 64,
    )


def lease_expiry_case() -> ServiceCase:
    """A worker heartbeats after its lease expired and was taken over.

    The clock is injected: worker ``w1`` claims with a 10-second
    lease, the clock jumps past expiry, ``w2``'s claim takes the job
    over, and ``w1``'s next heartbeat must raise
    :class:`~repro.errors.LeaseExpiredError` — reviving the lost lease
    could hand one job's completion to two workers.
    """

    def run() -> dict:
        import shutil
        import tempfile

        from repro.service.store import JobStore

        clock = {"now": 0.0}
        root = tempfile.mkdtemp(prefix="repro-corpus-service-")
        try:
            store = JobStore(root, clock=lambda: clock["now"])
            store.submit(_service_spec())
            claimed = store.claim("w1", lease_seconds=10.0)
            clock["now"] = 20.0
            store.claim("w2", lease_seconds=10.0)  # the takeover
            store.heartbeat(claimed.job_id, "w1", 10.0)
            return {"kind": "service", "outcome": "lease revived"}
        finally:
            shutil.rmtree(root, ignore_errors=True)

    return ServiceCase(run=run)


def store_corruption_case() -> ServiceCase:
    """A decodable record of an unknown event kind poisons the log.

    A torn *tail* is crash damage and tolerated; a whole, decodable
    line no correct writer produces is
    :class:`~repro.errors.JobStoreCorruptionError` — folding around it
    could hand one job to two workers.
    """

    def run() -> dict:
        import os
        import shutil
        import tempfile

        from repro import durable_io
        from repro.service.store import STORE_FILE, JobStore

        root = tempfile.mkdtemp(prefix="repro-corpus-service-")
        try:
            durable_io.append_json_line(
                os.path.join(root, STORE_FILE),
                {"event": "gossip", "job": "0001-feedface", "at": 0.0},
            )
            JobStore(root).jobs()
            return {"kind": "service", "outcome": "corruption ignored"}
        finally:
            shutil.rmtree(root, ignore_errors=True)

    return ServiceCase(run=run)


def crash_loop_case() -> ServiceCase:
    """Three young unclean worker deaths in a row trip the detector.

    Pure policy replay — no processes: with ``max_restarts=2``, the
    third consecutive sub-``healthy_seconds`` crash must raise
    :class:`~repro.errors.SupervisorCrashLoopError` instead of burning
    restarts forever against a poisoned job.
    """

    def run() -> dict:
        from repro.service.supervisor import CrashLoopDetector

        detector = CrashLoopDetector(max_restarts=2, healthy_seconds=5.0)
        for _ in range(3):
            detector.record_exit(0, lifetime=0.01, clean=False)
        return {"kind": "service", "outcome": "crash loop tolerated"}

    return ServiceCase(run=run)


def first_enabled_family() -> Tuple[Tuple[str, object], ...]:
    return (("first", FirstEnabledAdversary()),)


def two_pair_family() -> Tuple[Tuple[str, object], ...]:
    """Two healthy pairs: pooled runs get >= 2 tasks, so injected
    worker faults actually fire (single-task runs execute inline)."""
    return (
        ("first", FirstEnabledAdversary()),
        ("second", FirstEnabledAdversary()),
    )


def rogue_family() -> Tuple[Tuple[str, object], ...]:
    return (("rogue", rogue_adversary()),)


def raising_family() -> Tuple[Tuple[str, object], ...]:
    return (
        ("first", FirstEnabledAdversary()),
        ("raiser", raising_adversary()),
    )


# Keep dataclass field import exercised for frozen defaults.
_ = field
