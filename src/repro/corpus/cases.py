"""The tiny model, its mutations, and the case shapes the corpus replays.

Every known-bad model in the defect corpus is built from the same
three-state automaton (``a --go--> {b: 1/2, c: 1/2}; b --go--> c;
c --stop--> c``) that the contracts mutation matrix has always used:
small enough that a full engines x guards x workers replay costs
milliseconds, rich enough to exercise a probabilistic branch, a
deterministic step, and a self-loop.  The builders here are the single
source of truth — ``tests/test_contracts.py`` imports them instead of
carrying its own copies, and :mod:`repro.corpus.registry` wires them
into declarative corpus entries.

Two case shapes exist:

* :class:`CheckCase` — everything :func:`check_arrow_by_sampling`
  needs for one full differential replay (model, adversary family,
  statement, sampling plan, optional fault-injection policy);
* :class:`FlagsCase` — a compile-level case for defects that live in
  the state-space layer rather than the sampling path (today: the
  quotient-invariance spot check of ``CompiledSpace.flags``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Optional, Tuple

from repro.adversary.base import AdversarySchema, FunctionAdversary, ShiftedAdversary
from repro.adversary.deterministic import FirstEnabledAdversary
from repro.automaton.automaton import ExplicitAutomaton
from repro.automaton.signature import ActionSignature
from repro.automaton.transition import Transition
from repro.probability.space import FiniteDistribution
from repro.proofs.statements import ArrowStatement, StateClass
from repro.statespace.compile import SpaceSpec


def zero_time(state) -> Fraction:
    """The untimed clock: every state reads time zero."""
    return Fraction(0)


def tiny_signature() -> ActionSignature:
    return ActionSignature(internal=frozenset({"go", "stop"}))


def smuggled_distribution(weights) -> FiniteDistribution:
    """A duck-typed ``FiniteDistribution`` bypassing the constructor.

    This is how a broken model reaches the hot path in practice: the
    constructor validates Definition 2.1, so the mutation enters via a
    mutated or hand-rolled object.
    """
    dist = FiniteDistribution.__new__(FiniteDistribution)
    dist._weights = {point: Fraction(raw) for point, raw in weights.items()}
    dist._hash = None
    return dist


def tiny_automaton(first_target=None) -> ExplicitAutomaton:
    """``a --go--> {b: 1/2, c: 1/2};  b --go--> c;  c --stop--> c``."""
    if first_target is None:
        first_target = FiniteDistribution(
            {"b": Fraction(1, 2), "c": Fraction(1, 2)}
        )
    steps = [
        Transition("a", "go", first_target),
        Transition("b", "go", FiniteDistribution.dirac("c")),
        Transition("c", "stop", FiniteDistribution.dirac("c")),
    ]
    return ExplicitAutomaton(
        states=["a", "b", "c"],
        start_states=["a"],
        signature=tiny_signature(),
        steps=steps,
    )


def broken_automaton() -> ExplicitAutomaton:
    """The ``a --go-->`` target sums to 99/100: a Definition 2.1 breach."""
    return tiny_automaton(
        smuggled_distribution({"b": Fraction(49, 100), "c": Fraction(1, 2)})
    )


def rogue_adversary() -> FunctionAdversary:
    """Schedules a fabricated ``stop`` step everywhere: a Definition 2.2
    breach from ``a`` and ``b``, where ``stop`` is not enabled."""
    return FunctionAdversary(
        lambda automaton, fragment: Transition(
            fragment.lstate, "stop", FiniteDistribution.dirac("c")
        ),
        name="rogue",
    )


def _raise_inside_task(automaton, fragment):
    raise RuntimeError("injected adversary bug (corpus raising-adversary)")


def raising_adversary() -> FunctionAdversary:
    """An adversary whose ``choose`` raises a non-library error.

    In a pooled run the worker dies deterministically and the parent
    surfaces :class:`~repro.errors.TaskExecutionError`; inline the raw
    ``RuntimeError`` propagates instead, so corpus entries built on
    this adversary constrain themselves to pooled worker counts.
    """
    return FunctionAdversary(_raise_inside_task, name="raiser")


def honest_schema() -> AdversarySchema:
    return AdversarySchema(
        name="tiny-honest", contains=lambda adv: True, execution_closed=True
    )


def liar_schema() -> AdversarySchema:
    """Claims execution closure but rejects every shifted member."""
    return AdversarySchema(
        name="tiny-liar",
        contains=lambda adv: not isinstance(adv, ShiftedAdversary),
        execution_closed=True,
    )


A_CLASS = StateClass("A", lambda s: s == "a")
C_CLASS = StateClass("C", lambda s: s == "c")
NEVER_CLASS = StateClass("Never", lambda s: False)

TINY_STATEMENT = ArrowStatement(A_CLASS, C_CLASS, 0, Fraction(1, 4), "tiny")
NEVER_STATEMENT = ArrowStatement(A_CLASS, NEVER_CLASS, 0, 0, "tiny")


def noninvariant_orbit_spec() -> SpaceSpec:
    """An identity-key spec whose orbit merges ``b`` and ``c``.

    The orbit claims ``{b, c}`` form one symmetry class while the
    predicate ``s == 'c'`` tells them apart — exactly the misdeclared
    symmetry the ``CompiledSpace.flags`` spot check exists to catch.
    """
    return SpaceSpec(
        orbit=lambda state: ("b", "c") if state in ("b", "c") else (state,)
    )


@dataclass(frozen=True)
class CheckCase:
    """One full arrow-check replay: model, family, and sampling plan.

    ``policy_factory`` builds a *fresh* :class:`RunPolicy` per matrix
    cell (policies can carry stateful checkpoints) and ``fuel_steps``
    is applied only in the checking guard modes — ``off`` forbids fuel
    by construction.
    """

    automaton_factory: Callable[[], object]
    adversaries_factory: Callable[[], Tuple[Tuple[str, object], ...]]
    statement: ArrowStatement = TINY_STATEMENT
    start_states: Tuple[object, ...] = ("a",)
    schema_factory: Optional[Callable[[], AdversarySchema]] = None
    time_of: Callable[[object], Fraction] = zero_time
    samples: int = 8
    max_steps: int = 24
    seed: int = 11
    fuel_steps: Optional[int] = None
    space_spec: Optional[SpaceSpec] = None
    state_budget: Optional[int] = None
    policy_factory: Optional[Callable[[], object]] = None


@dataclass(frozen=True)
class FlagsCase:
    """A compile-level case: quotient the space, evaluate a predicate."""

    automaton_factory: Callable[[], object]
    spec_factory: Callable[[], SpaceSpec]
    predicate: Callable[[object], bool]
    roots: Tuple[object, ...] = ("a",)
    max_states: int = 10_000


def first_enabled_family() -> Tuple[Tuple[str, object], ...]:
    return (("first", FirstEnabledAdversary()),)


def two_pair_family() -> Tuple[Tuple[str, object], ...]:
    """Two healthy pairs: pooled runs get >= 2 tasks, so injected
    worker faults actually fire (single-task runs execute inline)."""
    return (
        ("first", FirstEnabledAdversary()),
        ("second", FirstEnabledAdversary()),
    )


def rogue_family() -> Tuple[Tuple[str, object], ...]:
    return (("rogue", rogue_adversary()),)


def raising_family() -> Tuple[Tuple[str, object], ...]:
    return (
        ("first", FirstEnabledAdversary()),
        ("raiser", raising_adversary()),
    )


# Keep dataclass field import exercised for frozen defaults.
_ = field
