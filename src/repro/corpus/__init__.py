"""The standing defect corpus and differential fuzz harness.

* :mod:`~repro.corpus.cases` — the tiny models, mutations, and case
  shapes every entry is built from (shared with the contracts tests).
* :mod:`~repro.corpus.registry` — declarative :class:`CorpusEntry`
  records: one known-bad mutation each, with the taxonomy class and
  per-guard-mode outcome it must classify as.
* :mod:`~repro.corpus.runner` — replays entries across engines x guard
  modes x worker counts, asserting identical classification and
  byte-identical reports.
* :mod:`~repro.corpus.fuzz` — the seed-derived differential fuzzer
  with greedy shrinking and ready-to-commit finding emission.

CLI: ``repro corpus list|run|add`` and ``repro fuzz``.  See
``docs/corpus.md``.
"""

from repro.corpus.cases import CheckCase, FlagsCase
from repro.corpus.registry import (
    DEFAULT_CORPUS_FILE,
    ENGINES,
    MODES,
    WORKER_COUNTS,
    CorpusEntry,
    builtin_entries,
    entry_by_name,
    entry_from_record,
    load_file_entries,
)
from repro.corpus.runner import (
    EXIT_DIVERGENCE,
    Classification,
    CorpusReport,
    EntryResult,
    classify_check,
    classify_flags,
    run_corpus,
    run_entry,
)
from repro.corpus.fuzz import (
    FuzzReport,
    corpus_record,
    diff_case,
    generate_case,
    run_fuzz,
    shrink_case,
)

__all__ = [
    "CheckCase",
    "Classification",
    "CorpusEntry",
    "CorpusReport",
    "DEFAULT_CORPUS_FILE",
    "ENGINES",
    "EntryResult",
    "EXIT_DIVERGENCE",
    "FlagsCase",
    "FuzzReport",
    "MODES",
    "WORKER_COUNTS",
    "builtin_entries",
    "classify_check",
    "classify_flags",
    "corpus_record",
    "diff_case",
    "entry_by_name",
    "entry_from_record",
    "generate_case",
    "load_file_entries",
    "run_corpus",
    "run_entry",
    "run_fuzz",
    "shrink_case",
]
