"""Property-based tests (hypothesis) for the Lehmann-Rabin model.

Random invariant-consistent states are generated directly from local
states (rejecting inconsistent combinations), and the structural facts
the proof leans on are checked as universally as hypothesis can manage:
the region inclusion lattice, Lemma 6.1 as an inductive invariant, the
determinism of the transition relation outside flips, and the exact
correspondence between region predicates and their definitions.
"""

from __future__ import annotations

from fractions import Fraction

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.algorithms import lehmann_rabin as lr
from repro.algorithms.lehmann_rabin.automaton import FLIP, lr_transitions
from repro.algorithms.lehmann_rabin.state import (
    PC,
    ProcessState,
    Side,
    consistent_resources,
)

local_states = st.builds(
    ProcessState,
    pc=st.sampled_from(list(PC)),
    u=st.sampled_from([Side.LEFT, Side.RIGHT]),
)


@st.composite
def consistent_states(draw, min_n=2, max_n=5):
    """A random Lemma 6.1-consistent global state."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    locals_ = draw(
        st.lists(local_states, min_size=n, max_size=n)
    )
    assume(consistent_resources(locals_) is not None)
    return lr.make_state(locals_)


@given(consistent_states())
@settings(max_examples=150)
def test_constructed_states_satisfy_lemma_6_1(state):
    assert lr.lemma_6_1_holds(state)


@given(consistent_states())
@settings(max_examples=150)
def test_region_inclusion_lattice(state):
    # G ⊆ RT, F ⊆ RT, RT ⊆ T, P ⊆ T (Section 6.2 definitions).
    if lr.in_good(state):
        assert lr.in_reduced_trying(state)
    if lr.in_flip_ready(state):
        assert lr.in_reduced_trying(state)
    if lr.in_reduced_trying(state):
        assert lr.in_trying(state)
    if lr.in_pre_critical(state):
        assert lr.in_trying(state)


@given(consistent_states())
@settings(max_examples=150)
def test_good_processes_agree_with_region(state):
    has_good = bool(lr.good_processes(state))
    assert lr.in_good(state) == (has_good and lr.in_reduced_trying(state))


@given(consistent_states())
@settings(max_examples=100)
def test_one_step_preserves_lemma_6_1(state):
    for step in lr_transitions(state):
        for target in step.target.support:
            assert lr.lemma_6_1_holds(target)


@given(consistent_states())
@settings(max_examples=100)
def test_flips_are_the_only_probabilistic_steps(state):
    for step in lr_transitions(state):
        if step.action != "nu" and step.action[0] == FLIP:
            assert len(step.target) == 2
            for _, weight in step.target.items():
                assert weight == Fraction(1, 2)
        else:
            assert step.is_deterministic()


@given(consistent_states())
@settings(max_examples=100)
def test_every_process_enables_exactly_its_figure_1_steps(state):
    for i in range(state.n):
        from repro.algorithms.lehmann_rabin.automaton import (
            process_transitions,
        )

        steps = process_transitions(state, i)
        pc = state.process(i).pc
        # The EF counter offers the nondeterministic pair; everything
        # else exactly one step.
        expected = 2 if pc is PC.EF else 1
        assert len(steps) == expected
        assert all(step.action[1] == i for step in steps)


@given(consistent_states())
@settings(max_examples=100)
def test_readiness_matches_user_action_convention(state):
    view = lr.LRProcessView(state.n)
    ready = view.ready(state)
    for i in range(state.n):
        pc = state.process(i).pc
        if pc in (PC.R, PC.C):
            assert i not in ready
        else:
            assert i in ready


@given(consistent_states())
@settings(max_examples=100)
def test_time_passage_changes_only_the_clock(state):
    passages = [s for s in lr_transitions(state) if s.action == "nu"]
    assert len(passages) == 1
    after = passages[0].target.the_point()
    assert after.untimed() == state.untimed()
    assert after.time == state.time + 1


@given(consistent_states())
@settings(max_examples=100)
def test_resources_conserved_by_steps(state):
    """A step changes the holdings of at most the acting process, and
    every resource it frees/takes is adjacent to that process."""
    for step in lr_transitions(state):
        if step.action == "nu":
            continue
        _, actor = step.action
        adjacent = {
            state.resource_index(actor, Side.LEFT),
            state.resource_index(actor, Side.RIGHT),
        }
        for target in step.target.support:
            for j in range(state.n):
                if state.resource(j) != target.resource(j):
                    assert j in adjacent
