"""Unit tests for Lehmann-Rabin states (Section 6.1 notation)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.algorithms.lehmann_rabin.state import (
    FREE,
    LRState,
    PC,
    ProcessState,
    Side,
    TAKEN,
    consistent_resources,
    holds_left,
    holds_right,
    initial_state,
    make_state,
)
from repro.errors import AutomatonError


class TestSide:
    def test_opp(self):
        assert Side.LEFT.opp is Side.RIGHT
        assert Side.RIGHT.opp is Side.LEFT

    def test_opp_involutive(self):
        for side in Side:
            assert side.opp.opp is side


class TestProcessState:
    def test_with_pc_and_with_u(self):
        local = ProcessState(PC.W, Side.LEFT)
        assert local.with_pc(PC.S) == ProcessState(PC.S, Side.LEFT)
        assert local.with_u(Side.RIGHT) == ProcessState(PC.W, Side.RIGHT)

    def test_points_only_at_sided_counters(self):
        assert ProcessState(PC.W, Side.LEFT).points(Side.LEFT)
        assert not ProcessState(PC.W, Side.LEFT).points(Side.RIGHT)
        assert not ProcessState(PC.F, Side.LEFT).points(Side.LEFT)
        assert not ProcessState(PC.R, Side.RIGHT).points(Side.RIGHT)

    def test_repr_uses_arrow_notation(self):
        assert repr(ProcessState(PC.W, Side.LEFT)) == "W<-"
        assert repr(ProcessState(PC.S, Side.RIGHT)) == "S->"
        assert repr(ProcessState(PC.F, Side.LEFT)) == "F"


class TestGeometry:
    def test_right_resource_is_own_index(self):
        state = initial_state(4)
        assert state.resource_index(1, Side.RIGHT) == 1

    def test_left_resource_is_previous_index(self):
        state = initial_state(4)
        assert state.resource_index(1, Side.LEFT) == 0
        assert state.resource_index(0, Side.LEFT) == 3  # wraps

    def test_process_and_resource_wrap_modulo_n(self):
        state = initial_state(3)
        assert state.process(4) == state.process(1)
        assert state.resource(5) == state.resource(2)


class TestUpdates:
    def test_with_process(self):
        state = initial_state(3)
        updated = state.with_process(1, ProcessState(PC.F, Side.RIGHT))
        assert updated.process(1).pc is PC.F
        assert updated.process(0).pc is PC.R

    def test_with_resource(self):
        state = initial_state(3)
        updated = state.with_resource(2, TAKEN)
        assert updated.resource(2) == TAKEN
        assert updated.resource(0) == FREE

    def test_time_updates(self):
        state = initial_state(3)
        assert state.advanced(Fraction(2)).time == 2
        assert state.with_time(Fraction(7)).time == 7

    def test_untimed_drops_clock_only(self):
        state = initial_state(3)
        assert state.untimed() == state.advanced(Fraction(9)).untimed()

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(AutomatonError):
            LRState(
                processes=(ProcessState(PC.R, Side.LEFT),) * 3,
                resources=(FREE,) * 2,
                time=Fraction(0),
            )

    def test_ring_needs_two_processes(self):
        with pytest.raises(AutomatonError):
            LRState(
                processes=(ProcessState(PC.R, Side.LEFT),),
                resources=(FREE,),
                time=Fraction(0),
            )


class TestInitialState:
    def test_everyone_in_remainder(self):
        state = initial_state(5)
        assert all(p.pc is PC.R for p in state.processes)
        assert all(r == FREE for r in state.resources)
        assert state.time == 0

    def test_custom_sides(self):
        state = initial_state(2, sides=[Side.RIGHT, Side.LEFT])
        assert state.process(0).u is Side.RIGHT
        assert state.process(1).u is Side.LEFT

    def test_side_arity_checked(self):
        with pytest.raises(AutomatonError):
            initial_state(3, sides=[Side.LEFT])


class TestHolders:
    """The resource-holding table implied by Lemma 6.1."""

    @pytest.mark.parametrize(
        "pc,u,right,left",
        [
            (PC.R, Side.LEFT, False, False),
            (PC.F, Side.LEFT, False, False),
            (PC.W, Side.RIGHT, False, False),   # waiting holds nothing
            (PC.S, Side.RIGHT, True, False),
            (PC.S, Side.LEFT, False, True),
            (PC.D, Side.RIGHT, True, False),
            (PC.D, Side.LEFT, False, True),
            (PC.P, Side.LEFT, True, True),
            (PC.C, Side.RIGHT, True, True),
            (PC.EF, Side.LEFT, True, True),
            (PC.ES, Side.RIGHT, True, False),
            (PC.ES, Side.LEFT, False, True),
            (PC.ER, Side.LEFT, False, False),
        ],
    )
    def test_holding_table(self, pc, u, right, left):
        local = ProcessState(pc, u)
        assert holds_right(local) == right
        assert holds_left(local) == left


class TestConsistency:
    def test_all_remainder_is_consistent(self):
        locals_ = [ProcessState(PC.R, Side.LEFT)] * 3
        assert consistent_resources(locals_) == (FREE, FREE, FREE)

    def test_holder_marks_resource_taken(self):
        locals_ = [
            ProcessState(PC.S, Side.RIGHT),  # holds Res_0
            ProcessState(PC.R, Side.LEFT),
            ProcessState(PC.R, Side.LEFT),
        ]
        assert consistent_resources(locals_) == (TAKEN, FREE, FREE)

    def test_adjacent_conflict_is_inconsistent(self):
        locals_ = [
            ProcessState(PC.S, Side.RIGHT),  # holds Res_0 from the left
            ProcessState(PC.S, Side.LEFT),   # holds Res_0 from the right
            ProcessState(PC.R, Side.LEFT),
        ]
        assert consistent_resources(locals_) is None

    def test_make_state_derives_resources(self):
        state = make_state(
            [
                ProcessState(PC.P, Side.LEFT),
                ProcessState(PC.R, Side.LEFT),
                ProcessState(PC.R, Side.LEFT),
            ]
        )
        # P holds both adjacent resources: Res_2 (left) and Res_0 (right).
        assert state.resource(0) == TAKEN
        assert state.resource(2) == TAKEN
        assert state.resource(1) == FREE

    def test_make_state_rejects_conflicts(self):
        with pytest.raises(AutomatonError):
            make_state(
                [
                    ProcessState(PC.P, Side.LEFT),
                    ProcessState(PC.P, Side.LEFT),
                    ProcessState(PC.R, Side.LEFT),
                ]
            )

    def test_repr_shows_ring(self):
        text = repr(initial_state(3))
        assert "R R R" in text and "t=0" in text
