"""Run manifests: provenance records, the store, and ``repro runs``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import manifest as mf

CHECK = ["check", "--prop", "A.14", "--samples", "4", "--json"]


def store_records(tmp_path):
    return mf.load_manifests(tmp_path / "runs")


class TestScopeFingerprint:
    def test_same_config_same_scope(self):
        config = {"prop": "A.14", "samples": 4, "seed": 0}
        assert mf.scope_fingerprint("check", config) == \
            mf.scope_fingerprint("check", dict(config))

    def test_result_affecting_change_changes_scope(self):
        base = {"prop": "A.14", "samples": 4, "seed": 0}
        bumped = dict(base, samples=8)
        assert mf.scope_fingerprint("check", base) != \
            mf.scope_fingerprint("check", bumped)

    def test_command_is_part_of_the_scope(self):
        config = {"n": 3, "seed": 0}
        assert mf.scope_fingerprint("check", config) != \
            mf.scope_fingerprint("verify", config)


class TestStore:
    def test_append_load_roundtrip(self, tmp_path):
        record = mf.new_manifest(
            "check", ["check"], {"samples": 4},
            started_at="2026-08-08T00:00:00+00:00",
            wall_s=0.25, exit_status=0,
        )
        path = mf.append_manifest(record, tmp_path)
        assert path is not None and path.exists()
        loaded = mf.load_manifests(tmp_path)
        assert loaded == [record]

    def test_find_by_prefix_returns_newest_match(self, tmp_path):
        first = mf.new_manifest(
            "check", ["check"], {"samples": 4},
            started_at="a", wall_s=0.1, exit_status=0,
        )
        second = mf.new_manifest(
            "check", ["check"], {"samples": 4},
            started_at="b", wall_s=0.2, exit_status=0,
        )
        mf.append_manifest(first, tmp_path)
        mf.append_manifest(second, tmp_path)
        assert mf.find_manifest(second["id"][:6], tmp_path) == second
        assert mf.find_manifest("nope", tmp_path) is None

    def test_corrupt_lines_are_skipped(self, tmp_path):
        record = mf.new_manifest(
            "check", ["check"], {},
            started_at="a", wall_s=0.1, exit_status=0,
        )
        mf.append_manifest(record, tmp_path)
        store = tmp_path / mf.MANIFEST_FILE
        store.write_text("not json\n" + store.read_text())
        assert mf.load_manifests(tmp_path) == [record]

    def test_write_failure_is_soft(self, tmp_path, capsys):
        blocker = tmp_path / "blocked"
        blocker.write_text("a file where the store dir should be")
        record = mf.new_manifest(
            "check", ["check"], {},
            started_at="a", wall_s=0.1, exit_status=0,
        )
        assert mf.append_manifest(record, blocker / "runs") is None
        assert "could not write run manifest" in capsys.readouterr().err


class TestCliManifests:
    def test_every_run_appends_one_record(self, tmp_path, capsys):
        assert main(CHECK) == 0
        assert main(CHECK) == 0
        capsys.readouterr()
        records = store_records(tmp_path)
        assert len(records) == 2
        assert all(r["command"] == "check" for r in records)
        assert records[0]["scope"] == records[1]["scope"]
        assert records[0]["id"] != records[1]["id"]
        assert all(r["exit_status"] == 0 for r in records)
        assert all(r["wall_s"] > 0 for r in records)

    def test_no_manifest_opts_out(self, tmp_path, capsys):
        assert main([*CHECK, "--no-manifest"]) == 0
        capsys.readouterr()
        assert store_records(tmp_path) == []

    def test_runs_dir_flag_overrides_env(self, tmp_path, capsys):
        other = tmp_path / "elsewhere"
        assert main([*CHECK, "--runs-dir", str(other)]) == 0
        capsys.readouterr()
        assert store_records(tmp_path) == []
        assert len(mf.load_manifests(other)) == 1

    def test_workers_and_engine_do_not_change_the_scope(
        self, tmp_path, capsys
    ):
        assert main(CHECK) == 0
        assert main([*CHECK, "--workers", "4"]) == 0
        assert main([*CHECK, "--engine", "compiled"]) == 0
        capsys.readouterr()
        scopes = {r["scope"] for r in store_records(tmp_path)}
        assert len(scopes) == 1

    def test_samples_change_the_scope(self, tmp_path, capsys):
        assert main(CHECK) == 0
        assert main(
            ["check", "--prop", "A.14", "--samples", "8", "--json"]
        ) == 0
        capsys.readouterr()
        scopes = {r["scope"] for r in store_records(tmp_path)}
        assert len(scopes) == 2

    def test_meta_commands_do_not_append(self, tmp_path, capsys):
        assert main(CHECK) == 0
        assert main(["runs", "list"]) == 0
        assert main(["profile", "--run", "nope"]) == 2
        capsys.readouterr()
        assert len(store_records(tmp_path)) == 1

    def test_stats_manifest_carries_metrics_and_profile(
        self, tmp_path, capsys
    ):
        assert main(["stats", "--samples", "2"]) == 0
        capsys.readouterr()
        (record,) = store_records(tmp_path)
        names = {m["name"] for m in record["metrics"]}
        assert "verifier.samples" in names
        stacks = {row["stack"] for row in record["profile"]}
        assert "stats.run" in stacks


class TestRunsCommands:
    @pytest.fixture
    def two_runs(self, tmp_path, capsys):
        main(CHECK)
        main(CHECK)
        capsys.readouterr()
        return store_records(tmp_path)

    def test_list_renders_one_row_per_run(self, two_runs, capsys):
        assert main(["runs", "list"]) == 0
        out = capsys.readouterr().out
        for record in two_runs:
            assert record["id"] in out

    def test_show_json_roundtrips_the_record(self, two_runs, capsys):
        record = two_runs[0]
        assert main(["runs", "show", record["id"], "--json"]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown == record

    def test_show_unknown_id_is_a_usage_error(self, two_runs, capsys):
        assert main(["runs", "show", "doesnotexist"]) == 2
        assert "no recorded run" in capsys.readouterr().err

    def test_diff_json_roundtrip(self, two_runs, capsys):
        old, new = two_runs
        assert main(
            ["runs", "diff", old["id"], new["id"], "--json"]
        ) == 0
        diff = json.loads(capsys.readouterr().out)
        assert diff == mf.diff_manifests(old, new)
        assert diff["same_scope"] is True
        assert diff["old"] == old["id"] and diff["new"] == new["id"]
        assert diff["wall_s"]["delta"] == pytest.approx(
            new["wall_s"] - old["wall_s"], abs=1e-6
        )

    def test_diff_warns_on_mismatched_scopes(self, tmp_path, capsys):
        main(CHECK)
        main(["check", "--prop", "A.14", "--samples", "8", "--json"])
        capsys.readouterr()
        first, second = store_records(tmp_path)
        assert main(["runs", "diff", first["id"], second["id"]]) == 0
        out = capsys.readouterr().out
        assert "different scopes" in out

    def test_diff_unknown_ids_are_usage_errors(self, two_runs, capsys):
        assert main(["runs", "diff", "nope", two_runs[0]["id"]]) == 2
        assert "no recorded run" in capsys.readouterr().err


class TestDiffMetrics:
    def test_metric_deltas_between_runs_of_the_same_scope(self):
        def record(metrics):
            return mf.new_manifest(
                "stats", ["stats"], {"samples": 4},
                started_at="a", wall_s=1.0, exit_status=0,
                metrics=metrics,
            )

        old = record([
            {"type": "counter", "name": "verifier.samples", "value": 10},
            {"type": "gauge", "name": "statespace.states", "value": 5},
            {"type": "histogram", "name": "sampler.steps_per_sample",
             "summary": {"count": 10, "mean": 3.0}},
        ])
        new = record([
            {"type": "counter", "name": "verifier.samples", "value": 14},
            {"type": "gauge", "name": "statespace.states", "value": 5},
            {"type": "histogram", "name": "sampler.steps_per_sample",
             "summary": {"count": 12, "mean": 3.5}},
        ])
        diff = mf.diff_manifests(old, new)
        assert diff["same_scope"] is True
        rows = {row["name"]: row for row in diff["metrics"]}
        assert rows["verifier.samples"]["delta"] == 4
        assert rows["sampler.steps_per_sample.count"]["delta"] == 2
        assert "statespace.states" not in rows
