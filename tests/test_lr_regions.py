"""Unit tests for the Section 6.2 region predicates and Lemma 6.1."""

from __future__ import annotations

from repro.algorithms.lehmann_rabin.regions import (
    C_CLASS,
    F_CLASS,
    G_CLASS,
    P_CLASS,
    RT_CLASS,
    T_CLASS,
    good_processes,
    in_critical,
    in_flip_ready,
    in_good,
    in_pre_critical,
    in_reduced_trying,
    in_trying,
    is_good_process,
    lemma_6_1_holds,
    mutual_exclusion_holds,
)
from repro.algorithms.lehmann_rabin.state import (
    PC,
    ProcessState,
    Side,
    make_state,
)


def ring(*locals_):
    return make_state(list(locals_))


R = lambda: ProcessState(PC.R, Side.LEFT)


class TestBasicRegions:
    def test_trying_detects_each_trying_counter(self):
        for pc in (PC.F, PC.W, PC.S, PC.D, PC.P):
            side = Side.LEFT
            state = ring(ProcessState(pc, side), R(), R())
            assert in_trying(state), pc

    def test_remainder_only_is_not_trying(self):
        assert not in_trying(ring(R(), R(), R()))

    def test_critical(self):
        state = ring(ProcessState(PC.C, Side.LEFT), R(), R())
        assert in_critical(state)
        assert not in_trying(state)

    def test_pre_critical(self):
        state = ring(ProcessState(PC.P, Side.LEFT), R(), R())
        assert in_pre_critical(state)

    def test_reduced_trying_excludes_critical(self):
        state = ring(
            ProcessState(PC.F, Side.LEFT), ProcessState(PC.C, Side.LEFT), R()
        )
        assert in_trying(state)
        assert not in_reduced_trying(state)

    def test_reduced_trying_excludes_resourceful_exiters(self):
        for pc in (PC.EF, PC.ES):
            state = ring(
                ProcessState(PC.F, Side.LEFT), ProcessState(pc, Side.LEFT), R()
            )
            assert not in_reduced_trying(state), pc

    def test_reduced_trying_allows_er(self):
        state = ring(
            ProcessState(PC.F, Side.LEFT), ProcessState(PC.ER, Side.LEFT), R()
        )
        assert in_reduced_trying(state)

    def test_flip_ready_requires_rt(self):
        good = ring(ProcessState(PC.F, Side.LEFT), R(), R())
        assert in_flip_ready(good)
        with_critical = ring(
            ProcessState(PC.F, Side.LEFT), ProcessState(PC.C, Side.LEFT), R()
        )
        assert not in_flip_ready(with_critical)


class TestGoodProcesses:
    def test_left_committed_with_clear_right_neighbour(self):
        # X_0 = W<- ; X_1 in {ER, R, F, #->} makes 0 good.
        for neighbour in (
            ProcessState(PC.ER, Side.LEFT),
            ProcessState(PC.R, Side.LEFT),
            ProcessState(PC.F, Side.LEFT),
            ProcessState(PC.W, Side.RIGHT),
            ProcessState(PC.S, Side.RIGHT),
            ProcessState(PC.D, Side.RIGHT),
        ):
            state = ring(ProcessState(PC.W, Side.LEFT), neighbour, R())
            assert is_good_process(state, 0), neighbour

    def test_left_committed_with_hostile_right_neighbour(self):
        for neighbour in (
            ProcessState(PC.W, Side.LEFT),
            ProcessState(PC.S, Side.LEFT),
            ProcessState(PC.D, Side.LEFT),
        ):
            state = ring(ProcessState(PC.W, Side.LEFT), neighbour, R())
            assert not is_good_process(state, 0), neighbour

    def test_right_committed_with_clear_left_neighbour(self):
        # X_1 = S-> ; X_0 in {ER, R, F, #<-} makes 1 good.
        state = ring(
            ProcessState(PC.D, Side.LEFT),
            ProcessState(PC.S, Side.RIGHT),
            R(),
        )
        assert is_good_process(state, 1)

    def test_right_committed_with_hostile_left_neighbour(self):
        state = ring(
            ProcessState(PC.W, Side.RIGHT),
            ProcessState(PC.S, Side.RIGHT),
            R(),
        )
        assert not is_good_process(state, 1)

    def test_uncommitted_processes_are_not_good(self):
        state = ring(ProcessState(PC.D, Side.LEFT), R(), R())
        assert not is_good_process(state, 0)
        assert good_processes(state) == []

    def test_good_processes_listed_in_order(self):
        state = ring(
            ProcessState(PC.W, Side.LEFT),
            ProcessState(PC.W, Side.RIGHT),
            R(),
        )
        # 0 is good (neighbour 1 points right); 1 is good (neighbour 0
        # points left).
        assert good_processes(state) == [0, 1]

    def test_g_requires_rt(self):
        state = ring(
            ProcessState(PC.W, Side.LEFT),
            ProcessState(PC.C, Side.LEFT),
            R(),
        )
        assert not in_good(state)

    def test_g_on_good_rt_state(self):
        state = ring(ProcessState(PC.W, Side.LEFT), R(), R())
        assert in_good(state)


class TestLemma61:
    def test_holds_on_consistent_states(self):
        state = ring(ProcessState(PC.P, Side.LEFT), R(), R())
        assert lemma_6_1_holds(state)

    def test_detects_spurious_taken_resource(self):
        state = ring(R(), R(), R()).with_resource(0, True)
        assert not lemma_6_1_holds(state)

    def test_detects_missing_taken_resource(self):
        state = ring(ProcessState(PC.S, Side.RIGHT), R(), R()).with_resource(
            0, False
        )
        assert not lemma_6_1_holds(state)

    def test_detects_double_holding(self):
        # Force the unreachable double-hold state manually.
        from fractions import Fraction

        from repro.algorithms.lehmann_rabin.state import LRState

        state = LRState(
            processes=(
                ProcessState(PC.S, Side.RIGHT),
                ProcessState(PC.S, Side.LEFT),
                R(),
            ),
            resources=(True, False, False),
            time=Fraction(0),
        )
        assert not lemma_6_1_holds(state)


class TestMutualExclusion:
    def test_single_critical_ok(self):
        state = ring(ProcessState(PC.C, Side.LEFT), R(), R())
        assert mutual_exclusion_holds(state)

    def test_nonadjacent_criticals_ok(self):
        state = make_state(
            [
                ProcessState(PC.C, Side.LEFT),
                R(),
                ProcessState(PC.C, Side.LEFT),
                R(),
            ]
        )
        assert mutual_exclusion_holds(state)

    def test_adjacent_criticals_detected(self):
        from fractions import Fraction

        from repro.algorithms.lehmann_rabin.state import LRState

        state = LRState(
            processes=(
                ProcessState(PC.C, Side.LEFT),
                ProcessState(PC.C, Side.LEFT),
                R(),
            ),
            resources=(True, True, True),
            time=Fraction(0),
        )
        assert not mutual_exclusion_holds(state)


class TestStateClasses:
    def test_class_names(self):
        assert T_CLASS.name == "T"
        assert (F_CLASS | G_CLASS | P_CLASS).name == "F | G | P"

    def test_classes_delegate_to_predicates(self):
        state = ring(ProcessState(PC.P, Side.LEFT), R(), R())
        assert T_CLASS.contains(state)
        assert P_CLASS.contains(state)
        assert RT_CLASS.contains(state)
        assert not C_CLASS.contains(state)
